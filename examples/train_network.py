"""Recursive reachability over periodic schedules — the paper's pitch.

The deductive language of Section 4 allows *several* temporal
arguments per predicate (unlike Datalog1S / Templog) *and* recursion
(unlike the first-order language of [KSW90]).  This example needs
both: ``reach(t_dep, t_arr; X, Y)`` — you can leave X at ``t_dep`` and
be in Y at ``t_arr`` — is defined by recursion over connections with a
transfer constraint between two temporal variables.

The engine computes a closed form (a generalized relation) for the
infinite reachability relation and terminates by constraint safety:
longer itineraries only strengthen constraints of already-derived
free extensions.

Run with::

    python examples/train_network.py
"""

from repro.core import DeductiveEngine, parse_program
from repro.fo import evaluate_query
from repro.gdb import parse_database

EDB = """
% Periodic departures (unit: one minute).
relation train[2; 2] {
  (60n, 60n+40; "liege", "brussels")      where T1 >= 0 & T2 = T1 + 40;
  (60n+50, 60n+85; "brussels", "antwerp") where T1 >= 0 & T2 = T1 + 35;
  (120n+30, 120n+75; "brussels", "liege") where T1 >= 0 & T2 = T1 + 45;
}
"""

PROGRAM = """
% Direct trains reach.
reach(t1, t2; X, Y) <- train(t1, t2; X, Y).
% Change trains: arrive at t2, catch any later train.
reach(t1, t4; X, Z) <- reach(t1, t2; X, Y), train(t3, t4; Y, Z), t2 <= t3.
"""


def main():
    edb = parse_database(EDB)
    program = parse_program(PROGRAM)

    print("Timetable:")
    print(edb)
    print()

    model = DeductiveEngine(program, edb).run()
    print(
        "Engine: %d rounds, constraint safe = %s, %d closed-form tuples"
        % (
            model.stats.rounds,
            model.stats.constraint_safe,
            len(model.relation("reach")),
        )
    )
    print()

    reach = model.relation("reach").coalesce()
    print("Sample itineraries Liege -> Antwerp in the first 4 hours:")
    pairs = sorted(
        (t1, t2)
        for (t1, t2, origin, dest) in reach.extension(0, 240)
        if origin == "liege" and dest == "antwerp"
    )
    for (t1, t2) in pairs[:10]:
        print("  depart %4d, arrive %4d (%d min door to door)" % (t1, t2, t2 - t1))
    print()

    # FO query over the computed IDB: fastest trip starting at or
    # after minute 0 — a trip with no faster trip at the same start.
    query = (
        'reach(t1, t2; "liege", "antwerp") and '
        'not exists u (reach(t1, u; "liege", "antwerp") and u < t2)'
    )
    answers = evaluate_query(
        edb, query, extra_relations={"reach": model.relation("reach")}
    )
    fastest = sorted(answers.extension(0, 240))
    print("Fastest arrival per departure (first 4 hours):")
    for (t1, t2) in fastest:
        print("  depart %4d -> best arrival %4d" % (t1, t2))


if __name__ == "__main__":
    main()
