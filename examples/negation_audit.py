"""Stratified negation: auditing a periodic service plan.

The paper's Section 3.2 places stratified negation at the top of the
deductive hierarchy (full ω-regular query expressiveness).  This
example uses it the way an operations team would: find scheduled
services that were *not* performed, machines with *no* coverage in a
maintenance window, and idle slots — all computed in closed form over
infinite periodic schedules.

Run with::

    python examples/negation_audit.py
"""

from repro.core import DeductiveEngine, parse_program, stratify
from repro.gdb import parse_database

EDB = """
% planned(t; machine): machine is due for service at hour t.
relation planned[1; 1] {
  (24n+6;  "press")  where T1 >= 6;
  (36n+12; "lathe")  where T1 >= 12;
}

% done(t; machine): a technician actually serviced the machine.
relation done[1; 1] {
  (24n+6;  "press")  where T1 >= 6 & T1 < 100;   % press kept up only early on
  (36n+12; "lathe")  where T1 >= 12;
}
"""

PROGRAM = """
% A planned service that never happened.
missed(t; M) <- planned(t; M), not done(t; M).

% Coverage: some service within 12 hours after t.
covered(t; M) <- planned(u; M), done(u; M), t <= u, u <= t + 12, 0 <= t.

% Exposure: in-scope hours with no coverage at all.
exposed(t; M) <- planned(u; M), not covered(t; M), 0 <= t, t < 120.
"""


def main():
    edb = parse_database(EDB)
    program = parse_program(PROGRAM)

    strata, clause_strata = stratify(program)
    print("Strata:", dict(sorted(strata.items())))
    print("  (negation forces %d evaluation passes)" % len(clause_strata))
    print()

    model = DeductiveEngine(program, edb).run()
    print(
        "Engine: %d strata, %d rounds, constraint safe = %s"
        % (model.stats.strata, model.stats.rounds, model.stats.constraint_safe)
    )
    print()

    print("Missed services (closed form — an infinite set!):")
    print(model.relation("missed").coalesce())
    print()
    print("First few missed service times:")
    for (t, machine) in sorted(model.extension("missed", 0, 400))[:6]:
        print("  hour %4d: %s" % (t, machine))
    print()

    print("Exposed hours for the press in the first 5 days:")
    exposed = sorted(
        t for (t, machine) in model.extension("exposed", 0, 120)
        if machine == "press"
    )
    print("  %d of 120 hours, e.g. %s ..." % (len(exposed), exposed[:8]))


if __name__ == "__main__":
    main()
