"""A guided tour of Section 3: data vs query expressiveness.

Part 1 — *data expressiveness*: the same infinite temporal extension
is carried through all three formalisms of the paper — a generalized
relation with lrps, a Datalog1S program, a Templog program — and comes
back bit for bit: all three denote exactly the eventually periodic
sets.

Part 2 — *query expressiveness*: the hierarchy

    star-free  ⊥  finitely regular  ⊂  ω-regular

is demonstrated with real decision procedures: Schützenberger's
aperiodicity test for star-freeness and the openness test for
finite regularity.

Run with::

    python examples/expressiveness_tour.py
"""

from repro.datalog1s import (
    datalog1s_model_to_relation,
    minimal_model,
    relation_to_datalog1s,
)
from repro.datalog1s.translate import relation_extension_as_eps
from repro.gdb import parse_database
from repro.omega import (
    buchi_eventually,
    buchi_infinitely_often,
    is_deterministic_buchi_open,
    is_star_free,
)
from repro.omega.expressiveness import (
    dfa_one_at_even_position,
    dfa_suffix_language,
)
from repro.templog import parse_templog, templog_minimal_model


def part_one():
    print("Part 1 — data expressiveness (Section 3.1)")
    print("===========================================")
    db = parse_database(
        """
        relation duty[1; 1] {
          (24n+9; "alice") where T1 >= 9;
          (5; "alice");
        }
        """
    )
    relation = db.relation("duty")
    eps = relation_extension_as_eps(relation, ("alice",))
    print("lrp relation   :", relation)
    print("as periodic set:", eps)

    program = relation_to_datalog1s(relation, "duty")
    print("\nas Datalog1S:")
    print(program)
    model = minimal_model(program)
    assert model.set_of("duty", ("alice",)) == eps
    print("Datalog1S minimal model equals the set:", True)

    back = datalog1s_model_to_relation(model, "duty")
    window = {t for (t, _) in back.extension(0, 200)}
    original = {t for (t, _) in relation.extension(0, 200)}
    print("round trip back to lrp relation matches:", window == original)

    templog = parse_templog(
        """
        next^5 duty(alice).
        next^9 shift(alice).
        always (next^24 shift(X) <- shift(X)).
        always (duty(X) <- shift(X)).
        """
    )
    tmodel = templog_minimal_model(templog)
    assert tmodel.set_of("duty", ("alice",)) == eps
    print("Templog minimal model equals the set  :", True)
    print()


def part_two():
    print("Part 2 — query expressiveness (Section 3.2)")
    print("============================================")
    rows = []

    even = dfa_one_at_even_position()
    rows.append(
        (
            '"p holds at some even time"',
            "no (group Z/2 in monoid)" if not is_star_free(even) else "yes",
            "yes (Datalog1S: even(0); even(t+2)<-even(t); ...)",
        )
    )
    pattern = dfa_suffix_language(("1", "0", "1"))
    rows.append(
        (
            '"p, not p, p just happened"',
            "yes" if is_star_free(pattern) else "no",
            "yes",
        )
    )
    print("%-32s %-28s %s" % ("finite-word building block", "star-free (FO/KSW90)?", "deductive?"))
    for row in rows:
        print("%-32s %-28s %s" % row)
    print()

    print("%-32s %-22s %s" % ("omega-language", "finitely regular?", "class"))
    eventually = buchi_eventually()
    infinitely = buchi_infinitely_often()
    print(
        "%-32s %-22s %s"
        % (
            '"eventually p"',
            is_deterministic_buchi_open(eventually),
            "open — a Datalog1S/Templog yes-no query",
        )
    )
    print(
        "%-32s %-22s %s"
        % (
            '"infinitely often p"',
            is_deterministic_buchi_open(infinitely),
            "needs stratified negation (full omega-regular)",
        )
    )
    print()
    print("Summary: the deductive languages express periodicity (not")
    print("star-free) but only open properties; the FO language expresses")
    print("negation (not open) but no periodicity — incomparable, both")
    print("strictly inside the omega-regular class.  [paper, Section 3.2]")


def part_three():
    print()
    print("Part 3 — the FO language *is* temporal logic ([GPSS80])")
    print("========================================================")
    from repro.omega.ltl import Atom, F, G, Next, query_eps
    from repro.datalog1s import minimal_model, parse_datalog1s

    # A periodic database: two interleaved 24-hour chains (from 5 and 9).
    model = minimal_model(
        parse_datalog1s("p(5). p(9). p(t + 24) <- p(t).")
    )
    eps = model.set_of("p")
    print("database:", eps)
    P = Atom("p")
    for name, formula in (
        ("F p          (eventually)", F(P)),
        ("G p          (always)", G(P)),
        ("X^5 p        (at time 5)", Next(Next(Next(Next(Next(P)))))),
        ("G F p        (infinitely often)", G(F(P))),
    ):
        print("  %-32s -> %s" % (name, query_eps(formula, eps)))
    print("Every LTL answer above can be matched by an FO query (see")
    print("benchmarks/test_e13_ltl_fo_equivalence.py) — except G F p,")
    print("which is the ω-regular landmark beyond both.")


def main():
    part_one()
    part_two()
    part_three()


if __name__ == "__main__":
    main()
