"""Templog in action: a periodic maintenance monitor (Section 2.3).

A small plant model: a pump is serviced on a 12-hour cycle, a filter
on an 18-hour cycle; an inspection happens whenever both fall due
together; the ◇ (eventually / sometime) operator expresses a pending
alarm: once a fault is signalled, the alarm condition holds from time
0 up to the fault — "an alarm will eventually be needed".

The program is reduced to the TL1 fragment (◇ compiled to auxiliary
predicates), translated to Datalog1S, and solved in closed form as
eventually periodic sets.

Run with::

    python examples/templog_monitor.py
"""

from repro.templog import parse_templog, templog_minimal_model, to_tl1
from repro.templog.tl1 import is_tl1

PROGRAM = """
% Service cycles (unit: one hour; time 0 = plant start).
next^6 service(pump).
always (next^12 service(pump) <- service(pump)).
next^6 service(filter).
always (next^18 service(filter) <- service(filter)).

% Inspection whenever pump and filter are serviced at the same hour.
always (inspect <- service(pump), service(filter)).

% A fault is signalled at hour 40.
next^40 fault.

% Alarm pending: a fault is still ahead of us.
always (pending <- sometime(fault)).
"""


def main():
    program = parse_templog(PROGRAM)
    print("Templog program:")
    print(program)
    print()

    reduced = to_tl1(program)
    print("TL1 reduction introduces %d auxiliary clauses; TL1 now: %s"
          % (len(reduced) - len(program), is_tl1(reduced)))
    print()

    model = templog_minimal_model(program)
    print("Closed-form minimal model (eventually periodic sets):")
    print(model)
    print()

    inspections = model.set_of("inspect")
    print("Inspections in the first week:", inspections.window(0, 168))
    print("Inspection cadence: period", inspections.period, "hours")
    pending = model.set_of("pending")
    print("Alarm pending through hour:", pending.max_element())
    assert not model.holds("pending", pending.max_element() + 1)


if __name__ == "__main__":
    main()
