"""Quickstart: the paper's train schedule as a generalized database.

Reproduces Example 2.1 (Baudinet, Niézette & Wolper, PODS 1991): a
relation with two temporal attributes holding linear repeating points
constrained by gap-order atoms, queried with the first-order language
of [KSW90].

Run with::

    python examples/quickstart.py
"""

from repro.fo import evaluate_query
from repro.gdb import parse_database

SCHEDULE = """
% Example 2.1: time 0 is midnight some Monday, unit = one minute.
% A train leaves Liege for Brussels 5 minutes after time 0 and every
% 40 minutes thereafter, arriving 60 minutes after departure.
relation train[2; 2] {
  (40n+5, 40n+65; "Liege", "Brussels") where T1 >= 0 & T2 = T1 + 60;
  (60n+10, 60n+100; "Liege", "Antwerp") where T1 >= 0 & T2 = T1 + 90;
}
"""


def main():
    db = parse_database(SCHEDULE)
    train = db.relation("train")

    print("The generalized relation (finitely many tuples, infinitely")
    print("many ground facts):")
    print(train)
    print()

    print("A few concrete departures within the first three hours:")
    for flat in sorted(train.extension(0, 180)):
        t1, t2, origin, destination = flat
        print("  leaves %-6s at %4d, arrives %-9s at %4d" % (origin, t1, destination, t2))
    print()

    # Infinite extension, finite representation: membership far beyond
    # anything we enumerated.
    week = 7 * 24 * 60
    print("Is there a Brussels train leaving exactly one week in? ->",
          train.contains_point((week + 5, week + 65), ("Liege", "Brussels")))
    print()

    print("First-order queries (the KSW90 language: negation, no recursion)")
    print("-----------------------------------------------------------------")

    q1 = 'exists t2 (train(t1, t2; "Liege", C))'
    answers = evaluate_query(db, q1)
    print("Q1: departure times per destination —", q1)
    print(answers.relation)
    print()

    q2 = (
        'exists b (train(t, b; "Liege", "Brussels")) and t >= 50 and '
        'not exists u (exists c (train(u, c; "Liege", "Brussels")) '
        "and u >= 50 and u < t)"
    )
    answers = evaluate_query(db, q2)
    print("Q2: the first Brussels train at or after minute 50")
    print("    ->", sorted(answers.extension(0, 500)))
    print()

    q3 = 'not exists t1, t2 (train(t1, t2; "Liege", C))'
    answers = evaluate_query(db, q3)
    print("Q3: active-domain cities receiving no train from Liege")
    print("    ->", sorted(answers.extension(0, 1)))


if __name__ == "__main__":
    main()
