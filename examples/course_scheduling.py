"""Example 4.1 of the paper, reproduced end to end.

The extensional relation ``course`` says the database course runs
every Monday 8–10 (time unit: one hour, week = 168).  The deductive
program defines ``problems``: problem sessions start right after the
course and repeat every other day (48 hours).  The paper traces the
naive generalized-tuple-at-a-time bottom-up evaluation through eight
derivation steps and shows it terminates by free-extension and
constraint safety; this script prints the same trace.

Run with::

    python examples/course_scheduling.py
"""

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

PROGRAM = """
% Problem sessions are given right after the course ...
problems(t1 + 2, t2 + 2; "database") <- course(t1, t2; "database").
% ... and every other day thereafter.
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


def main():
    edb = parse_database(EDB)
    program = parse_program(PROGRAM)

    print("EDB:")
    print(edb)
    print()
    print("Program:")
    print(program)
    print()

    print("Naive bottom-up trace (T_GP, one accepted tuple per line —")
    print("compare Section 4.3 of the paper; offsets are canonical")
    print("representatives mod 168, the paper lists 10, 58, 106, 154,")
    print("202, 250, 298, 346 before normalization):")
    engine = DeductiveEngine(program, edb, strategy="naive")
    for round_number, fresh in engine.trace():
        for gt in fresh.get("problems", []):
            print("  round %d: %s" % (round_number, gt))
    print()

    model = DeductiveEngine(program, edb).run(check_free_extension_safety=True)
    stats = model.stats
    print("Termination: constraint safe =", stats.constraint_safe)
    print("Free-extension safety (Theorem 4.2 check):",
          stats.free_extension_safe_checked)
    print("Rounds:", stats.rounds,
          "— tuples accepted:", stats.total_new_tuples())
    print()

    problems = model.relation("problems")
    print("Closed form of `problems`:")
    print(problems)
    print()

    print("Problem sessions in the first fortnight (hours):")
    fortnight = sorted(t1 for (t1, _, __) in problems.extension(0, 336))
    print("  ", fortnight)


if __name__ == "__main__":
    main()
