#!/usr/bin/env python
"""Validate a ``--trace`` JSONL file against the event-bus schema.

Stdlib-only (runs in CI without installing anything)::

    python tools/check_trace.py trace.jsonl --require-rounds 8 \\
        --require-kinds engine.run engine.round plan.operator

Checks, per line: valid JSON object; ``seq`` strictly increasing from
1; numeric ``ts``; a known ``kind``; and the kind-specific required
fields of ``repro.util.hooks``'s event vocabulary.  Exit code 0 on a
valid trace, 1 with one diagnostic per violation otherwise.
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys

#: kind -> fields every event of that kind must carry (beyond seq/ts).
REQUIRED_FIELDS = {
    "engine.run": ("phase",),
    "engine.stratum": ("phase", "stratum"),
    "engine.round": ("phase", "round", "stratum"),
    "plan.operator": ("op", "out", "duration_s"),
    "kernel.batch": ("clause", "variant", "step", "size", "hits", "fast_path"),
    "checkpoint.write": ("path", "bytes", "duration_s"),
    "budget.charge": ("dimension", "amount", "total"),
    "coverage.cache": ("round", "stratum", "enabled", "hits", "misses"),
    "service.job": ("phase", "job_id"),
    "shard.worker": ("phase", "worker", "round"),
    "shard.dispatch": ("phase", "transport", "workers", "pipe_bytes", "shm_bytes"),
    "shard.degraded": ("reason", "restarts_used", "pending_tasks"),
    "edb.txn": ("root", "tx", "asserted", "retracted", "wal_bytes"),
    "edb.recover": ("root", "checkpoint_tx", "replayed_txns", "truncated_bytes", "head_tx"),
    "maintain.delta": ("tx", "inserted", "retracted", "rounds", "recomputed"),
    "magic.rewrite": (
        "goal",
        "reachable",
        "restricted",
        "demand_rules",
        "dropped_clauses",
    ),
    "magic.seed": ("predicate", "magic", "zone", "data"),
}

#: extra fields required on specific phases.
PHASE_FIELDS = {
    ("engine.run", "begin"): ("strategy", "safety", "strata"),
    ("engine.run", "end"): ("outcome",),
    ("engine.round", "end"): ("derived", "accepted", "duration_s"),
    ("service.job", "outcome"): ("state", "outcome", "attempts"),
    ("shard.worker", "lost"): ("reason", "exitcode"),
    ("shard.worker", "respawn"): ("restarts_used",),
    ("shard.worker", "retry"): ("tasks",),
    ("shard.dispatch", "round"): ("round", "tasks", "segments"),
    ("shard.dispatch", "stratum"): ("stratum", "segments"),
}

OPERATORS = {"join", "anti-join", "carrier", "projection"}

#: legal fast_path values on kernel.batch events.
FAST_PATHS = {"hash", "fused-closure", "product", "carrier", "projection"}


def check(path, require_rounds=None, require_kinds=()):
    """Validate one trace file; returns a list of violation strings."""
    problems = []
    seen_kinds = set()
    round_ends = 0
    last_seq = 0
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as error:
        return ["cannot read %s: %s" % (path, error)]
    if not lines:
        problems.append("trace is empty")
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError as error:
            problems.append("line %d: not valid JSON: %s" % (number, error))
            continue
        if not isinstance(event, dict):
            problems.append("line %d: not a JSON object" % number)
            continue
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(
                "line %d: seq %r not strictly increasing after %d"
                % (number, seq, last_seq)
            )
        else:
            last_seq = seq
        if not isinstance(event.get("ts"), numbers.Real):
            problems.append("line %d: missing numeric ts" % number)
        kind = event.get("kind")
        if kind not in REQUIRED_FIELDS:
            problems.append("line %d: unknown kind %r" % (number, kind))
            continue
        seen_kinds.add(kind)
        for field in REQUIRED_FIELDS[kind]:
            if field not in event:
                problems.append(
                    "line %d: %s missing field %r" % (number, kind, field)
                )
        for field in PHASE_FIELDS.get((kind, event.get("phase")), ()):
            if field not in event:
                problems.append(
                    "line %d: %s/%s missing field %r"
                    % (number, kind, event.get("phase"), field)
                )
        if kind == "plan.operator" and event.get("op") not in OPERATORS:
            problems.append(
                "line %d: unknown operator %r" % (number, event.get("op"))
            )
        if kind == "kernel.batch" and event.get("fast_path") not in FAST_PATHS:
            problems.append(
                "line %d: unknown fast_path %r" % (number, event.get("fast_path"))
            )
        if kind == "engine.round" and event.get("phase") == "end":
            round_ends += 1
    for kind in require_kinds:
        if kind not in seen_kinds:
            problems.append("required kind %r never appeared" % kind)
    if require_rounds is not None and round_ends != require_rounds:
        problems.append(
            "expected %d engine.round end spans, found %d"
            % (require_rounds, round_ends)
        )
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("trace", help="JSONL trace file written by --trace")
    parser.add_argument(
        "--require-rounds",
        type=int,
        metavar="N",
        help="assert exactly N completed engine rounds",
    )
    parser.add_argument(
        "--require-kinds",
        nargs="*",
        default=(),
        metavar="KIND",
        help="event kinds that must appear at least once",
    )
    args = parser.parse_args(argv)
    problems = check(
        args.trace,
        require_rounds=args.require_rounds,
        require_kinds=args.require_kinds,
    )
    for problem in problems:
        print("FAIL: %s" % problem, file=sys.stderr)
    if problems:
        return 1
    print("trace ok: %s" % args.trace)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
