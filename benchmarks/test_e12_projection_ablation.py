"""E12 — ablation: projection fast paths vs forced alignment.

DESIGN.md calls out the aligned-disjunct form as the exactness
workhorse and the fast paths (period-1 columns, equality-linked
columns, unconstrained columns) as what keeps the common join/shift
patterns in the paper's compact form.  This experiment measures what
the fast paths are worth: the same projections computed with the fast
paths enabled vs forced through alignment, plus the effect on the
engine's closed-form sizes.
"""

import pytest

from repro.constraints import ConstraintSystem
from repro.gdb import GeneralizedRelation, GeneralizedTuple
from repro.lrp import Lrp

from workloads import schedule_database


def equality_linked_relation(n):
    """Tuples where the dropped column is equality-linked — the fast
    path the engine hits on every clause of Example 4.1."""
    tuples = []
    for k in range(n):
        tuples.append(
            GeneralizedTuple(
                (Lrp(168, (8 + 24 * k) % 168), Lrp(168, (10 + 24 * k) % 168)),
                (),
                ConstraintSystem.parse("T2 = T1 + 2", 2),
            )
        )
    return GeneralizedRelation(2, 0, tuples)


def window_linked_relation(n):
    """Tuples where the dropped column is window-linked (no equality)
    — both paths must align."""
    tuples = []
    for k in range(n):
        tuples.append(
            GeneralizedTuple(
                (Lrp(6, k % 6), Lrp(8, (k + 3) % 8)),
                (),
                ConstraintSystem.parse("T1 <= T2 & T2 <= T1 + 4", 2),
            )
        )
    return GeneralizedRelation(2, 0, tuples)


@pytest.mark.parametrize("force", (False, True), ids=("fast-path", "aligned"))
def test_e12_equality_linked(benchmark, force):
    relation = equality_linked_relation(24)
    result = benchmark(lambda: relation.project([0], [], force_aligned=force))
    assert result.temporal_arity == 1


@pytest.mark.parametrize("force", (False, True), ids=("fast-path", "aligned"))
def test_e12_window_linked(benchmark, force):
    relation = window_linked_relation(12)
    result = benchmark(lambda: relation.project([0], [], force_aligned=force))
    assert result.temporal_arity == 1


def test_e12_results_agree(benchmark):
    def check():
        for maker in (equality_linked_relation, window_linked_relation):
            relation = maker(10)
            fast = relation.project([0], [])
            forced = relation.project([0], [], force_aligned=True)
            assert fast.extension(-50, 260) == forced.extension(-50, 260)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_e12_fast_path_keeps_representation_small(benchmark):
    relation = equality_linked_relation(24)

    def sizes():
        fast = relation.project([0], [])
        forced = relation.project([0], [], force_aligned=True)
        return len(fast), len(forced)

    fast_size, forced_size = benchmark.pedantic(sizes, rounds=1, iterations=1)
    assert fast_size <= forced_size


def report():
    import time

    print("E12 — projection ablation (fast paths vs forced alignment)")
    print("%-18s %10s %12s %10s %12s" % ("workload", "fast (ms)", "tuples", "forced", "tuples"))
    for name, maker, n in (
        ("equality-linked", equality_linked_relation, 24),
        ("window-linked", window_linked_relation, 12),
    ):
        relation = maker(n)
        start = time.perf_counter()
        fast = relation.project([0], [])
        fast_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        forced = relation.project([0], [], force_aligned=True)
        forced_ms = (time.perf_counter() - start) * 1000
        print(
            "%-18s %10.2f %12d %10.2f %12d"
            % (name, fast_ms, len(fast), forced_ms, len(forced))
        )


if __name__ == "__main__":
    report()
