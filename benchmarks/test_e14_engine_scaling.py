"""E14 — scaling of the bottom-up engine with the closed-form size.

Theorem 4.2 bounds the number of free extensions via the EDB periods;
the actual work of the engine scales with the number of residue
classes the closed form ends up holding.  This experiment sweeps that
number (seed period P with a coprime shift gives P classes) and the
number of EDB tuples, for both strategies — quantifying the cost of
the closed-form construction the paper advocates doing "once and for
all".
"""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database

from workloads import shift_cycle_workload

CLASS_COUNTS = (6, 12, 24, 48)


@pytest.mark.parametrize("classes", CLASS_COUNTS)
def test_e14_classes_sweep(benchmark, classes):
    # period = classes, shift coprime → exactly `classes` residue classes.
    program, edb = shift_cycle_workload(classes, 1)
    model = benchmark(
        lambda: DeductiveEngine(program, edb).run()
    )
    assert model.stats.constraint_safe
    assert len(model.relation("p").normalize()) == classes


@pytest.mark.parametrize("strategy", ("naive", "semi-naive"))
def test_e14_strategy_scaling(benchmark, strategy):
    program, edb = shift_cycle_workload(24, 1)
    model = benchmark(
        lambda: DeductiveEngine(program, edb, strategy=strategy).run()
    )
    assert model.stats.constraint_safe


@pytest.mark.parametrize("tuples", (2, 4, 8))
def test_e14_edb_size_sweep(benchmark, tuples):
    rows = "\n".join(
        "(24n+%d) where T1 >= 0;" % (3 * k) for k in range(tuples)
    )
    edb = parse_database("relation seed[1; 0] {\n%s\n}" % rows)
    program = parse_program("p(t) <- seed(t). p(t + 6) <- p(t).")
    model = benchmark(lambda: DeductiveEngine(program, edb).run())
    assert model.stats.constraint_safe


def report():
    import time

    print("E14 — engine scaling with closed-form size")
    print("%10s %10s %12s %12s" % ("classes", "rounds", "naive (ms)", "semi (ms)"))
    for classes in CLASS_COUNTS:
        program, edb = shift_cycle_workload(classes, 1)
        start = time.perf_counter()
        naive = DeductiveEngine(program, edb, strategy="naive").run()
        naive_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        semi = DeductiveEngine(program, edb).run()
        semi_ms = (time.perf_counter() - start) * 1000
        assert naive.relation("p").equivalent(semi.relation("p"))
        print(
            "%10d %10d %12.1f %12.1f"
            % (classes, semi.stats.rounds, naive_ms, semi_ms)
        )


if __name__ == "__main__":
    report()
