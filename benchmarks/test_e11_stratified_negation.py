"""E11 — stratified negation (Section 3.2's top of the hierarchy).

The paper: "when extended with stratified negation, these languages
have a query expressiveness that corresponds to the class of
ω-regular languages".  This experiment exercises the implementation
of that extension over generalized databases:

* correctness of negation against complements (difference semantics
  asserted pointwise on windows);
* the stratified evaluation pipeline (strata counted, closed forms
  finite);
* cost of the complement-based negation as relations grow.
"""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database

from workloads import schedule_database

EDB = """
relation sched[1; 0] { (10n) where T1 >= 0; }
relation holiday[1; 0] { (30n) where T1 >= 0; }
"""

PROGRAMS = {
    "edb-negation": "runs(t) <- sched(t), not holiday(t).",
    "idb-negation": """
        busy(t) <- sched(t).
        busy(t + 5) <- busy(t).
        free(t) <- not busy(t), t >= 0, t < 60.
    """,
    "three-strata": """
        p(t) <- sched(t).
        q(t) <- not p(t), t >= 0, t < 40.
        r(t) <- not q(t), t >= 0, t < 40.
    """,
}


def run(name):
    program = parse_program(PROGRAMS[name])
    edb = parse_database(EDB)
    return DeductiveEngine(program, edb).run()


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_e11_programs_close(benchmark, name):
    model = benchmark(lambda: run(name))
    assert model.stats.constraint_safe


def test_e11_difference_semantics(benchmark):
    model = benchmark.pedantic(
        lambda: run("edb-negation"), rounds=1, iterations=1
    )
    runs = model.relation("runs")
    for t in range(-20, 200):
        expected = t >= 0 and t % 10 == 0 and t % 30 != 0
        assert runs.contains_point((t,)) == expected


def test_e11_double_negation_restores(benchmark):
    model = benchmark.pedantic(
        lambda: run("three-strata"), rounds=1, iterations=1
    )
    assert model.stats.strata == 3
    p = {t for (t,) in model.extension("p", 0, 40)}
    r = {t for (t,) in model.extension("r", 0, 40)}
    assert r == p  # ¬¬p restricted to the window


@pytest.mark.parametrize("n", (4, 8, 16))
def test_e11_complement_cost(benchmark, n):
    relation = schedule_database(n, seed=11)

    def complement():
        return relation.complement()

    result = benchmark(complement)
    assert result.temporal_arity == 2


def report():
    print("E11 — stratified negation")
    for name in sorted(PROGRAMS):
        model = run(name)
        predicates = {
            predicate: len(model.relation(predicate))
            for predicate in model.predicates()
        }
        print(
            "  %-14s strata=%d rounds=%2d constraint_safe=%s tuples=%s"
            % (
                name,
                model.stats.strata,
                model.stats.rounds,
                model.stats.constraint_safe,
                predicates,
            )
        )


if __name__ == "__main__":
    report()
