"""E2 — Theorem 4.2: free-extension safety is always reached, within
the product-of-periods bound.

For the one-chain workload ``p(t) <- seed(t); p(t+k) <- p(t)`` over a
seed of period P, the closed form has ``P / gcd(P, k)`` residue
classes; free signatures stabilize after exactly that many productive
rounds — always at most the paper's bound (the product of the EDB
periods, here P).  The sweep asserts the bound on a grid and the
benchmark times a representative evaluation.
"""

import math

import pytest

from repro.core import DeductiveEngine

from workloads import shift_cycle_workload

GRID = [
    (period, shift)
    for period in (6, 12, 24, 48, 168)
    for shift in (2, 5, 18, 48)
]


def measure(period, shift):
    program, edb = shift_cycle_workload(period, shift)
    model = DeductiveEngine(program, edb, strategy="naive").run(
        check_free_extension_safety=True
    )
    return model


def test_e2_bound_holds_across_grid(benchmark):
    def sweep():
        rows = []
        for (period, shift) in GRID:
            model = measure(period, shift)
            classes = period // math.gcd(period, shift)
            rows.append(
                (period, shift, model.stats.signature_stable_round, classes)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for (period, shift, stable_round, classes) in rows:
        # Theorem 4.2's bound: at most the product of EDB periods.
        assert stable_round <= period
        # Our sharper prediction for this workload family.
        assert stable_round == classes


def test_e2_free_extension_safety_verified(benchmark):
    model = benchmark.pedantic(
        lambda: measure(168, 48), rounds=1, iterations=1
    )
    assert model.stats.free_extension_safe_checked is True
    assert model.stats.constraint_safe


@pytest.mark.parametrize("period,shift", [(24, 5), (168, 48)])
def test_e2_single_configurations(benchmark, period, shift):
    model = benchmark(lambda: measure(period, shift))
    assert model.stats.constraint_safe


def report():
    print("E2 — iterations to free-extension safety vs Theorem 4.2 bound")
    print("%8s %6s %18s %14s %8s" % ("period", "shift", "stable at round", "classes", "bound"))
    for (period, shift) in GRID:
        model = measure(period, shift)
        classes = period // math.gcd(period, shift)
        print(
            "%8d %6d %18d %14d %8d"
            % (period, shift, model.stats.signature_stable_round, classes, period)
        )


if __name__ == "__main__":
    report()
