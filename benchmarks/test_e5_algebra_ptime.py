"""E5 — the PTIME algebra claim quoted in Section 4.3.

"the intersection, the join, and the projection operations on
generalized relations can be computed in PTIME (see [KSW90])".
The benchmark sweeps the relation size n and times intersection,
product+selection (join), projection, and union on timetable-style
relations; the report fits the growth rate, which should be clearly
polynomial (≈ quadratic in n for the pairwise operations).
"""

import time

import pytest

from repro.constraints.atoms import Comparison, TemporalTerm

from workloads import schedule_database

SIZES = (8, 16, 32, 64)


def make_pair(n):
    return schedule_database(n, seed=1), schedule_database(n, seed=2)


@pytest.mark.parametrize("n", SIZES)
def test_e5_intersection(benchmark, n):
    left, right = make_pair(n)
    result = benchmark(lambda: left.intersect(right))
    assert result.temporal_arity == 2


@pytest.mark.parametrize("n", SIZES)
def test_e5_join(benchmark, n):
    left, right = make_pair(n)
    # Join on the shared arrival/departure column: r1.T2 = r2.T1.
    atom = Comparison("=", TemporalTerm(1), TemporalTerm(2))

    def join():
        return left.product(right).select([atom]).project([0, 3], [])

    result = benchmark(join)
    assert result.temporal_arity == 2


@pytest.mark.parametrize("n", SIZES)
def test_e5_projection(benchmark, n):
    relation = schedule_database(n, seed=3)
    result = benchmark(lambda: relation.project([0], []))
    assert result.temporal_arity == 1


@pytest.mark.parametrize("n", SIZES)
def test_e5_union_and_normalize(benchmark, n):
    left, right = make_pair(n)
    result = benchmark(lambda: left.union(right).normalize())
    assert len(result) <= 2 * n


def report():
    print("E5 — algebra scaling (PTIME claim of [KSW90], Section 4.3)")
    print(
        "%6s %14s %14s %14s" % ("n", "intersect (ms)", "join (ms)", "project (ms)")
    )
    atom = Comparison("=", TemporalTerm(1), TemporalTerm(2))
    rows = []
    for n in SIZES:
        left, right = make_pair(n)

        def timed(fn):
            start = time.perf_counter()
            fn()
            return (time.perf_counter() - start) * 1000

        t_meet = timed(lambda: left.intersect(right))
        t_join = timed(
            lambda: left.product(right).select([atom]).project([0, 3], [])
        )
        t_proj = timed(lambda: left.project([0], []))
        rows.append((n, t_meet, t_join, t_proj))
        print("%6d %14.2f %14.2f %14.2f" % (n, t_meet, t_join, t_proj))
    # Growth-rate sanity: doubling n must not blow up super-polynomially
    # (factor clearly below cubic between consecutive doublings).
    for (n1, a1, b1, c1), (n2, a2, b2, c2) in zip(rows, rows[1:]):
        for before, after in ((a1, a2), (b1, b2), (c1, c2)):
            if before > 1e-3:
                assert after / before < 16, "super-polynomial growth?"
    print("  growth between doublings stays polynomial (< n^3 factor)")


if __name__ == "__main__":
    report()
