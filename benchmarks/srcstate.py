"""Which code a benchmark artifact actually measured.

Every ``BENCH_*.json`` writer stamps its payload with
``src_digest()`` — a content hash over the tracked files under
``src/`` — and the staleness gate (:mod:`report`) compares the stamp
against the current tree.  Hashing *content* instead of comparing the
artifact's mtime to the last ``src/`` commit time makes the check
robust where the old mtime heuristic lied in both directions: an
artifact regenerated before the measured change was committed looked
fresh forever, and ``git checkout`` / clock skew made fresh artifacts
look stale.
"""

from __future__ import annotations

import hashlib
import os
import subprocess


def _repo_base():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _tracked_files(base):
    """Repo-relative paths of the tracked ``src/`` files, or None when
    the tree is not a git checkout (or git is unavailable)."""
    try:
        output = subprocess.run(
            ["git", "ls-files", "--", "src"],
            cwd=base,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if output.returncode != 0:
        return None
    files = sorted(line.strip() for line in output.stdout.splitlines() if line.strip())
    return files or None


def _walked_files(base):
    """Fallback for non-git trees: every ``.py`` under ``src/``."""
    files = []
    root = os.path.join(base, "src")
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                files.append(os.path.relpath(path, base))
    return files


def src_digest(base=None):
    """A short content digest of the tracked ``src/`` tree, or None
    when there is nothing to hash (no ``src/`` directory)."""
    if base is None:
        base = _repo_base()
    files = _tracked_files(base) or _walked_files(base)
    if not files:
        return None
    digest = hashlib.sha256()
    for rel in files:
        path = os.path.join(base, rel)
        if not os.path.isfile(path):
            continue
        digest.update(rel.replace(os.sep, "/").encode("utf-8"))
        digest.update(b"\x00")
        with open(path, "rb") as handle:
            digest.update(handle.read())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def stamp(payload, base=None):
    """Record the current digest in a benchmark payload (in place) and
    return the payload — the one-liner every bench ``write()`` calls."""
    payload["src_digest"] = src_digest(base)
    return payload
