"""E9 — Section 3.1: measured periods and offsets of Datalog1S
minimal models vs the structural bounds.

The [CI88] result the paper cites says minimal models are eventually
periodic, with bounds on the period and the offset.  For random
forward programs made of seeded chains joined by a conjunction, the
canonical model period must divide the lcm of the chain increments,
and the threshold must stay below the product-style bound used by the
frontier automaton.  The benchmark times closed-form model
construction.
"""

import math
import random

import pytest

from repro.datalog1s import minimal_model, parse_datalog1s

from workloads import random_datalog1s_text


def lcm_all(values):
    out = 1
    for v in values:
        out = out * v // math.gcd(out, v)
    return out


def build_cases(count, chains, seed):
    rng = random.Random(seed)
    cases = []
    for _ in range(count):
        text, steps = random_datalog1s_text(rng, chains=chains)
        cases.append((parse_datalog1s(text), steps))
    return cases


@pytest.mark.parametrize("chains", (2, 3))
def test_e9_period_divides_lcm(benchmark, chains):
    cases = build_cases(10, chains, seed=9 + chains)

    def sweep():
        rows = []
        for program, steps in cases:
            model = minimal_model(program)
            for key in model.keys():
                eps = model.set_of(*key)
                rows.append((steps, eps.period, eps.threshold))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for steps, period, threshold in rows:
        bound = lcm_all(steps)
        assert bound % period == 0, (steps, period)
        # Frontier bound: threshold < start offsets + one full cycle of
        # window states; generous structural cap for this family.
        assert threshold <= 8 + 2 * bound


def test_e9_meet_period_is_lcm_for_coprime(benchmark):
    program = parse_datalog1s(
        """
        a(0). a(t + 3) <- a(t).
        b(0). b(t + 5) <- b(t).
        meet(t) <- a(t), b(t).
        """
    )
    model = benchmark(lambda: minimal_model(program))
    assert model.set_of("meet").period == 15


def report():
    print("E9 — Datalog1S model periods vs lcm-of-increments bound")
    print("%-24s %10s %10s %12s" % ("chain steps", "period", "thresh", "lcm bound"))
    for chains in (2, 3):
        for program, steps in build_cases(6, chains, seed=9 + chains):
            model = minimal_model(program)
            eps = model.set_of("meet")
            print(
                "%-24s %10d %10d %12d"
                % (steps, eps.period, eps.threshold, lcm_all(steps))
            )


if __name__ == "__main__":
    report()
