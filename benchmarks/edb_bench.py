"""Durable-EDB benchmark: incremental maintenance vs from-scratch.

Commits a stream of single-tuple transactions against an
:class:`~repro.edb.EdbStore` and times, per transaction, (a) the
incremental refresh of a :class:`~repro.edb.MaterializedModel` and
(b) a from-scratch semi-naive fixpoint over the same snapshot — the
exact recompute the maintainer avoids.  A retraction phase does the
same for the DRed overdelete/rederive path.  Recovery cost is measured
by reopening the store with a cold WAL replay and again after a
checkpoint prunes the log.  Results go to ``BENCH_edb.json``::

    python benchmarks/edb_bench.py              # full (24 insert txns)
    python benchmarks/edb_bench.py --quick      # CI smoke (8 txns)
    python benchmarks/edb_bench.py --check      # exit 1 unless maintain
                                                # beats recompute overall

Every maintained model is cross-checked ``equivalent()`` to its
from-scratch twin before any number is reported.  The ``report()``
hook makes ``python benchmarks/report.py edb`` regenerate the
artifact alongside the experiment tables.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro.core import DeductiveEngine, parse_program
from repro.edb import EdbStore, MaterializedModel
from repro.gdb.parser import parse_generalized_tuple

import srcstate

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

#: The overall speedup ``--check`` requires (CI benchmark-smoke job).
CHECK_SPEEDUP = 1.0


def _course(index):
    offset = 7 * (index % 23)
    return parse_generalized_tuple(
        '(168n+%d, 168n+%d; "c%d") where T2 = T1 + 2'
        % (offset, offset + 2, index),
        2,
        1,
    )


def _assert_op(index):
    return {"op": "assert", "relation": "course", "tuple": _course(index)}


def _retract_op(index):
    return {"op": "retract", "relation": "course", "tuple": _course(index)}


def _scratch(store):
    engine = DeductiveEngine(
        parse_program(PROGRAM), store.snapshot(), strategy="semi-naive"
    )
    return engine.run()


def _phase(store, maintained, ops_stream):
    """Apply each ops batch; time maintain vs recompute per txn."""
    maintain_ms = []
    scratch_ms = []
    recomputes = 0
    for ops in ops_stream:
        store.apply(ops)
        start = time.perf_counter()
        model = maintained.refresh(store)
        maintain_ms.append((time.perf_counter() - start) * 1000)
        if maintained.last_report.recomputed:
            recomputes += 1
        start = time.perf_counter()
        scratch = _scratch(store)
        scratch_ms.append((time.perf_counter() - start) * 1000)
        assert model.equivalent(scratch), "maintained model diverged"
    total_maintain = sum(maintain_ms)
    total_scratch = sum(scratch_ms)
    return {
        "txns": len(maintain_ms),
        "recomputes": recomputes,
        "maintain": {
            "total_ms": round(total_maintain, 3),
            "mean_ms": round(total_maintain / len(maintain_ms), 3),
            "max_ms": round(max(maintain_ms), 3),
        },
        "recompute": {
            "total_ms": round(total_scratch, 3),
            "mean_ms": round(total_scratch / len(scratch_ms), 3),
            "max_ms": round(max(scratch_ms), 3),
        },
        "speedup": round(total_scratch / total_maintain, 2),
    }


def _time_reopen(root):
    start = time.perf_counter()
    store = EdbStore(root)
    wall_ms = (time.perf_counter() - start) * 1000
    store.close()
    return round(wall_ms, 3)


def run(quick=False):
    """The full benchmark payload (a JSON-safe dict)."""
    inserts = 8 if quick else 24
    retracts = max(2, inserts // 3)
    root = tempfile.mkdtemp(prefix="edb-bench-")
    try:
        store = EdbStore(os.path.join(root, "store"))
        store.apply(
            [
                {
                    "op": "declare",
                    "relation": "course",
                    "temporal_arity": 2,
                    "data_arity": 1,
                },
                _assert_op(0),
            ]
        )
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)  # first materialization, not timed
        insert_phase = _phase(
            store, maintained, ([_assert_op(k)] for k in range(1, inserts + 1))
        )
        retract_phase = _phase(
            store, maintained, ([_retract_op(k)] for k in range(1, retracts + 1))
        )
        head_tx = store.head_tx
        wal_bytes = sum(
            os.path.getsize(os.path.join(dirpath, name))
            for dirpath, _, names in os.walk(store.root)
            for name in names
        )
        store.close()
        replay_ms = _time_reopen(store.root)
        reopened = EdbStore(store.root)
        reopened.checkpoint()
        reopened.close()
        checkpoint_ms = _time_reopen(store.root)
        return {
            "quick": quick,
            "insert_stream": insert_phase,
            "retract_stream": retract_phase,
            "recovery": {
                "head_tx": head_tx,
                "store_bytes": wal_bytes,
                "wal_replay_ms": replay_ms,
                "from_checkpoint_ms": checkpoint_ms,
            },
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def write(payload, path="BENCH_edb.json"):
    srcstate.stamp(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report():
    """Regenerate ``BENCH_edb.json`` and print the summary table
    (hooked into ``benchmarks/report.py``)."""
    payload = run()
    write(payload)
    _print_summary(payload)


def _print_summary(payload):
    print("Durable EDB — incremental maintain vs from-scratch (wall ms)")
    print(
        "%16s %6s %12s %12s %8s %10s"
        % ("stream", "txns", "maintain", "recompute", "speedup", "recomputes")
    )
    for key, label in (
        ("insert_stream", "inserts"),
        ("retract_stream", "retracts"),
    ):
        entry = payload[key]
        print(
            "%16s %6d %12.2f %12.2f %7.2fx %10d"
            % (
                label,
                entry["txns"],
                entry["maintain"]["total_ms"],
                entry["recompute"]["total_ms"],
                entry["speedup"],
                entry["recomputes"],
            )
        )
    recovery = payload["recovery"]
    print(
        "recovery at tx %d: cold WAL replay %.2f ms, after checkpoint "
        "%.2f ms (%d B on disk)"
        % (
            recovery["head_tx"],
            recovery["wal_replay_ms"],
            recovery["from_checkpoint_ms"],
            recovery["store_bytes"],
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default="BENCH_edb.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless incremental maintenance beats from-scratch "
        "recompute (>= %.1fx) on the insert stream" % CHECK_SPEEDUP,
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    write(payload, args.out)
    _print_summary(payload)
    if args.check:
        speedup = payload["insert_stream"]["speedup"]
        if speedup < CHECK_SPEEDUP:
            print(
                "FAIL: incremental maintenance %.2fx below the %.1fx gate "
                "over %d insert txns"
                % (speedup, CHECK_SPEEDUP, payload["insert_stream"]["txns"]),
                file=sys.stderr,
            )
            return 1
        print("check ok: maintain %.2fx >= %.1fx" % (speedup, CHECK_SPEEDUP))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
