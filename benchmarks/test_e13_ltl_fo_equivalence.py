"""E13 — Section 3.2: the FO query language is temporal logic.

The paper cites [GPSS80]: the query expressiveness of the [KSW90]
first-order language (restricted to one temporal argument over ℕ)
"is also the expressiveness of temporal logic with the operators
○, □, ◇ and U (until)".  This experiment runs paired queries — one
written in LTL and evaluated on the database's characteristic lasso
word, one written in first-order logic and evaluated by the algebra —
over a population of random temporal databases, and asserts that
every pair agrees.
"""

import random

import pytest

from repro.datalog1s.translate import eps_to_relation
from repro.fo import evaluate_query
from repro.gdb.database import GeneralizedDatabase
from repro.omega.ltl import And, Atom, F, G, Next, Not, Until, query_eps

from workloads import random_eps

P = Atom("p")

# Each pair: (name, LTL formula at time 0, FO sentence over relation p).
PAIRS = [
    ("now", P, "exists t (p(t) and t = 0)"),
    ("next3", Next(Next(Next(P))), "exists t (p(t) and t = 3)"),
    ("eventually", F(P), "exists t (p(t) and t >= 0)"),
    (
        "always",
        G(P),
        "not exists t (t >= 0 and not exists u (p(u) and u = t))",
    ),
    (
        "adjacent",
        F(And(P, Next(P))),
        "exists t (p(t) and p(t + 1) and t >= 0)",
    ),
    (
        "until",
        Until(P, Not(P)),
        # p U ¬p at 0: some t >= 0 with ¬p(t) and p everywhere before.
        "exists t (t >= 0 and not p(t) and "
        "not exists u (u >= 0 and u < t and not p(u)))",
    ),
    (
        "infinitely-often is NOT FO",  # sanity anchor: see assertion below
        G(F(P)),
        None,
    ),
]


def database_of(eps):
    db = GeneralizedDatabase()
    db.declare("p", 1, 0)
    db.set_relation("p", eps_to_relation(eps))
    return db


def check_population(count, seed):
    rng = random.Random(seed)
    agreements = 0
    for _ in range(count):
        eps = random_eps(rng)
        db = database_of(eps)
        for (name, formula, fo_text) in PAIRS:
            ltl_answer = query_eps(formula, eps)
            if fo_text is None:
                continue
            fo_answer = evaluate_query(db, fo_text).is_true()
            assert ltl_answer == fo_answer, (name, str(eps))
            agreements += 1
    return agreements


def test_e13_pairs_agree(benchmark):
    agreements = benchmark.pedantic(
        lambda: check_population(15, seed=13), rounds=1, iterations=1
    )
    assert agreements == 15 * (len(PAIRS) - 1)


@pytest.mark.parametrize("name", [n for (n, _, fo) in PAIRS if fo])
def test_e13_individual_queries(benchmark, name):
    rng = random.Random(131)
    cases = [random_eps(rng) for _ in range(6)]
    formula = next(f for (n, f, _) in PAIRS if n == name)
    fo_text = next(fo for (n, _, fo) in PAIRS if n == name)

    def run():
        results = []
        for eps in cases:
            db = database_of(eps)
            results.append(
                (query_eps(formula, eps), evaluate_query(db, fo_text).is_true())
            )
        return results

    results = benchmark(run)
    for ltl_answer, fo_answer in results:
        assert ltl_answer == fo_answer


def report():
    rng = random.Random(13)
    print("E13 — LTL vs FO query agreement (Section 3.2 / [GPSS80])")
    print("%-14s %8s %8s" % ("query", "LTL", "FO"))
    eps = random_eps(rng)
    db = database_of(eps)
    print("database:", eps)
    for (name, formula, fo_text) in PAIRS:
        ltl_answer = query_eps(formula, eps)
        fo_answer = (
            evaluate_query(db, fo_text).is_true() if fo_text else "(n/a)"
        )
        print("%-14s %8s %8s" % (name.split()[0], ltl_answer, fo_answer))
    total = check_population(15, seed=13)
    print("population check: %d paired answers, all equal" % total)


if __name__ == "__main__":
    report()
