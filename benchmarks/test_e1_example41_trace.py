"""E1 — the Example 4.1 trace (paper Section 4.3).

Regenerates the paper's worked bottom-up evaluation: the sequence of
generalized tuples ``(168n+10, 168n+12) … (168n+346, 168n+348)``
(canonically, the seven residue classes 10 + 24k mod 168), with
termination by free-extension + constraint safety after the eighth
derivation.  The benchmark times a full closed-form evaluation.
"""

from repro.core import DeductiveEngine

from workloads import example_41

PAPER_OFFSETS = [10, 58, 106, 154, 202, 250, 298, 346]


def run_engine():
    program, edb = example_41()
    return DeductiveEngine(program, edb, strategy="naive").run()


def test_e1_trace_matches_paper(benchmark):
    model = benchmark(run_engine)
    problems = model.relation("problems")
    # Every tuple the paper lists is in the closed form ...
    for start in PAPER_OFFSETS:
        assert problems.contains_point((start, start + 2), ("database",))
    # ... termination is by constraint safety, as Theorem 4.3 promises,
    assert model.stats.constraint_safe and not model.stats.gave_up
    # ... after the paper's eight derivation steps (7 new + 1 closing).
    assert model.stats.rounds == 8
    # The canonical closed form has the 7 residue classes 10 + 24k.
    offsets = sorted(gt.lrps[0].offset for gt in problems)
    assert offsets == [o % 168 for o in sorted(set(o % 168 for o in PAPER_OFFSETS))]


def report():
    """Print the regenerated trace (used to fill EXPERIMENTS.md)."""
    program, edb = example_41()
    engine = DeductiveEngine(program, edb, strategy="naive")
    print("E1 — Example 4.1 naive T_GP trace")
    for round_number, fresh in engine.trace():
        for gt in fresh.get("problems", []):
            print("  round %d: %s" % (round_number, gt))
    model = DeductiveEngine(program, edb).run(check_free_extension_safety=True)
    print(
        "  constraint safe: %s | free-extension safe: %s | rounds: %d"
        % (
            model.stats.constraint_safe,
            model.stats.free_extension_safe_checked,
            model.stats.rounds,
        )
    )


if __name__ == "__main__":
    report()
