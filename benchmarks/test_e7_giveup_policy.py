"""E7 — Section 4.4: give-up policy on non-closing programs.

Two workload families never become constraint safe:

* the *point seed* (``p(0)``, ``p(t+5) <- p(t)``) — all lrps stay at
  period 1, so each round adds a new pinned point forever;
* *unary arithmetic* (``double(t1+1, t2+2) <- double(t1, t2)``) — the
  language can define non-periodic relations (data expressiveness "at
  least primitive recursive"), for which no lrp closed form exists.

Theorem 4.2 still holds — free signatures stabilize immediately — and
the engine must take the paper's advice: give up after a bounded
number of extra rounds, returning a sound partial model, never
diverging.  The benchmark times the give-up path.
"""

import pytest

from repro.core import DeductiveEngine
from repro.util.errors import GiveUpError

from workloads import point_seed_workload, unary_arithmetic_workload


def run_with_patience(workload, patience):
    program, edb = workload
    engine = DeductiveEngine(
        program, edb, patience=patience, on_give_up="partial"
    )
    return engine.run()


def test_e7_point_seed_gives_up(benchmark):
    model = benchmark(lambda: run_with_patience(point_seed_workload(5), 8))
    assert model.stats.gave_up
    assert not model.stats.constraint_safe
    # Theorem 4.2: the free-signature set stabilized long before.
    assert model.stats.signature_stable_round <= 2
    # The partial model is sound.
    for t in (0, 5, 10):
        assert model.relation("p").contains_point((t,))


def test_e7_unary_arithmetic_gives_up(benchmark):
    model = benchmark.pedantic(
        lambda: run_with_patience(unary_arithmetic_workload(), 8),
        rounds=1,
        iterations=1,
    )
    assert model.stats.gave_up
    # The derived pairs satisfy t2 = 2 * t1 — a non-periodic relation.
    pairs = sorted(model.relation("double").extension(0, 20))
    assert pairs and all(t2 == 2 * t1 for (t1, t2) in pairs)


def test_e7_patience_budget_respected(benchmark):
    def run():
        rounds = []
        for patience in (3, 6, 12):
            model = run_with_patience(point_seed_workload(5), patience)
            rounds.append((patience, model.stats.rounds))
        return rounds

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for patience, total_rounds in rows:
        stable = 1  # signatures stable after round 1 for the point seed
        assert total_rounds <= stable + patience + 1


def test_e7_raises_by_default(benchmark):
    program, edb = point_seed_workload(5)

    def run():
        try:
            DeductiveEngine(program, edb, patience=4).run()
        except GiveUpError as error:
            return error
        raise AssertionError("expected GiveUpError")

    error = benchmark(run)
    assert error.partial_model is not None


def report():
    print("E7 — give-up policy (Section 4.4)")
    for name, workload in (
        ("point seed p(t+5)<-p(t)", point_seed_workload(5)),
        ("unary arithmetic double", unary_arithmetic_workload()),
    ):
        model = run_with_patience(workload, 8)
        print(
            "  %-28s gave_up=%s rounds=%d signatures stable at %d "
            "partial tuples=%d"
            % (
                name,
                model.stats.gave_up,
                model.stats.rounds,
                model.stats.signature_stable_round,
                model.stats.total_new_tuples(),
            )
        )


if __name__ == "__main__":
    report()
