"""Regenerate every experiment table in one go.

Runs the ``report()`` of each experiment module E1–E14 in order,
printing the rows recorded in EXPERIMENTS.md, plus the benchmark
modules (``plan``, ``service``, ``parallel``), which also write their
``BENCH_*.json`` artifacts.  After the selected reports it writes the
consolidated headline summary to ``BENCH_SUMMARY.md`` at the repo
root, built from whichever ``BENCH_*.json`` artifacts exist::

    python benchmarks/report.py            # all experiments + benches
    python benchmarks/report.py e4 e13     # a selection
    python benchmarks/report.py parallel   # just BENCH_parallel.json
"""

from __future__ import annotations

import importlib
import json
import os
import sys

import srcstate

EXPERIMENTS = [
    ("e1", "test_e1_example41_trace"),
    ("e2", "test_e2_safety_bound"),
    ("e3", "test_e3_data_expressiveness"),
    ("e4", "test_e4_query_expressiveness"),
    ("e5", "test_e5_algebra_ptime"),
    ("e6", "test_e6_closed_form_vs_ground"),
    ("e7", "test_e7_giveup_policy"),
    ("e8", "test_e8_ablations"),
    ("e9", "test_e9_ci_period_bounds"),
    ("e10", "test_e10_fo_negation"),
    ("e11", "test_e11_stratified_negation"),
    ("e12", "test_e12_projection_ablation"),
    ("e13", "test_e13_ltl_fo_equivalence"),
    ("e14", "test_e14_engine_scaling"),
    ("plan", "plan_bench"),
    ("service", "service_bench"),
    ("parallel", "parallel_bench"),
    ("kernel", "kernel_bench"),
    ("edb", "edb_bench"),
    ("query", "query_bench"),
]

#: The benchmark artifacts the consolidated summary reads.
ARTIFACTS = (
    "BENCH_plan.json",
    "BENCH_service.json",
    "BENCH_parallel.json",
    "BENCH_kernel.json",
    "BENCH_edb.json",
    "BENCH_query.json",
)


def _load(path):
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def _plan_lines(payload):
    e14 = payload["e14_shift_cycle"]
    return [
        "- Compiled plans vs reference on E14 (%d classes, semi-naive): "
        "**%.2fx** (%.2f ms vs %.2f ms)."
        % (
            e14["classes"],
            e14["semi-naive"]["speedup"],
            e14["semi-naive"]["compiled"]["wall_ms"],
            e14["semi-naive"]["reference"]["wall_ms"],
        )
    ]


def _service_lines(payload):
    healthy = payload["healthy"]["workers-4"]
    lines = [
        "- Batch of %d Example 4.1 jobs at 4 workers: **%.1f jobs/s** "
        "(%.0f ms)."
        % (healthy["jobs"], healthy["jobs_per_second"], healthy["wall_ms"])
    ]
    overhead = payload.get("fault_overhead")
    if overhead is not None:
        lines.append(
            "- Stress fault plan overhead at 4 workers: **%.2fx** wall time."
            % overhead
        )
    return lines


def _parallel_lines(payload):
    scaling = payload["e14_multi_chain"]
    lines = [
        "- Sharded rounds on the multi-chain E14 workload (%d chains, "
        "%d usable cpus): sequential %.0f ms, parallel 2 **%.2fx**, "
        "parallel 4 **%.2fx**."
        % (
            scaling["chains"],
            payload["cpus"],
            scaling["sequential"]["wall_ms"],
            scaling["parallel_2"]["speedup"],
            scaling["parallel_4"]["speedup"],
        )
    ]
    wire = payload.get("wire_protocol")
    if wire is not None:
        lines.append(
            "- Shared-memory delta plane: **%.2fx** fewer pipe bytes than "
            "the inline pipe protocol (%.1f B/dispatch vs %.1f B/dispatch; "
            "bulk payloads ride %d shm segments)."
            % (
                wire["pipe_bytes_ratio"],
                wire["shm"]["bytes_per_dispatch"],
                wire["pipe"]["bytes_per_dispatch"],
                wire["shm"]["segments"],
            )
        )
    faulted = payload.get("faulted_recovery")
    if faulted is not None:
        lines.append(
            "- Shard-worker crash recovery (one `%s` at parallel %d): "
            "**%.2fx** the clean parallel wall time, %d worker(s) lost "
            "and healed."
            % (
                faulted["fault_site"],
                faulted["parallelism"],
                faulted["recovery_overhead"],
                faulted["workers_lost"],
            )
        )
    for key, label in (
        ("coverage_cache_example41", "Example 4.1 naive"),
        ("coverage_cache_e14", "E14 naive"),
    ):
        ablation = payload[key]
        lines.append(
            "- Coverage cache on %s: %d of %d `implied_by_union` calls "
            "avoided." % (
                label,
                ablation["implied_by_union_saved"],
                ablation["uncached"]["misses"],
            )
        )
    return lines


def _kernel_lines(payload):
    e14 = payload["e14_shift_cycle"]
    dispatch = payload["dispatch"]
    return [
        "- Columnar kernel vs per-tuple ablation on E14 (%d classes, "
        "semi-naive): **%.2fx** (%.2f ms vs %.2f ms)."
        % (
            e14["classes"],
            e14["speedup"],
            e14["after"]["wall_ms"],
            e14["before"]["wall_ms"],
        ),
        "- Shard dispatch payload (%d tuples): column batches are "
        "**%.2fx** smaller than per-tuple JSON (%d B vs %d B)."
        % (
            dispatch["tuples"],
            dispatch["ratio"],
            dispatch["batch_bytes"],
            dispatch["per_tuple_bytes"],
        ),
    ]


def _edb_lines(payload):
    inserts = payload["insert_stream"]
    recovery = payload["recovery"]
    return [
        "- Incremental maintenance over %d insert txns: **%.2fx** vs "
        "from-scratch recompute (%.1f ms vs %.1f ms, %d recompute "
        "fallbacks)."
        % (
            inserts["txns"],
            inserts["speedup"],
            inserts["maintain"]["total_ms"],
            inserts["recompute"]["total_ms"],
            inserts["recomputes"],
        ),
        "- Recovery at tx %d: cold WAL replay %.2f ms, from checkpoint "
        "**%.2f ms**."
        % (
            recovery["head_tx"],
            recovery["wal_replay_ms"],
            recovery["from_checkpoint_ms"],
        ),
    ]


def _query_lines(payload):
    point = payload["point"]
    reach = payload["reachability"]
    return [
        "- Goal-directed point query on the %d-chain E14 workload: "
        "**%.1fx** fewer derived tuples than full materialization "
        "(%d vs %d), answers equivalent within the window."
        % (
            payload["chains"],
            point["tuple_reduction"],
            point["goal_directed"]["derived_tuples"],
            point["full"]["derived_tuples"],
        ),
        "- Reachability-only goal (no window): **%.1fx** fewer derived "
        "tuples from clause pruning alone."
        % reach["tuple_reduction"],
    ]


_SECTIONS = (
    ("BENCH_plan.json", "Plan layer", _plan_lines),
    ("BENCH_service.json", "Query service", _service_lines),
    ("BENCH_parallel.json", "Parallel fixpoint & coverage cache", _parallel_lines),
    ("BENCH_kernel.json", "Columnar kernel", _kernel_lines),
    ("BENCH_edb.json", "Durable EDB & incremental maintenance", _edb_lines),
    ("BENCH_query.json", "Goal-directed queries (magic sets)", _query_lines),
)


def write_summary(path="BENCH_SUMMARY.md"):
    """Write the consolidated headline summary from the ``BENCH_*.json``
    artifacts that exist next to ``path`` (missing ones are skipped)."""
    base = os.path.dirname(os.path.abspath(path))
    chunks = [
        "# Benchmark summary",
        "",
        "Headline numbers from the `BENCH_*.json` artifacts; regenerate "
        "with `python benchmarks/report.py plan service parallel kernel`.",
        "",
    ]
    found = False
    for artifact, title, render in _SECTIONS:
        payload = _load(os.path.join(base, artifact))
        if payload is None:
            continue
        found = True
        chunks.append("## %s (`%s`)" % (title, artifact))
        chunks.append("")
        chunks.extend(render(payload))
        chunks.append("")
    if not found:
        return None
    with open(path, "w") as handle:
        handle.write("\n".join(chunks))
    return path


def stale_artifacts(base=None):
    """The ``BENCH_*.json`` artifacts whose recorded ``src_digest``
    does not match the current tracked ``src/`` tree — their numbers
    were measured against different code than what is checked out.
    Artifacts written before digests existed (no ``src_digest`` key)
    are stale by definition."""
    if base is None:
        base = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    current = srcstate.src_digest(base)
    if current is None:
        return []
    stale = []
    for artifact in ARTIFACTS:
        payload = _load(os.path.join(base, artifact))
        if payload is None:
            continue
        if payload.get("src_digest") != current:
            stale.append(artifact)
    return stale


def flag_stale_artifacts(base=None, out=sys.stderr):
    """Print one warning per stale bench artifact; returns the list."""
    stale = stale_artifacts(base)
    for artifact in stale:
        print(
            "WARNING: %s was measured against a different src/ tree "
            "(src_digest mismatch) — regenerate it "
            "(python benchmarks/report.py %s)"
            % (artifact, artifact.replace("BENCH_", "").replace(".json", "")),
            file=out,
        )
    return stale


def main(argv=None):
    """Run the selected (default: all) experiment reports, then refresh
    the consolidated summary.

    ``--check`` turns stale-artifact warnings into a hard failure
    (exit 1) — the CI benchmark-smoke job runs ``report.py --check``
    after regenerating its artifacts so a bench number can never
    silently predate the code it claims to measure.  With ``--check``
    and no selections, nothing is re-run: it is a pure staleness gate.
    """
    argv = list(argv or [])
    check = "--check" in argv
    if check:
        argv = [name for name in argv if name != "--check"]
    stale = flag_stale_artifacts()
    if check and stale and not argv:
        print(
            "FAIL: %d stale benchmark artifact(s): %s"
            % (len(stale), ", ".join(stale)),
            file=sys.stderr,
        )
        return 1
    wanted = {name.lower() for name in argv} or None
    if check and wanted is None and not stale:
        print("check ok: no stale benchmark artifacts")
        return 0
    for key, module_name in EXPERIMENTS:
        if wanted is not None and key not in wanted:
            continue
        module = importlib.import_module(module_name)
        module.report()
        print()
    written = write_summary()
    if written is not None:
        print("consolidated summary -> %s" % written)
    if check:
        stale = stale_artifacts()
        ran = [key for key, _ in EXPERIMENTS if wanted is None or key in wanted]
        stale = [
            artifact
            for artifact in stale
            if artifact.replace("BENCH_", "").replace(".json", "") in ran
        ]
        if stale:
            print(
                "FAIL: artifacts still stale after regeneration: %s"
                % ", ".join(stale),
                file=sys.stderr,
            )
            return 1
        print("check ok: regenerated artifacts are fresh")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
