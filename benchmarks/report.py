"""Regenerate every experiment table in one go.

Runs the ``report()`` of each experiment module E1–E14 in order,
printing the rows recorded in EXPERIMENTS.md, plus the plan-layer
benchmark (``plan``), which also writes ``BENCH_plan.json``::

    python benchmarks/report.py            # all experiments + plan bench
    python benchmarks/report.py e4 e13     # a selection
    python benchmarks/report.py plan       # just regenerate BENCH_plan.json
"""

from __future__ import annotations

import importlib
import sys

EXPERIMENTS = [
    ("e1", "test_e1_example41_trace"),
    ("e2", "test_e2_safety_bound"),
    ("e3", "test_e3_data_expressiveness"),
    ("e4", "test_e4_query_expressiveness"),
    ("e5", "test_e5_algebra_ptime"),
    ("e6", "test_e6_closed_form_vs_ground"),
    ("e7", "test_e7_giveup_policy"),
    ("e8", "test_e8_ablations"),
    ("e9", "test_e9_ci_period_bounds"),
    ("e10", "test_e10_fo_negation"),
    ("e11", "test_e11_stratified_negation"),
    ("e12", "test_e12_projection_ablation"),
    ("e13", "test_e13_ltl_fo_equivalence"),
    ("e14", "test_e14_engine_scaling"),
    ("plan", "plan_bench"),
    ("service", "service_bench"),
]


def main(argv=None):
    """Run the selected (default: all) experiment reports."""
    wanted = {name.lower() for name in (argv or [])[0:]} or None
    for key, module_name in EXPERIMENTS:
        if wanted is not None and key not in wanted:
            continue
        module = importlib.import_module(module_name)
        module.report()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
