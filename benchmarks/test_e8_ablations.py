"""E8 — ablations on the evaluation strategy (Section 4.3).

Two design choices of the engine are swept on the Example 4.1 and
shift-cycle workloads:

* **naive vs semi-naive** T_GP rounds — same model, fewer derived
  tuples per round for semi-naive;
* **paper vs semantic** coverage — the paper's constraint-safety test
  matches only tuples with the same free extension; the semantic test
  is full containment.  Both stop at the same model here; the paper's
  test is cheaper per check but may accept more tuples.
"""

import itertools

import pytest

from repro.core import DeductiveEngine

from workloads import example_41, shift_cycle_workload

CONFIGS = list(itertools.product(("naive", "semi-naive"), ("paper", "semantic")))


def run(strategy, safety, workload):
    program, edb = workload
    return DeductiveEngine(program, edb, strategy=strategy, safety=safety).run()


@pytest.mark.parametrize("strategy,safety", CONFIGS)
def test_e8_example41_configs(benchmark, strategy, safety):
    model = benchmark(lambda: run(strategy, safety, example_41()))
    assert model.stats.constraint_safe
    offsets = sorted(gt.lrps[0].offset for gt in model.relation("problems"))
    assert offsets == [10, 34, 58, 82, 106, 130, 154]


@pytest.mark.parametrize("strategy,safety", CONFIGS)
def test_e8_shift_cycle_configs(benchmark, strategy, safety):
    model = benchmark(
        lambda: run(strategy, safety, shift_cycle_workload(48, 18))
    )
    assert model.stats.constraint_safe


def test_e8_all_configs_agree(benchmark):
    def compare():
        models = [run(s, c, example_41()) for (s, c) in CONFIGS]
        baseline = models[0].relation("problems")
        return all(
            model.relation("problems").equivalent(baseline)
            for model in models[1:]
        )

    assert benchmark.pedantic(compare, rounds=1, iterations=1)


def test_e8_seminaive_derives_less(benchmark):
    def derive_counts():
        naive = run("naive", "paper", shift_cycle_workload(48, 6))
        seminaive = run("semi-naive", "paper", shift_cycle_workload(48, 6))
        return (
            sum(naive.stats.derived_tuples_per_round),
            sum(seminaive.stats.derived_tuples_per_round),
        )

    naive_total, seminaive_total = benchmark.pedantic(
        derive_counts, rounds=1, iterations=1
    )
    assert seminaive_total < naive_total


def report():
    print("E8 — strategy / safety ablations")
    print(
        "%-12s %-10s %-24s %8s %14s"
        % ("strategy", "safety", "workload", "rounds", "derived total")
    )
    for (strategy, safety) in CONFIGS:
        for name, workload in (
            ("example 4.1", example_41()),
            ("cycle 48/18", shift_cycle_workload(48, 18)),
        ):
            model = run(strategy, safety, workload)
            print(
                "%-12s %-10s %-24s %8d %14d"
                % (
                    strategy,
                    safety,
                    name,
                    model.stats.rounds,
                    sum(model.stats.derived_tuples_per_round),
                )
            )


if __name__ == "__main__":
    report()
