"""Service-layer benchmark: batch throughput and the cost of resilience.

Times a batch of Example 4.1 run-jobs through
:class:`repro.service.QueryService` at several worker counts, then the
same batch under the stress fault plan (one killed worker + periodic
transient clause faults) to measure what retry-with-resume and worker
supervision cost.  Records wall time, throughput, and the service
counters in ``BENCH_service.json``::

    python benchmarks/service_bench.py           # full (32 jobs)
    python benchmarks/service_bench.py --quick   # CI smoke (12 jobs)
    python benchmarks/service_bench.py --check   # fail unless every job
                                                 # is terminal and every
                                                 # healthy job is ok

The ``report()`` hook makes ``python benchmarks/report.py service``
regenerate the artifact alongside the experiment tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.runtime.faults import FaultPlan, TransientFaultError
from repro.service import JobSpec, QueryService, RetryPolicy
from repro.util.errors import WorkerDiedError

import srcstate
from workloads import EXAMPLE_41_EDB, EXAMPLE_41_PROGRAM

WORKER_COUNTS = (1, 2, 4)
RETRY = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)


def _specs(jobs):
    return [
        JobSpec(
            "bench-%03d" % i,
            "run",
            program=EXAMPLE_41_PROGRAM,
            edb=EXAMPLE_41_EDB,
        )
        for i in range(jobs)
    ]


def _fault_plan():
    """The CI stress plan: kill the worker making the 3rd pickup, and
    raise a transient clause fault every 61st hit from hit 20."""
    return FaultPlan.inject(
        "worker_start", at=3, error=WorkerDiedError
    ).and_inject("clause", at=20, error=TransientFaultError, every=61)


def _run_batch(jobs, workers, plan=None):
    specs = _specs(jobs)
    contexts = plan.installed() if plan is not None else _noop()
    with contexts:
        with QueryService(
            workers=workers,
            queue_limit=jobs,
            retry=RETRY,
            default_deadline=60.0,
        ) as service:
            start = time.perf_counter()
            results = service.run_batch(specs, timeout=300.0)
            wall = time.perf_counter() - start
            stats = service.stats()
    states = {}
    for result in results:
        states[result.state] = states.get(result.state, 0) + 1
    return {
        "jobs": jobs,
        "workers": workers,
        "wall_ms": round(wall * 1000, 3),
        "jobs_per_second": round(jobs / wall, 2) if wall > 0 else None,
        "states": states,
        "retries": stats["jobs"]["retries"],
        "requeues": stats["jobs"]["requeues"],
        "worker_restarts": stats["workers"]["restarts"],
        "resumed": sum(1 for result in results if result.resumed),
    }


class _noop:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


def run(quick=False):
    """The full benchmark payload (a JSON-safe dict)."""
    jobs = 12 if quick else 32
    payload = {"quick": quick, "healthy": {}, "faulted": {}}
    for workers in WORKER_COUNTS:
        payload["healthy"]["workers-%d" % workers] = _run_batch(jobs, workers)
    payload["faulted"]["workers-4"] = _run_batch(jobs, 4, plan=_fault_plan())
    healthy = payload["healthy"]["workers-4"]["wall_ms"]
    faulted = payload["faulted"]["workers-4"]["wall_ms"]
    payload["fault_overhead"] = (
        round(faulted / healthy, 3) if healthy > 0 else None
    )
    return payload


def write(payload, path="BENCH_service.json"):
    srcstate.stamp(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report():
    """Regenerate ``BENCH_service.json`` and print the summary table
    (hooked into ``benchmarks/report.py``)."""
    payload = run()
    write(payload)
    _print_summary(payload)


def _print_summary(payload):
    print("Query service — batch throughput (Example 4.1 run-jobs)")
    print(
        "%24s %10s %10s %8s %9s %8s"
        % ("scenario", "wall ms", "jobs/s", "retries", "restarts", "resumed")
    )

    def row(label, entry):
        print(
            "%24s %10.1f %10.2f %8d %9d %8d"
            % (
                label,
                entry["wall_ms"],
                entry["jobs_per_second"] or 0.0,
                entry["retries"],
                entry["worker_restarts"],
                entry["resumed"],
            )
        )

    for workers in WORKER_COUNTS:
        row("healthy %d workers" % workers, payload["healthy"]["workers-%d" % workers])
    row("faulted 4 workers", payload["faulted"]["workers-4"])
    print("fault overhead: %.3fx" % payload["fault_overhead"])


def _check(payload):
    """Terminality and correctness gates (never timing — CI machines
    are too noisy for that)."""
    failures = []
    for label, entry in sorted(payload["healthy"].items()):
        if entry["states"] != {"ok": entry["jobs"]}:
            failures.append("healthy %s states: %r" % (label, entry["states"]))
    faulted = payload["faulted"]["workers-4"]
    total = sum(faulted["states"].values())
    if total != faulted["jobs"]:
        failures.append(
            "faulted batch lost jobs: %d of %d terminal"
            % (total, faulted["jobs"])
        )
    bad = {
        state: count
        for state, count in faulted["states"].items()
        if state not in ("ok", "partial")
    }
    if bad:
        failures.append("faulted batch non-recoverable states: %r" % bad)
    if faulted["worker_restarts"] < 1:
        failures.append("fault plan never killed a worker")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless every job is terminal and every healthy job ok",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    write(payload, args.out)
    _print_summary(payload)
    if args.check:
        failures = _check(payload)
        if failures:
            for failure in failures:
                print("FAIL: %s" % failure, file=sys.stderr)
            return 1
        print("check ok: all jobs terminal, healthy batches fully ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
