"""Plan-layer benchmark: compiled clause plans vs the reference path.

Times the E1 (Example 4.1 naive trace), E6 (Example 4.1 closed form,
semi-naive) and E14 (shift-cycle scaling) workloads under both
evaluation backends and records wall time plus the accepted/derived
tuple counts in ``BENCH_plan.json``::

    python benchmarks/plan_bench.py              # full (E14 at 48 classes)
    python benchmarks/plan_bench.py --quick      # CI smoke (E14 at 12)
    python benchmarks/plan_bench.py --check      # exit 1 if semi-naive
                                                 # is slower than naive
                                                 # on the E14 workload

The JSON is the artifact the CI benchmark-smoke job uploads; the
``report()`` hook makes ``python benchmarks/report.py plan`` regenerate
it alongside the experiment tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import DeductiveEngine
from repro.obs import ProfileCollector
from repro.util import hooks

import srcstate
from workloads import example_41, shift_cycle_workload

REPS = 3


def _best_run(make_engine):
    """Best-of-REPS wall time (ms) and the last model."""
    best = float("inf")
    model = None
    for _ in range(REPS):
        engine = make_engine()
        start = time.perf_counter()
        model = engine.run()
        best = min(best, (time.perf_counter() - start) * 1000)
    return best, model


def _entry(make_engine):
    wall_ms, model = _best_run(make_engine)
    return model, {
        "wall_ms": round(wall_ms, 3),
        "rounds": model.stats.rounds,
        "accepted_tuples": model.stats.total_new_tuples(),
        "derived_tuples": sum(model.stats.derived_tuples_per_round),
        "constraint_safe": model.stats.constraint_safe,
    }


def _workload(name, program, edb, strategy):
    """Both backends on one workload, with an equivalence cross-check."""
    results = {}
    models = {}
    for evaluation in ("compiled", "reference"):
        models[evaluation], results[evaluation] = _entry(
            lambda: DeductiveEngine(
                program, edb, strategy=strategy, evaluation=evaluation
            )
        )
    for predicate in models["compiled"].predicates():
        assert models["compiled"].relation(predicate).equivalent(
            models["reference"].relation(predicate)
        ), "%s: backends disagree on %r" % (name, predicate)
    results["speedup"] = round(
        results["reference"]["wall_ms"] / results["compiled"]["wall_ms"], 2
    )
    return results


def _profile(program, edb, strategy):
    """One instrumented run: the per-operator aggregates (time and
    input/output cardinalities) of the compiled backend."""
    collector = ProfileCollector()
    engine = DeductiveEngine(program, edb, strategy=strategy)
    with hooks.subscribed(collector):
        model = engine.run()
    return {
        "operators": collector.table(),
        "derived_per_round": {
            str(round_no): count
            for round_no, count in sorted(collector.derived_per_round().items())
        },
        "rounds": model.stats.rounds,
    }


def run(quick=False):
    """The full benchmark payload (a JSON-safe dict)."""
    e14_classes = 12 if quick else 48
    program, edb = example_41()
    payload = {
        "quick": quick,
        "e1_example41_naive": _workload("e1", program, edb, "naive"),
        "e6_example41_seminaive": _workload("e6", program, edb, "semi-naive"),
        "profile_example41": {
            "naive": _profile(program, edb, "naive"),
            "semi-naive": _profile(program, edb, "semi-naive"),
        },
    }
    program, edb = shift_cycle_workload(e14_classes, 1)
    payload["e14_shift_cycle"] = {
        "classes": e14_classes,
        "naive": _workload("e14-naive", program, edb, "naive"),
        "semi-naive": _workload("e14-semi", program, edb, "semi-naive"),
    }
    payload["e14_profile"] = _profile(program, edb, "semi-naive")
    return payload


def write(payload, path="BENCH_plan.json"):
    srcstate.stamp(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report():
    """Regenerate ``BENCH_plan.json`` and print the summary table
    (hooked into ``benchmarks/report.py``)."""
    payload = run()
    write(payload)
    _print_summary(payload)


def _print_summary(payload):
    print("Plan layer — compiled vs reference (wall ms, best of %d)" % REPS)
    print(
        "%28s %12s %12s %8s"
        % ("workload", "compiled", "reference", "speedup")
    )

    def row(label, entry):
        print(
            "%28s %12.2f %12.2f %7.2fx"
            % (
                label,
                entry["compiled"]["wall_ms"],
                entry["reference"]["wall_ms"],
                entry["speedup"],
            )
        )

    row("e1 example 4.1 naive", payload["e1_example41_naive"])
    row("e6 example 4.1 semi-naive", payload["e6_example41_seminaive"])
    e14 = payload["e14_shift_cycle"]
    row("e14 %d classes naive" % e14["classes"], e14["naive"])
    row("e14 %d classes semi-naive" % e14["classes"], e14["semi-naive"])
    _print_profile(payload)


def _print_profile(payload, top=5):
    """The costliest plan operators of the E14 instrumented run."""
    profile = payload.get("e14_profile")
    if not profile:
        return
    print("E14 per-operator profile (top %d by time, semi-naive)" % top)
    print(
        "%12s %10s %6s %8s %8s %10s"
        % ("op", "variant", "calls", "in", "out", "seconds")
    )
    for entry in profile["operators"][:top]:
        print(
            "%12s %10s %6d %8d %8d %10.6f"
            % (
                entry["op"],
                entry["variant"],
                entry["invocations"],
                entry["input_tuples"],
                entry["output_tuples"],
                entry["seconds"],
            )
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default="BENCH_plan.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when compiled semi-naive is slower than compiled "
        "naive on the E14 workload",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    write(payload, args.out)
    _print_summary(payload)
    if args.check:
        e14 = payload["e14_shift_cycle"]
        semi = e14["semi-naive"]["compiled"]["wall_ms"]
        naive = e14["naive"]["compiled"]["wall_ms"]
        if semi > naive:
            print(
                "FAIL: semi-naive (%.2f ms) slower than naive (%.2f ms) "
                "on E14 with %d classes" % (semi, naive, e14["classes"]),
                file=sys.stderr,
            )
            return 1
        print("check ok: semi-naive %.2f ms <= naive %.2f ms" % (semi, naive))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
