"""E6 — closed form vs ground tuple-at-a-time evaluation (Sections 1
and 4.3).

The paper's motivation: the infinite extension cannot be enumerated;
evaluating on generalized tuples is window-independent, while the
ground T_P baseline must pick a finite window and pays for every
point in it.  The benchmark sweeps the window size for the ground
evaluator against the (constant-cost) closed form on the Example 4.1
workload, and asserts the two agree on window interiors — the oracle
property used throughout the test suite.
"""

import time

import pytest

from repro.core import DeductiveEngine, GroundEvaluator

from workloads import example_41

WINDOWS = (500, 1000, 2000, 4000)


def closed_form():
    program, edb = example_41()
    return DeductiveEngine(program, edb).run()


def ground(window):
    program, edb = example_41()
    evaluator = GroundEvaluator(program, edb, -window, window)
    evaluator.run()
    return evaluator


def test_e6_closed_form(benchmark):
    model = benchmark(closed_form)
    assert model.stats.constraint_safe


@pytest.mark.parametrize("window", WINDOWS[:3])
def test_e6_ground_window(benchmark, window):
    evaluator = benchmark.pedantic(
        lambda: ground(window), rounds=1, iterations=1
    )
    assert evaluator.extension("problems")


def test_e6_agreement_on_interior(benchmark):
    def run():
        model = closed_form()
        evaluator = ground(1000)
        interior = lambda flats: {
            f for f in flats if 0 <= f[0] < 500
        }
        return (
            interior(model.relation("problems").extension(0, 1000)),
            interior(evaluator.extension("problems")),
        )

    closed, oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    assert closed == oracle


def report():
    print("E6 — closed form vs ground evaluation (window sweep)")
    start = time.perf_counter()
    model = closed_form()
    closed_ms = (time.perf_counter() - start) * 1000
    print(
        "  closed form: %.1f ms, %d tuples, window-independent"
        % (closed_ms, len(model.relation("problems")))
    )
    print("%10s %14s %12s" % ("window", "ground (ms)", "atoms"))
    for window in WINDOWS:
        start = time.perf_counter()
        evaluator = ground(window)
        elapsed = (time.perf_counter() - start) * 1000
        atoms = len(evaluator.extension("problems"))
        print("%10d %14.1f %12d" % (window, elapsed, atoms))
    print("  ground cost grows with the window; the closed form does not.")


if __name__ == "__main__":
    report()
