"""E4 — Section 3.2: the query-expressiveness hierarchy, decided.

Regenerates the paper's placement of the three formalisms as a table
of witness languages and machine-checked class memberships:

* "p at some even time"   — regular, **not star-free** ⇒ beyond the
  FO language of [KSW90]; expressible in Datalog1S / Templog;
* ``Σ*·101`` pattern      — star-free ⇒ FO-expressible;
* "eventually p"          — open ⇒ finitely regular ⇒ a deductive
  yes/no query;
* "infinitely often p"    — ω-regular but **not open** ⇒ needs
  stratified negation (the full ω-regular class).

The benchmarks time the two decision procedures (aperiodicity of the
syntactic monoid; openness of a deterministic Büchi automaton).
"""

from repro.datalog1s import minimal_model, parse_datalog1s
from repro.omega import (
    buchi_eventually,
    buchi_infinitely_often,
    is_deterministic_buchi_open,
    is_star_free,
)
from repro.omega.expressiveness import (
    dfa_one_at_even_position,
    dfa_position_multiple,
    dfa_suffix_language,
)


def hierarchy_rows():
    return [
        (
            "p at some even time",
            is_star_free(dfa_one_at_even_position()),
            True,  # Datalog1S-expressible, see the witness program below
        ),
        (
            "pattern 101 just seen (Sigma*.101)",
            is_star_free(dfa_suffix_language(("1", "0", "1"))),
            True,
        ),
        (
            "length multiple of 3",
            is_star_free(dfa_position_multiple(3)),
            True,
        ),
    ]


def omega_rows():
    return [
        ("eventually p", is_deterministic_buchi_open(buchi_eventually())),
        (
            "infinitely often p",
            is_deterministic_buchi_open(buchi_infinitely_often()),
        ),
    ]


def datalog_even_witness():
    """The deductive side of the separation: a Datalog1S program whose
    model is exactly the even time points."""
    program = parse_datalog1s("even(0). even(t + 2) <- even(t).")
    model = minimal_model(program)
    return model.set_of("even")


def test_e4_star_freeness_decisions(benchmark):
    rows = benchmark(hierarchy_rows)
    star_free = {name: flag for (name, flag, _) in rows}
    assert star_free["p at some even time"] is False
    assert star_free["pattern 101 just seen (Sigma*.101)"] is True
    assert star_free["length multiple of 3"] is False


def test_e4_openness_decisions(benchmark):
    rows = benchmark(omega_rows)
    openness = dict(rows)
    assert openness["eventually p"] is True
    assert openness["infinitely often p"] is False


def test_e4_deductive_witness(benchmark):
    evens = benchmark(datalog_even_witness)
    assert evens.period == 2 and 0 in evens and 1 not in evens


def report():
    print("E4 — query expressiveness hierarchy (Section 3.2)")
    print("%-38s %-22s %s" % ("finite-word witness", "star-free (FO)?", "deductive?"))
    for (name, star_free, deductive) in hierarchy_rows():
        print("%-38s %-22s %s" % (name, star_free, deductive))
    print()
    print("%-38s %s" % ("omega-language witness", "finitely regular (open)?"))
    for (name, open_flag) in omega_rows():
        print("%-38s %s" % (name, open_flag))
    print()
    evens = datalog_even_witness()
    print("Deductive witness for the even-time query:", evens)


if __name__ == "__main__":
    report()
