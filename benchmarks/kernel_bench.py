"""Columnar-kernel benchmark: the batched kernel vs its per-tuple ablation.

Times the E14 shift-cycle workload (semi-naive) with the columnar
kernel enabled ("after") and disabled ("before" — the ablation runs
the exact per-tuple loops the kernel replaced, approximating the
pre-kernel evaluator), cross-checks model equivalence, and measures
the shard dispatch payload: bytes of a relation broadcast in the old
one-JSON-object-per-tuple form vs the column-batch form the shard pool
now ships.  Results go to ``BENCH_kernel.json``::

    python benchmarks/kernel_bench.py              # full (E14 at 48 classes)
    python benchmarks/kernel_bench.py --quick      # CI smoke (E14 at 12)
    python benchmarks/kernel_bench.py --check      # exit 1 unless the
                                                   # kernel is >= 1.5x on E14

The ``report()`` hook makes ``python benchmarks/report.py kernel``
regenerate the artifact alongside the experiment tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import DeductiveEngine
from repro.gdb import kernel
from repro.gdb.store import encode_relation_batch

import srcstate
from workloads import shift_cycle_workload

REPS = 5

#: The regression gate of ``--check`` (CI kernel-bench-smoke job).
CHECK_SPEEDUP = 1.5


def _best_run(make_engine):
    """Best-of-REPS wall time (ms) and the last model."""
    best = float("inf")
    model = None
    for _ in range(REPS):
        engine = make_engine()
        start = time.perf_counter()
        model = engine.run()
        best = min(best, (time.perf_counter() - start) * 1000)
    return best, model


def _entry(program, edb, enabled):
    """One configuration: best wall time plus run invariants."""
    with kernel.configured(enabled):
        wall_ms, model = _best_run(
            lambda: DeductiveEngine(program, edb, strategy="semi-naive")
        )
    return model, {
        "wall_ms": round(wall_ms, 3),
        "rounds": model.stats.rounds,
        "accepted_tuples": model.stats.total_new_tuples(),
        "constraint_safe": model.stats.constraint_safe,
    }


def _e14(classes, shift=1):
    """E14 before (kernel off) / after (kernel on), with an
    equivalence cross-check between the two models."""
    program, edb = shift_cycle_workload(classes, shift)
    before_model, before = _entry(program, edb, False)
    after_model, after = _entry(program, edb, True)
    for predicate in after_model.predicates():
        assert after_model.relation(predicate).equivalent(
            before_model.relation(predicate)
        ), "kernel ablation disagrees on %r" % predicate
    return {
        "classes": classes,
        "shift": shift,
        "before": before,
        "after": after,
        "speedup": round(before["wall_ms"] / after["wall_ms"], 2),
    }


def _dispatch_bytes(classes, shift=1):
    """Shard broadcast size of the E14 closed form, old wire format
    (one canonical JSON object per tuple) vs the column-batch codec."""
    program, edb = shift_cycle_workload(classes, shift)
    model = DeductiveEngine(program, edb, strategy="semi-naive").run()
    relation = model.relation("p")
    per_tuple = len(json.dumps(relation.to_json_dict()))
    batch = len(json.dumps(encode_relation_batch(relation)))
    return {
        "tuples": len(relation.tuples),
        "per_tuple_bytes": per_tuple,
        "batch_bytes": batch,
        "ratio": round(per_tuple / batch, 2),
    }


def run(quick=False):
    """The full benchmark payload (a JSON-safe dict)."""
    e14_classes = 12 if quick else 48
    return {
        "quick": quick,
        "e14_shift_cycle": _e14(e14_classes),
        "e14_dense_shift": _e14(e14_classes, shift=5),
        "dispatch": _dispatch_bytes(e14_classes),
        "kernel_caches": kernel.cache_stats(),
    }


def write(payload, path="BENCH_kernel.json"):
    srcstate.stamp(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report():
    """Regenerate ``BENCH_kernel.json`` and print the summary table
    (hooked into ``benchmarks/report.py``)."""
    payload = run()
    write(payload)
    _print_summary(payload)


def _print_summary(payload):
    print("Columnar kernel — batched vs per-tuple ablation (wall ms, best of %d)" % REPS)
    print("%28s %12s %12s %8s" % ("workload", "kernel on", "kernel off", "speedup"))
    for key, label in (
        ("e14_shift_cycle", "e14 %d classes shift 1"),
        ("e14_dense_shift", "e14 %d classes shift 5"),
    ):
        entry = payload[key]
        print(
            "%28s %12.2f %12.2f %7.2fx"
            % (
                label % entry["classes"],
                entry["after"]["wall_ms"],
                entry["before"]["wall_ms"],
                entry["speedup"],
            )
        )
    dispatch = payload["dispatch"]
    print(
        "shard dispatch, %d tuples: per-tuple %d B, column batch %d B "
        "(%.2fx smaller)"
        % (
            dispatch["tuples"],
            dispatch["per_tuple_bytes"],
            dispatch["batch_bytes"],
            dispatch["ratio"],
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the kernel speeds up E14 by at least %.1fx "
        "and the batch wire format is no larger than per-tuple"
        % CHECK_SPEEDUP,
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    write(payload, args.out)
    _print_summary(payload)
    if args.check:
        speedup = payload["e14_shift_cycle"]["speedup"]
        if speedup < CHECK_SPEEDUP:
            print(
                "FAIL: kernel speedup %.2fx below the %.1fx gate on E14 "
                "with %d classes"
                % (speedup, CHECK_SPEEDUP, payload["e14_shift_cycle"]["classes"]),
                file=sys.stderr,
            )
            return 1
        if payload["dispatch"]["ratio"] < 1.0:
            print(
                "FAIL: column-batch payload larger than per-tuple "
                "(%.2fx)" % payload["dispatch"]["ratio"],
                file=sys.stderr,
            )
            return 1
        print(
            "check ok: %.2fx >= %.1fx, dispatch %.2fx smaller"
            % (speedup, CHECK_SPEEDUP, payload["dispatch"]["ratio"])
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
