"""Parallel-fixpoint benchmark: sharded rounds and the coverage cache.

Times the E14-shaped multi-chain shift-cycle workload sequentially and
at ``--parallel {2, 4}``, cross-checking that every parallel model is
``Model.equivalent()`` to the sequential one and that the engine
fingerprints are identical, then runs the cross-round coverage-cache
ablation (cache on vs off, with the ``coverage.cache`` hit/miss
counters) on Example 4.1 and the classic E14 shift cycle.  Results go
to ``BENCH_parallel.json``::

    python benchmarks/parallel_bench.py              # full sizes
    python benchmarks/parallel_bench.py --quick      # CI smoke sizes
    python benchmarks/parallel_bench.py --check      # exit 1 on any
                                                     # equivalence or
                                                     # cache regression

Sharded rounds split one round's clause-variant firings across
persistent worker processes; bulk payloads (the stratum broadcast,
round results, accepted-delta references) travel through shared-memory
segments while the pipes carry control frames only.  The payload
records both transports' wire bytes (``wire_protocol``) from the same
workload run twice — ``REPRO_SHARD_TRANSPORT=pipe`` is the legacy
inline baseline — and ``--check`` asserts the >= 3x pipe-byte
reduction of the shm protocol unconditionally.

Wall-clock gates are core-count aware: ``--check`` asserts >= 1.5x
speedup at ``--parallel 4`` with at least 4 usable cores, > 1x at
``--parallel 2`` with at least 2, and on a single core — where
parallelism can only measure dispatch overhead, never speedup — that
``--parallel 2`` stays under the recorded overhead ceiling.  Under
``--quick`` the wire and wall gates are skipped: at smoke sizes the
one-time pool bootstrap dominates both ledgers, so the ratios say
nothing about the protocol (equivalence, fingerprint, and cache gates
still run).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import DeductiveEngine
from repro.runtime.faults import FaultPlan
from repro.util import hooks

import srcstate
from workloads import example_41, multi_chain_workload, shift_cycle_workload

REPS = 3
PARALLELISMS = (2, 4)
SPEEDUP_TARGET = 1.5
#: Minimum pipe-byte reduction of the shm protocol over the inline
#: pipe baseline (control frames only vs full payloads on the pipes).
WIRE_RATIO_TARGET = 3.0
#: Single-core ceiling: parallel 2 may cost at most this much of the
#: sequential wall time (dispatch overhead, not speedup, is measurable
#: there).  Block task assignment plus worker-side gc isolation brought
#: the measured overhead from ~1.8x to ~1.4x; the ceiling ratchets at
#: 1.6 to stay noise-safe.  The aspirational bar is 1.15x — the rest of
#: the gap is per-replica join/canonicalization work that the kernel
#: vectorization item on the roadmap attacks, and ``--parallel auto``
#: already sidesteps it entirely by staying sequential on one core.
OVERHEAD_CEILING = 1.6
#: Recorded alongside the measured overhead in the payload.
OVERHEAD_TARGET = 1.15

#: The faulted-recovery scenario: SIGKILL one shard worker at the
#: FAULT_AT-th dispatch (worker 2 of round 2 at parallelism 2) and
#: measure what healing costs against the clean parallel run.
FAULT_SITE = "shard_worker_crash"
FAULT_AT = 4
FAULT_PARALLELISM = 2


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_runs(factories):
    """Best-of-REPS wall times for several engine factories at once.

    Reps are *interleaved* across the factories (rep 1 of every mode,
    then rep 2, ...) so a noisy neighbour on a shared host skews every
    mode's samples the same way instead of landing entirely on one
    mode — the wall-time ratios between modes are what the gates
    assert on.  Returns ``{key: (best_ms, model, fingerprint)}``.
    """
    best = {key: (float("inf"), None, None) for key, _ in factories}
    for _ in range(REPS):
        for key, make_engine in factories:
            engine = make_engine()
            start = time.perf_counter()
            model = engine.run()
            wall = (time.perf_counter() - start) * 1000
            if wall < best[key][0]:
                best[key] = (wall, model, engine.fingerprint())
            elif best[key][1] is None:
                best[key] = (best[key][0], model, engine.fingerprint())
    return best


def _entry(wall_ms, model, fingerprint):
    return {
        "wall_ms": round(wall_ms, 3),
        "rounds": model.stats.rounds,
        "accepted_tuples": model.stats.total_new_tuples(),
        "derived_tuples": sum(model.stats.derived_tuples_per_round),
        "fingerprint": fingerprint,
    }


def _assert_equivalent(name, sequential, parallel):
    for predicate in sequential.predicates():
        assert sequential.relation(predicate).equivalent(
            parallel.relation(predicate)
        ), "%s: parallel model disagrees on %r" % (name, predicate)
    assert sequential.stats.rounds == parallel.stats.rounds, (
        "%s: round counts diverge" % name
    )
    assert (
        sequential.stats.new_tuples_per_round
        == parallel.stats.new_tuples_per_round
    ), "%s: per-round accepted counts diverge" % name


def _scaling(name, program, edb, strategy="semi-naive"):
    """Sequential vs every parallelism level, with equivalence and
    fingerprint cross-checks.  Returns the sequential model (for
    further cross-checks) alongside the results table."""
    factories = [
        ("sequential", lambda: DeductiveEngine(program, edb, strategy=strategy))
    ]
    for parallelism in PARALLELISMS:
        factories.append(
            (
                "parallel_%d" % parallelism,
                lambda parallelism=parallelism: DeductiveEngine(
                    program, edb, strategy=strategy, parallelism=parallelism
                ),
            )
        )
    best = _best_runs(factories)
    results = {}
    wall_ms, sequential, fingerprint = best["sequential"]
    results["sequential"] = _entry(wall_ms, sequential, fingerprint)
    for parallelism in PARALLELISMS:
        key = "parallel_%d" % parallelism
        wall_ms, model, fingerprint = best[key]
        entry = _entry(wall_ms, model, fingerprint)
        _assert_equivalent("%s@%d" % (name, parallelism), sequential, model)
        assert entry["fingerprint"] == results["sequential"]["fingerprint"], (
            "%s: parallelism=%d changed the engine fingerprint"
            % (name, parallelism)
        )
        entry["speedup"] = round(
            results["sequential"]["wall_ms"] / entry["wall_ms"], 2
        )
        results[key] = entry
    return sequential, results


def _wire_protocol(name, program, edb, sequential):
    """The same workload over both shard transports, with the wire-byte
    ledger each pool kept.  The pipe transport is the legacy inline
    protocol (every payload pickled onto the pipes, every round); the
    shm transport ships control frames on the pipes and everything bulky
    through shared-memory segments.  Both must reproduce the sequential
    model; the ratio of pipe bytes is the headline number."""
    results = {}
    for transport in ("pipe", "shm"):
        os.environ["REPRO_SHARD_TRANSPORT"] = transport
        try:
            engine = DeductiveEngine(
                program, edb, strategy="semi-naive", parallelism=2
            )
            start = time.perf_counter()
            model = engine.run()
            wall_ms = (time.perf_counter() - start) * 1000
        finally:
            os.environ.pop("REPRO_SHARD_TRANSPORT", None)
        _assert_equivalent("%s@%s" % (name, transport), sequential, model)
        wire = dict(engine.evaluator.shard_wire_stats)
        total = wire["pipe_bytes"] + wire["shm_bytes"]
        wire["wall_ms"] = round(wall_ms, 3)
        wire["bytes_per_dispatch"] = round(
            total / max(1, wire["dispatches"]), 1
        )
        results[transport] = wire
    ratio = results["pipe"]["pipe_bytes"] / max(
        1, results["shm"]["pipe_bytes"]
    )
    results["pipe_bytes_ratio"] = round(ratio, 2)
    return results


def _faulted_recovery(name, program, edb, sequential, scaling):
    """SIGKILL one shard worker mid-run and price the recovery.

    The pool must heal (respawn + in-round retry) rather than degrade,
    and the healed model must stay equivalent to the sequential one.
    The recorded overhead is the faulted wall time over the clean
    ``parallel_2`` wall time from the scaling table — the cost of one
    lost worker amortized across the whole run.
    """
    lost = []

    def sink(kind, fields):
        if kind == "shard.worker" and fields.get("phase") == "lost":
            lost.append(fields.get("reason"))

    best = float("inf")
    model = None
    for _ in range(REPS):
        del lost[:]
        engine = DeductiveEngine(
            program, edb, strategy="semi-naive", parallelism=FAULT_PARALLELISM
        )
        plan = FaultPlan.inject(FAULT_SITE, at=FAULT_AT)
        with plan.installed(), hooks.subscribed(sink):
            start = time.perf_counter()
            model = engine.run()
        best = min(best, (time.perf_counter() - start) * 1000)
    assert model.stats.shard_degraded is None, (
        "%s: a single worker kill must heal, not degrade" % name
    )
    assert lost, "%s: the fault plan never cost a worker" % name
    _assert_equivalent(name, sequential, model)
    clean_ms = scaling["parallel_%d" % FAULT_PARALLELISM]["wall_ms"]
    return {
        "parallelism": FAULT_PARALLELISM,
        "fault_site": FAULT_SITE,
        "fault_at": FAULT_AT,
        "wall_ms": round(best, 3),
        "clean_wall_ms": clean_ms,
        "recovery_overhead": round(best / clean_ms, 2),
        "workers_lost": len(lost),
        "healed": True,
    }


class _CacheCounter:
    """Sums the ``coverage.cache`` per-sweep hit/miss events."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.sweeps = 0

    def __call__(self, kind, fields):
        if kind == "coverage.cache":
            self.hits += fields["hits"]
            self.misses += fields["misses"]
            self.sweeps += 1


def _cache_run(program, edb, strategy, coverage_cache):
    counter = _CacheCounter()
    engine = DeductiveEngine(
        program, edb, strategy=strategy, coverage_cache=coverage_cache
    )
    with hooks.subscribed(counter):
        start = time.perf_counter()
        model = engine.run()
        wall_ms = (time.perf_counter() - start) * 1000
    return model, {
        "wall_ms": round(wall_ms, 3),
        "rounds": model.stats.rounds,
        "hits": counter.hits,
        "misses": counter.misses,
        "coverage_tests": counter.hits + counter.misses,
        "sweeps": counter.sweeps,
    }

def _cache_ablation(name, program, edb, strategy):
    """Cache on vs off on one workload; the model must not change and
    the cached run must perform strictly fewer ``implied_by_union``
    calls (= misses) for the same number of coverage tests."""
    cached_model, cached = _cache_run(program, edb, strategy, True)
    uncached_model, uncached = _cache_run(program, edb, strategy, False)
    _assert_equivalent(name, uncached_model, cached_model)
    assert uncached["hits"] == 0, "%s: disabled cache reported hits" % name
    assert cached["coverage_tests"] == uncached["coverage_tests"], (
        "%s: cache changed the number of coverage tests" % name
    )
    assert cached["misses"] < uncached["misses"], (
        "%s: cache did not reduce implied_by_union invocations "
        "(%d vs %d)" % (name, cached["misses"], uncached["misses"])
    )
    return {
        "cached": cached,
        "uncached": uncached,
        "implied_by_union_saved": uncached["misses"] - cached["misses"],
    }


def run(quick=False):
    """The full benchmark payload (a JSON-safe dict)."""
    if quick:
        chains, period, data_per_chain = 3, 12, 2
        e14_classes = 12
    else:
        chains, period, data_per_chain = 6, 48, 4
        e14_classes = 48
    payload = {
        "quick": quick,
        "cpus": _usable_cpus(),
        "parallelisms": list(PARALLELISMS),
        "single_core_overhead_ceiling": OVERHEAD_CEILING,
        "single_core_overhead_target": OVERHEAD_TARGET,
    }
    program, edb = multi_chain_workload(
        chains=chains, period=period, shift=2, data_per_chain=data_per_chain
    )
    sequential, scaling = _scaling("e14-multi-chain", program, edb)
    payload["e14_multi_chain"] = dict(
        {"chains": chains, "classes": period // 2}, **scaling
    )
    payload["wire_protocol"] = _wire_protocol(
        "e14-wire", program, edb, sequential
    )
    payload["faulted_recovery"] = _faulted_recovery(
        "e14-faulted", program, edb, sequential, scaling
    )
    program, edb = example_41()
    payload["coverage_cache_example41"] = _cache_ablation(
        "e41-cache", program, edb, "naive"
    )
    # Naive re-derives every earlier residue class each round, so its
    # coverage sweep re-tests the same (signature, constraints) pairs —
    # exactly what the cross-round cache memoizes.  (Semi-naive on this
    # workload derives a fresh signature per round: nothing to reuse,
    # and the cache saves nothing — by design, not by accident.)
    program, edb = shift_cycle_workload(e14_classes, 1)
    payload["coverage_cache_e14"] = _cache_ablation(
        "e14-cache", program, edb, "naive"
    )
    return payload


def write(payload, path="BENCH_parallel.json"):
    srcstate.stamp(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report():
    """Regenerate ``BENCH_parallel.json`` and print the summary table
    (hooked into ``benchmarks/report.py``)."""
    payload = run()
    write(payload)
    _print_summary(payload)


def _print_summary(payload):
    scaling = payload["e14_multi_chain"]
    print(
        "Parallel fixpoint — %d chains x %d classes, %d usable cpu(s), "
        "best of %d" % (
            scaling["chains"], scaling["classes"], payload["cpus"], REPS
        )
    )
    print("%16s %12s %8s %8s" % ("mode", "wall_ms", "speedup", "rounds"))
    sequential = scaling["sequential"]
    print(
        "%16s %12.2f %8s %8d"
        % ("sequential", sequential["wall_ms"], "-", sequential["rounds"])
    )
    for parallelism in payload["parallelisms"]:
        entry = scaling["parallel_%d" % parallelism]
        print(
            "%16s %12.2f %7.2fx %8d"
            % (
                "parallel %d" % parallelism,
                entry["wall_ms"],
                entry["speedup"],
                entry["rounds"],
            )
        )
    wire = payload.get("wire_protocol")
    if wire is not None:
        print(
            "Wire protocol — pipe %d B on pipes vs shm %d B on pipes "
            "+ %d B in %d segment(s): %.2fx fewer pipe bytes, "
            "%.1f B/dispatch (shm) vs %.1f B/dispatch (pipe)"
            % (
                wire["pipe"]["pipe_bytes"],
                wire["shm"]["pipe_bytes"],
                wire["shm"]["shm_bytes"],
                wire["shm"]["segments"],
                wire["pipe_bytes_ratio"],
                wire["shm"]["bytes_per_dispatch"],
                wire["pipe"]["bytes_per_dispatch"],
            )
        )
    faulted = payload.get("faulted_recovery")
    if faulted is not None:
        print(
            "Faulted recovery — %s at dispatch %d, parallel %d: "
            "%.2f ms vs %.2f ms clean (%.2fx), %d worker(s) lost, healed"
            % (
                faulted["fault_site"],
                faulted["fault_at"],
                faulted["parallelism"],
                faulted["wall_ms"],
                faulted["clean_wall_ms"],
                faulted["recovery_overhead"],
                faulted["workers_lost"],
            )
        )
    print("Coverage cache — implied_by_union calls (cached vs uncached)")
    print("%24s %10s %10s %8s" % ("workload", "cached", "uncached", "saved"))
    for key, label in (
        ("coverage_cache_example41", "example 4.1 naive"),
        ("coverage_cache_e14", "e14 naive"),
    ):
        ablation = payload[key]
        print(
            "%24s %10d %10d %8d"
            % (
                label,
                ablation["cached"]["misses"],
                ablation["uncached"]["misses"],
                ablation["implied_by_union_saved"],
            )
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on equivalence/cache regressions, and on missing "
        "speedup when the host has enough cores",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    write(payload, args.out)
    _print_summary(payload)
    if args.check:
        # run() already asserted equivalence, fingerprints, and the
        # cache reduction; what remains is the wire-byte bar and the
        # core-count-gated wall-clock bars.  Both are meaningless at
        # --quick sizes, where the one-time pool bootstrap dominates
        # every ledger.
        if args.quick:
            print(
                "check ok (quick): equivalence, fingerprint, and cache "
                "gates hold; wire/wall bars need full sizes"
            )
            return 0
        failures = []
        cpus = payload["cpus"]
        scaling = payload["e14_multi_chain"]
        ratio = payload["wire_protocol"]["pipe_bytes_ratio"]
        if ratio < WIRE_RATIO_TARGET:
            failures.append(
                "shm transport cut pipe bytes only %.2fx (need %.1fx)"
                % (ratio, WIRE_RATIO_TARGET)
            )
        if cpus >= 4:
            best = scaling["parallel_4"]["speedup"]
            if best < SPEEDUP_TARGET:
                failures.append(
                    "parallel 4 speedup %.2fx below %.1fx on %d cpus"
                    % (best, SPEEDUP_TARGET, cpus)
                )
        if cpus >= 2:
            speedup = scaling["parallel_2"]["speedup"]
            if speedup <= 1.0:
                failures.append(
                    "parallel 2 speedup %.2fx is no win on %d cpus"
                    % (speedup, cpus)
                )
        else:
            overhead = (
                scaling["parallel_2"]["wall_ms"]
                / scaling["sequential"]["wall_ms"]
            )
            if overhead > OVERHEAD_CEILING:
                failures.append(
                    "parallel 2 costs %.2fx sequential on one cpu "
                    "(ceiling %.2fx)" % (overhead, OVERHEAD_CEILING)
                )
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        if failures:
            return 1
        print(
            "check ok: wire ratio %.2fx; wall-clock bars for %d usable "
            "cpu(s) hold" % (ratio, cpus)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
