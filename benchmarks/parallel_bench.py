"""Parallel-fixpoint benchmark: sharded rounds and the coverage cache.

Times the E14-shaped multi-chain shift-cycle workload sequentially and
at ``--parallel {2, 4}``, cross-checking that every parallel model is
``Model.equivalent()`` to the sequential one and that the engine
fingerprints are identical, then runs the cross-round coverage-cache
ablation (cache on vs off, with the ``coverage.cache`` hit/miss
counters) on Example 4.1 and the classic E14 shift cycle.  Results go
to ``BENCH_parallel.json``::

    python benchmarks/parallel_bench.py              # full sizes
    python benchmarks/parallel_bench.py --quick      # CI smoke sizes
    python benchmarks/parallel_bench.py --check      # exit 1 on any
                                                     # equivalence or
                                                     # cache regression

Sharded rounds split one round's clause-variant firings across
processes, so wall-clock speedup needs real cores: the payload records
the host's usable CPU count, and ``--check`` asserts the >= 1.5x
speedup at ``--parallel 4`` only when at least 4 cores are usable
(single-core hosts measure IPC overhead, not speedup; equivalence and
cache assertions always run).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import DeductiveEngine
from repro.runtime.faults import FaultPlan
from repro.util import hooks

import srcstate
from workloads import example_41, multi_chain_workload, shift_cycle_workload

REPS = 3
PARALLELISMS = (2, 4)
SPEEDUP_TARGET = 1.5

#: The faulted-recovery scenario: SIGKILL one shard worker at the
#: FAULT_AT-th dispatch (worker 2 of round 2 at parallelism 2) and
#: measure what healing costs against the clean parallel run.
FAULT_SITE = "shard_worker_crash"
FAULT_AT = 4
FAULT_PARALLELISM = 2


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_run(make_engine):
    """Best-of-REPS wall time (ms), the last model, the fingerprint."""
    best = float("inf")
    model = None
    fingerprint = None
    for _ in range(REPS):
        engine = make_engine()
        start = time.perf_counter()
        model = engine.run()
        best = min(best, (time.perf_counter() - start) * 1000)
        fingerprint = engine.fingerprint()
    return best, model, fingerprint


def _entry(make_engine):
    wall_ms, model, fingerprint = _best_run(make_engine)
    return model, {
        "wall_ms": round(wall_ms, 3),
        "rounds": model.stats.rounds,
        "accepted_tuples": model.stats.total_new_tuples(),
        "derived_tuples": sum(model.stats.derived_tuples_per_round),
        "fingerprint": fingerprint,
    }


def _assert_equivalent(name, sequential, parallel):
    for predicate in sequential.predicates():
        assert sequential.relation(predicate).equivalent(
            parallel.relation(predicate)
        ), "%s: parallel model disagrees on %r" % (name, predicate)
    assert sequential.stats.rounds == parallel.stats.rounds, (
        "%s: round counts diverge" % name
    )
    assert (
        sequential.stats.new_tuples_per_round
        == parallel.stats.new_tuples_per_round
    ), "%s: per-round accepted counts diverge" % name


def _scaling(name, program, edb, strategy="semi-naive"):
    """Sequential vs every parallelism level, with equivalence and
    fingerprint cross-checks.  Returns the sequential model (for
    further cross-checks) alongside the results table."""
    results = {}
    sequential, results["sequential"] = _entry(
        lambda: DeductiveEngine(program, edb, strategy=strategy)
    )
    for parallelism in PARALLELISMS:
        model, entry = _entry(
            lambda: DeductiveEngine(
                program, edb, strategy=strategy, parallelism=parallelism
            )
        )
        _assert_equivalent("%s@%d" % (name, parallelism), sequential, model)
        assert entry["fingerprint"] == results["sequential"]["fingerprint"], (
            "%s: parallelism=%d changed the engine fingerprint"
            % (name, parallelism)
        )
        entry["speedup"] = round(
            results["sequential"]["wall_ms"] / entry["wall_ms"], 2
        )
        results["parallel_%d" % parallelism] = entry
    return sequential, results


def _faulted_recovery(name, program, edb, sequential, scaling):
    """SIGKILL one shard worker mid-run and price the recovery.

    The pool must heal (respawn + in-round retry) rather than degrade,
    and the healed model must stay equivalent to the sequential one.
    The recorded overhead is the faulted wall time over the clean
    ``parallel_2`` wall time from the scaling table — the cost of one
    lost worker amortized across the whole run.
    """
    lost = []

    def sink(kind, fields):
        if kind == "shard.worker" and fields.get("phase") == "lost":
            lost.append(fields.get("reason"))

    best = float("inf")
    model = None
    for _ in range(REPS):
        del lost[:]
        engine = DeductiveEngine(
            program, edb, strategy="semi-naive", parallelism=FAULT_PARALLELISM
        )
        plan = FaultPlan.inject(FAULT_SITE, at=FAULT_AT)
        with plan.installed(), hooks.subscribed(sink):
            start = time.perf_counter()
            model = engine.run()
        best = min(best, (time.perf_counter() - start) * 1000)
    assert model.stats.shard_degraded is None, (
        "%s: a single worker kill must heal, not degrade" % name
    )
    assert lost, "%s: the fault plan never cost a worker" % name
    _assert_equivalent(name, sequential, model)
    clean_ms = scaling["parallel_%d" % FAULT_PARALLELISM]["wall_ms"]
    return {
        "parallelism": FAULT_PARALLELISM,
        "fault_site": FAULT_SITE,
        "fault_at": FAULT_AT,
        "wall_ms": round(best, 3),
        "clean_wall_ms": clean_ms,
        "recovery_overhead": round(best / clean_ms, 2),
        "workers_lost": len(lost),
        "healed": True,
    }


class _CacheCounter:
    """Sums the ``coverage.cache`` per-sweep hit/miss events."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.sweeps = 0

    def __call__(self, kind, fields):
        if kind == "coverage.cache":
            self.hits += fields["hits"]
            self.misses += fields["misses"]
            self.sweeps += 1


def _cache_run(program, edb, strategy, coverage_cache):
    counter = _CacheCounter()
    engine = DeductiveEngine(
        program, edb, strategy=strategy, coverage_cache=coverage_cache
    )
    with hooks.subscribed(counter):
        start = time.perf_counter()
        model = engine.run()
        wall_ms = (time.perf_counter() - start) * 1000
    return model, {
        "wall_ms": round(wall_ms, 3),
        "rounds": model.stats.rounds,
        "hits": counter.hits,
        "misses": counter.misses,
        "coverage_tests": counter.hits + counter.misses,
        "sweeps": counter.sweeps,
    }

def _cache_ablation(name, program, edb, strategy):
    """Cache on vs off on one workload; the model must not change and
    the cached run must perform strictly fewer ``implied_by_union``
    calls (= misses) for the same number of coverage tests."""
    cached_model, cached = _cache_run(program, edb, strategy, True)
    uncached_model, uncached = _cache_run(program, edb, strategy, False)
    _assert_equivalent(name, uncached_model, cached_model)
    assert uncached["hits"] == 0, "%s: disabled cache reported hits" % name
    assert cached["coverage_tests"] == uncached["coverage_tests"], (
        "%s: cache changed the number of coverage tests" % name
    )
    assert cached["misses"] < uncached["misses"], (
        "%s: cache did not reduce implied_by_union invocations "
        "(%d vs %d)" % (name, cached["misses"], uncached["misses"])
    )
    return {
        "cached": cached,
        "uncached": uncached,
        "implied_by_union_saved": uncached["misses"] - cached["misses"],
    }


def run(quick=False):
    """The full benchmark payload (a JSON-safe dict)."""
    if quick:
        chains, period, data_per_chain = 3, 12, 2
        e14_classes = 12
    else:
        chains, period, data_per_chain = 6, 48, 4
        e14_classes = 48
    payload = {
        "quick": quick,
        "cpus": _usable_cpus(),
        "parallelisms": list(PARALLELISMS),
    }
    program, edb = multi_chain_workload(
        chains=chains, period=period, shift=2, data_per_chain=data_per_chain
    )
    sequential, scaling = _scaling("e14-multi-chain", program, edb)
    payload["e14_multi_chain"] = dict(
        {"chains": chains, "classes": period // 2}, **scaling
    )
    payload["faulted_recovery"] = _faulted_recovery(
        "e14-faulted", program, edb, sequential, scaling
    )
    program, edb = example_41()
    payload["coverage_cache_example41"] = _cache_ablation(
        "e41-cache", program, edb, "naive"
    )
    # Naive re-derives every earlier residue class each round, so its
    # coverage sweep re-tests the same (signature, constraints) pairs —
    # exactly what the cross-round cache memoizes.  (Semi-naive on this
    # workload derives a fresh signature per round: nothing to reuse,
    # and the cache saves nothing — by design, not by accident.)
    program, edb = shift_cycle_workload(e14_classes, 1)
    payload["coverage_cache_e14"] = _cache_ablation(
        "e14-cache", program, edb, "naive"
    )
    return payload


def write(payload, path="BENCH_parallel.json"):
    srcstate.stamp(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def report():
    """Regenerate ``BENCH_parallel.json`` and print the summary table
    (hooked into ``benchmarks/report.py``)."""
    payload = run()
    write(payload)
    _print_summary(payload)


def _print_summary(payload):
    scaling = payload["e14_multi_chain"]
    print(
        "Parallel fixpoint — %d chains x %d classes, %d usable cpu(s), "
        "best of %d" % (
            scaling["chains"], scaling["classes"], payload["cpus"], REPS
        )
    )
    print("%16s %12s %8s %8s" % ("mode", "wall_ms", "speedup", "rounds"))
    sequential = scaling["sequential"]
    print(
        "%16s %12.2f %8s %8d"
        % ("sequential", sequential["wall_ms"], "-", sequential["rounds"])
    )
    for parallelism in payload["parallelisms"]:
        entry = scaling["parallel_%d" % parallelism]
        print(
            "%16s %12.2f %7.2fx %8d"
            % (
                "parallel %d" % parallelism,
                entry["wall_ms"],
                entry["speedup"],
                entry["rounds"],
            )
        )
    faulted = payload.get("faulted_recovery")
    if faulted is not None:
        print(
            "Faulted recovery — %s at dispatch %d, parallel %d: "
            "%.2f ms vs %.2f ms clean (%.2fx), %d worker(s) lost, healed"
            % (
                faulted["fault_site"],
                faulted["fault_at"],
                faulted["parallelism"],
                faulted["wall_ms"],
                faulted["clean_wall_ms"],
                faulted["recovery_overhead"],
                faulted["workers_lost"],
            )
        )
    print("Coverage cache — implied_by_union calls (cached vs uncached)")
    print("%24s %10s %10s %8s" % ("workload", "cached", "uncached", "saved"))
    for key, label in (
        ("coverage_cache_example41", "example 4.1 naive"),
        ("coverage_cache_e14", "e14 naive"),
    ):
        ablation = payload[key]
        print(
            "%24s %10d %10d %8d"
            % (
                label,
                ablation["cached"]["misses"],
                ablation["uncached"]["misses"],
                ablation["implied_by_union_saved"],
            )
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on equivalence/cache regressions, and on missing "
        "speedup when the host has enough cores",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    write(payload, args.out)
    _print_summary(payload)
    if args.check:
        # run() already asserted equivalence, fingerprints, and the
        # cache reduction; what remains is the core-gated speedup bar.
        best = payload["e14_multi_chain"]["parallel_4"]["speedup"]
        if payload["cpus"] >= 4:
            if best < SPEEDUP_TARGET:
                print(
                    "FAIL: parallel 4 speedup %.2fx below %.1fx on %d cpus"
                    % (best, SPEEDUP_TARGET, payload["cpus"]),
                    file=sys.stderr,
                )
                return 1
            print("check ok: parallel 4 speedup %.2fx" % best)
        else:
            print(
                "check ok: equivalence and cache verified; speedup bar "
                "skipped (%d usable cpu(s), need 4)" % payload["cpus"]
            )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
