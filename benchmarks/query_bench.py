"""Goal-directed (magic-set) query evaluation vs full materialization.

Runs the multi-chain E14 workload (``chains`` independent recursive
predicates) and answers point and windowed queries two ways — the
full bottom-up fixpoint followed by a lookup, and the magic-set
rewrite (:mod:`repro.plan.magic`) that evaluates only the demand cone
— recording derived-tuple counts and latency in ``BENCH_query.json``::

    python benchmarks/query_bench.py             # full sizes
    python benchmarks/query_bench.py --quick     # CI smoke sizes
    python benchmarks/query_bench.py --quick --check

``--check`` fails (exit 1) unless the point query derives at most half
the tuples of full materialization — the acceptance gate for the
goal-directed path — and every scenario's goal-directed answers match
the full fixpoint within the demanded window.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import DeductiveEngine
from repro.plan.magic import QueryGoal, goal_directed_model

import srcstate
from workloads import multi_chain_workload

REPS = 3


def _best(run_once):
    best = None
    result = None
    for _ in range(REPS):
        started = time.perf_counter()
        result = run_once()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _run_full(program, edb):
    def once():
        return DeductiveEngine(program, edb, on_give_up="partial").run()

    best, model = _best(once)
    return model, {
        "wall_ms": best * 1000.0,
        "derived_tuples": model.stats.total_new_tuples(),
        "rounds": model.stats.rounds,
    }


def _run_goal(program, edb, goal):
    def once():
        return goal_directed_model(program, edb, goal, on_give_up="partial")

    best, (model, info) = _best(once)
    if info.get("degraded"):
        raise RuntimeError(
            "goal %s unexpectedly degraded to the full fixpoint: %s"
            % (goal, info.get("reason"))
        )
    return model, {
        "wall_ms": best * 1000.0,
        "derived_tuples": model.stats.total_new_tuples(),
        "rounds": model.stats.rounds,
        "magic_facts": info["magic_facts"],
        "dropped_clauses": info["dropped_clauses"],
        "restricted": len(info["restricted"]),
        "widenings": info["widenings"],
    }


def _scenario(program, edb, goal, window):
    """Both evaluations of one goal, plus the equivalence check of the
    goal predicate's extension within the demanded window."""
    full_model, full = _run_full(program, edb)
    goal_model, directed = _run_goal(program, edb, goal)
    low, high = window
    full_ext = set(full_model.extension(goal.predicate, low, high))
    goal_ext = set(goal_model.extension(goal.predicate, low, high))
    if goal.data:
        bound = dict(goal.data)
        t_arity = full_model.relation(goal.predicate).temporal_arity
        full_ext = {
            row
            for row in full_ext
            if all(row[t_arity + col] == val for col, val in bound.items())
        }
    derived = max(1, directed["derived_tuples"])
    return {
        "goal": str(goal),
        "window": [low, high],
        "full": full,
        "goal_directed": directed,
        "answers": len(goal_ext),
        "equivalent_within_window": goal_ext == full_ext,
        "tuple_reduction": full["derived_tuples"] / derived,
        "speedup": full["wall_ms"] / max(1e-9, directed["wall_ms"]),
    }


def run(quick=False):
    chains = 4 if quick else 6
    period = 24 if quick else 48
    program, edb = multi_chain_workload(chains=chains, period=period)
    instant = period // 2 + 1
    payload = {
        "chains": chains,
        "period": period,
        "reps": REPS,
        # One instant of one chain's join predicate: reachability drops
        # the other chains and the demand zone bounds the shift
        # recursion — the acceptance gate's >= 2x scenario.
        "point": _scenario(
            program,
            edb,
            QueryGoal.point("meet%d" % (chains - 1), instant),
            (instant, instant + 1),
        ),
        # A window of one chain: the zone still prunes, less sharply.
        "window": _scenario(
            program,
            edb,
            QueryGoal.windowed("p0", 0, period),
            (0, period),
        ),
        # No temporal bound at all: pure reachability pruning — the
        # floor of what goal direction buys on this workload.
        "reachability": _scenario(
            program,
            edb,
            QueryGoal.whole("p1"),
            (0, 2 * period),
        ),
    }
    return payload


def write(payload, path="BENCH_query.json"):
    srcstate.stamp(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _print_summary(payload):
    print(
        "Goal-directed queries — magic sets vs full fixpoint "
        "(%d chains, period %d, best of %d)"
        % (payload["chains"], payload["period"], payload["reps"])
    )
    print(
        "%14s %24s %10s %10s %10s %8s"
        % ("scenario", "goal", "full tup", "goal tup", "reduction", "equal")
    )
    for key in ("point", "window", "reachability"):
        entry = payload[key]
        print(
            "%14s %24s %10d %10d %9.2fx %8s"
            % (
                key,
                entry["goal"],
                entry["full"]["derived_tuples"],
                entry["goal_directed"]["derived_tuples"],
                entry["tuple_reduction"],
                entry["equivalent_within_window"],
            )
        )


def report():
    """Regenerate ``BENCH_query.json`` and print the summary table
    (hooked into ``benchmarks/report.py``)."""
    payload = run()
    write(payload)
    _print_summary(payload)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--out", default="BENCH_query.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the point query derives <= 1/2 the tuples of "
        "full materialization and every scenario matches the full "
        "fixpoint within its window",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    write(payload, args.out)
    _print_summary(payload)
    if args.check:
        failures = []
        for key in ("point", "window", "reachability"):
            if not payload[key]["equivalent_within_window"]:
                failures.append(
                    "%s: goal-directed answers diverge from the full "
                    "fixpoint within the window" % key
                )
        if payload["point"]["tuple_reduction"] < 2.0:
            failures.append(
                "point: derived-tuple reduction %.2fx is below the 2x gate"
                % payload["point"]["tuple_reduction"]
            )
        if failures:
            for failure in failures:
                print("FAIL: %s" % failure, file=sys.stderr)
            return 1
        print(
            "check ok: point reduction %.2fx, all windows equivalent"
            % payload["point"]["tuple_reduction"]
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
