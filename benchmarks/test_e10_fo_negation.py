"""E10 — the [KSW90] first-order query layer with negation
(Section 2.1).

Negation is where the representation earns its keep: the complement
of a generalized relation is again a generalized relation.  The
benchmark times complement/difference-heavy queries and validates the
answers against brute-force window enumeration.
"""

import pytest

from repro.fo import evaluate_query
from repro.gdb import parse_database

DB_TEXT = """
relation train[2; 2] {
  (40n+5, 40n+65; "Liege", "Brussels") where T1 >= 0 & T2 = T1 + 60;
  (60n+10, 60n+100; "Liege", "Antwerp") where T1 >= 0 & T2 = T1 + 90;
  (90n+20, 90n+50; "Brussels", "Antwerp") where T1 >= 0 & T2 = T1 + 30;
}
"""

QUERIES = {
    "complement": 'not exists b (train(t, b; "Liege", "Brussels"))',
    "first-after": (
        'exists b (train(t, b; "Liege", "Brussels")) and t >= 50 and '
        'not exists u (exists c (train(u, c; "Liege", "Brussels")) '
        "and u >= 50 and u < t)"
    ),
    "gap": (
        't >= 0 and t < 200 and not exists u, b, c ('
        "train(u, b; c, \"Antwerp\") and u >= t and u < t + 30)"
    ),
}


def db():
    return parse_database(DB_TEXT)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_e10_query_benchmarks(benchmark, name):
    database = db()
    answers = benchmark(lambda: evaluate_query(database, QUERIES[name]))
    assert answers.temporal_vars == ("t",)


def test_e10_complement_matches_enumeration(benchmark):
    database = db()

    def run():
        return evaluate_query(database, QUERIES["complement"])

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    # Enumerate with slack: a departure only shows up if its arrival
    # also fits in the window.
    departures = {
        flat[0]
        for flat in database.relation("train").extension(-300, 500)
        if flat[2:] == ("Liege", "Brussels")
    }
    for t in range(-100, 300):
        assert answers.relation.contains_point((t,)) == (t not in departures)


def test_e10_double_negation_identity(benchmark):
    database = db()
    base_q = 'exists b (train(t, b; "Liege", "Brussels"))'

    def run():
        base = evaluate_query(database, base_q)
        doubled = evaluate_query(database, "not not (%s)" % base_q)
        return base, doubled

    base, doubled = benchmark.pedantic(run, rounds=1, iterations=1)
    assert base.relation.equivalent(doubled.relation)


def report():
    import time

    print("E10 — FO queries with negation over generalized relations")
    database = db()
    for name in sorted(QUERIES):
        start = time.perf_counter()
        answers = evaluate_query(database, QUERIES[name])
        elapsed = (time.perf_counter() - start) * 1000
        sample = sorted(answers.extension(0, 120))[:6]
        print(
            "  %-14s %7.1f ms, %2d closed-form tuples, window sample %s"
            % (name, elapsed, len(answers.relation), sample)
        )


if __name__ == "__main__":
    report()
