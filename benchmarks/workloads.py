"""Shared workload generators for the experiment suite (E1–E10).

Each experiment in EXPERIMENTS.md draws its inputs from here so that
the benchmark numbers and the recorded tables come from the same
generators.  Randomness is seeded for reproducibility.
"""

from __future__ import annotations

import random

from repro.core import parse_program
from repro.gdb import parse_database
from repro.lrp import EventuallyPeriodicSet

EXAMPLE_41_EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

EXAMPLE_41_PROGRAM = """
problems(t1 + 2, t2 + 2; "database") <- course(t1, t2; "database").
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


def example_41():
    """The paper's Example 4.1 as (program, edb)."""
    return parse_program(EXAMPLE_41_PROGRAM), parse_database(EXAMPLE_41_EDB)


def shift_cycle_workload(period, shift, offset=0):
    """A one-predicate recursive program over a periodic seed:
    ``p(t) <- seed(t); p(t + shift) <- p(t)`` with ``seed = period·n +
    offset``.  The closed form has ``period / gcd(period, shift)``
    residue classes; Theorem 4.2's bound is the seed period."""
    edb = parse_database(
        "relation seed[1; 0] { (%dn+%d); }" % (period, offset)
    )
    program = parse_program(
        "p(t) <- seed(t). p(t + %d) <- p(t)." % shift
    )
    return program, edb


def multi_chain_workload(chains=6, period=48, shift=2, data_per_chain=4):
    """E14's 48-class shift cycle, widened for sharding: ``chains``
    independent recursive predicates over one period-``period`` seed
    each, with ``data_per_chain`` data constants riding along.

    A single shift cycle fires one clause variant per semi-naive round
    — nothing to shard — so the parallel benchmark runs this variant:
    per round there are ``chains`` independent firings (one per
    chain's recursive clause), each deriving ``data_per_chain`` tuples,
    and a per-chain self-join doubles the work once a chain's classes
    start accumulating.  The closed form per chain still has
    ``period / gcd(period, shift)`` residue classes (Theorem 4.2's
    bound is the seed period), so rounds and totals match E14's shape.
    """
    edb_parts = []
    program_parts = []
    for chain in range(chains):
        rows = "".join(
            ' (%dn+%d; "c%d");' % (period, (chain * 5 + item) % period, item)
            for item in range(data_per_chain)
        )
        edb_parts.append("relation seed%d[1; 1] {%s }" % (chain, rows))
        program_parts.append("p%d(t; X) <- seed%d(t; X)." % (chain, chain))
        program_parts.append(
            "p%d(t + %d; X) <- p%d(t; X)." % (chain, shift, chain)
        )
        program_parts.append(
            "meet%d(t; X, Y) <- p%d(t; X), p%d(t; Y)." % (chain, chain, chain)
        )
    return (
        parse_program("\n".join(program_parts)),
        parse_database("\n".join(edb_parts)),
    )


def point_seed_workload(shift):
    """The non-closing workload of Section 4.4: a single time point
    propagated by ``+shift`` — periods stay 1, constraint safety is
    never reached, the engine must give up."""
    edb = parse_database("relation seed[1; 0] { (n) where T1 = 0; }")
    program = parse_program("p(t) <- seed(t). p(t + %d) <- p(t)." % shift)
    return program, edb


def unary_arithmetic_workload():
    """Two temporal arguments computing t2 = t1 + t1 by unary
    recursion — definable (Section 4.4 data expressiveness) but not
    periodic, so never constraint safe."""
    edb = parse_database("relation zero[2; 0] { (n, n) where T1 = 0 & T2 = 0; }")
    program = parse_program(
        """
        double(t1, t2) <- zero(t1, t2).
        double(t1 + 1, t2 + 2) <- double(t1, t2).
        """
    )
    return program, edb


def schedule_database(num_tuples, period=60, seed=0):
    """A timetable-style relation with ``num_tuples`` generalized
    tuples (temporal arity 2, data arity 0) for algebra scaling."""
    rng = random.Random(seed)
    rows = []
    for _ in range(num_tuples):
        offset = rng.randrange(period)
        ride = rng.randrange(5, 55)
        rows.append(
            "(%dn+%d, %dn+%d) where T1 >= 0 & T2 = T1 + %d;"
            % (period, offset, period, (offset + ride) % period, ride)
        )
    text = "relation r[2; 0] {\n%s\n}" % "\n".join(rows)
    return parse_database(text).relation("r")


def random_eps(rng):
    """A random eventually periodic set."""
    threshold = rng.randrange(0, 10)
    period = rng.randrange(1, 10)
    residues = {
        r for r in range(period) if rng.random() < 0.4
    }
    prefix = {t for t in range(threshold) if rng.random() < 0.4}
    return EventuallyPeriodicSet(
        threshold=threshold, period=period, residues=residues, prefix=prefix
    )


def random_datalog1s_text(rng, chains=2):
    """A random forward Datalog1S program: several seeded chains plus
    a conjunction predicate."""
    lines = []
    for index in range(chains):
        start = rng.randrange(0, 8)
        step = rng.randrange(1, 8)
        lines.append("p%d(%d)." % (index, start))
        lines.append("p%d(t + %d) <- p%d(t)." % (index, step, index))
    body = ", ".join("p%d(t)" % i for i in range(chains))
    lines.append("meet(t) <- %s." % body)
    return "\n".join(lines), [
        int(line.split("+ ")[1].split(")")[0])
        for line in lines
        if "+ " in line
    ]
