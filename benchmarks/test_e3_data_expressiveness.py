"""E3 — Section 3.1: the three formalisms have the same data
expressiveness (eventually periodic sets).

Random eventually periodic sets are carried around the full circle

    periodic set → Datalog1S program → minimal model
                 → lrp relation → Datalog1S again → Templog → back

and must come back **equal** (the canonical representation makes the
comparison bit-for-bit).  The benchmark times the complete round trip
for a batch of random sets.
"""

import random

from repro.datalog1s import (
    datalog1s_model_to_relation,
    minimal_model,
    relation_to_datalog1s,
)
from repro.datalog1s.ast import Datalog1SProgram
from repro.datalog1s.translate import (
    eventually_periodic_to_clauses,
    relation_extension_as_eps,
)
from repro.core.ast import Program
from repro.templog.ast import TemplogAtom, TemplogClause, TemplogProgram
from repro.templog.translate import templog_minimal_model

from workloads import random_eps


def eps_to_templog(eps, predicate="p"):
    """Templog clauses with minimal model `eps` for `predicate`
    (mirror of the Datalog1S construction: auxiliaries per residue)."""
    clauses = []
    for point in sorted(eps.prefix):
        clauses.append(TemplogClause(TemplogAtom(predicate, (), point)))
    for index, residue in enumerate(sorted(eps.residues)):
        aux = "cls%d" % index
        first = eps.threshold + (residue - eps.threshold) % eps.period
        clauses.append(TemplogClause(TemplogAtom(aux, (), first)))
        clauses.append(
            TemplogClause(
                TemplogAtom(aux, (), eps.period),
                (TemplogAtom(aux, (), 0),),
                boxed=True,
            )
        )
        clauses.append(
            TemplogClause(
                TemplogAtom(predicate, (), 0),
                (TemplogAtom(aux, (), 0),),
                boxed=True,
            )
        )
    return TemplogProgram(tuple(clauses))


def full_round_trip(eps):
    # periodic set -> Datalog1S -> model
    clauses = eventually_periodic_to_clauses("p", eps)
    if clauses:
        model = minimal_model(Datalog1SProgram(Program(tuple(clauses))))
        assert model.set_of("p") == eps
        # model -> lrp relation -> Datalog1S -> model
        relation = datalog1s_model_to_relation(model, "p")
        assert relation_extension_as_eps(relation) == eps
        again = relation_to_datalog1s(relation, "p")
        assert minimal_model(again).set_of("p") == eps
    # periodic set -> Templog -> model
    templog_model = templog_minimal_model(eps_to_templog(eps))
    assert templog_model.set_of("p") == eps
    return True


def test_e3_round_trips(benchmark):
    rng = random.Random(3)
    batch = [random_eps(rng) for _ in range(12)]

    def run():
        for eps in batch:
            full_round_trip(eps)
        return len(batch)

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count == 12


def report():
    rng = random.Random(3)
    print("E3 — data-expressiveness round trips (Section 3.1)")
    for index in range(12):
        eps = random_eps(rng)
        full_round_trip(eps)
        print("  ok: %s" % eps)
    print("  all 12 random sets identical through lrp / Datalog1S / Templog")


if __name__ == "__main__":
    report()
