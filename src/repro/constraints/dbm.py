"""Difference-bound matrices over the integers.

A DBM over variables ``x_1 … x_n`` (plus the implicit zero variable
``x_0 = 0``) stores in entry ``(i, j)`` an upper bound on
``x_i - x_j``.  Because the variables range over ℤ, all bounds are
kept non-strict; a strict bound ``x - y < c`` is stored as
``x - y <= c - 1``, losing nothing.

The canonical form is the shortest-path closure (Floyd–Warshall).  On
closed matrices, satisfiability, containment, projection and zone
difference are all exact — the properties the safety criteria of the
paper's Section 4.3 rely on.
"""

from __future__ import annotations

import threading

from repro.util.hooks import fault_point

INF = float("inf")


class Dbm:
    """A zone: conjunction of bounds ``x_i - x_j <= c`` over ℤ.

    Index 0 is the zero variable, indices ``1 … size`` the real
    variables.  Instances are mutable while being built; call
    :meth:`close` (or any query method, which closes on demand) to
    canonicalize.

    >>> z = Dbm.unconstrained(2)
    >>> z.add_bound(1, 2, -1)   # x1 - x2 <= -1, i.e. x1 < x2
    >>> z.add_bound(2, 1, 5)    # x2 - x1 <= 5
    >>> z.is_satisfiable()
    True
    >>> z.bound(2, 1)
    5
    """

    __slots__ = ("size", "_m", "_closed", "_key", "_cid")

    def __init__(self, size, matrix=None, closed=False):
        self.size = size
        n = size + 1
        if matrix is None:
            self._m = [[0 if i == j else INF for j in range(n)] for i in range(n)]
        else:
            self._m = matrix
        self._closed = closed
        self._key = None
        self._cid = None

    # -- construction ----------------------------------------------------

    @classmethod
    def unconstrained(cls, size):
        """The zone ℤ^size (no constraints)."""
        return cls(size)

    def copy(self):
        """An independent copy of this zone.

        The copy is mutable and therefore never carries the original's
        interned constraint id (``_cid``), which names an immutable
        table entry.
        """
        clone = Dbm(self.size, [row[:] for row in self._m], self._closed)
        clone._key = self._key
        return clone

    def add_bound(self, i, j, c):
        """Conjoin ``x_i - x_j <= c`` (index 0 is the constant 0)."""
        if not (0 <= i <= self.size and 0 <= j <= self.size):
            raise IndexError("variable index out of range")
        if c < self._m[i][j]:
            self._m[i][j] = c
            self._closed = False
            self._key = None
            self._cid = None

    def conjoin(self, other):
        """Conjoin another zone over the same variables, in place."""
        if other.size != self.size:
            raise ValueError("cannot conjoin zones of different dimension")
        for i in range(self.size + 1):
            row, other_row = self._m[i], other._m[i]
            for j in range(self.size + 1):
                if other_row[j] < row[j]:
                    row[j] = other_row[j]
                    self._closed = False
                    self._key = None
                    self._cid = None

    # -- canonicalization --------------------------------------------------

    def close(self):
        """Shortest-path closure; returns True iff the zone is non-empty.

        After closure every entry is the tightest bound implied by the
        conjunction, and an unsatisfiable zone is detected by a negative
        diagonal.
        """
        if self._closed:
            return self._m[0][0] == 0
        fault_point("dbm_canonicalize")
        m = self._m
        n = self.size + 1
        for k in range(n):
            mk = m[k]
            for i in range(n):
                mik = m[i][k]
                if mik == INF:
                    continue
                mi = m[i]
                for j in range(n):
                    via = mik + mk[j]
                    if via < mi[j]:
                        mi[j] = via
        satisfiable = all(m[i][i] >= 0 for i in range(n))
        if satisfiable:
            for i in range(n):
                m[i][i] = 0
        else:
            # Mark emptiness canonically.
            m[0][0] = -1
        self._closed = True
        return satisfiable

    def is_satisfiable(self):
        """True iff the zone contains at least one integer point."""
        return self.close()

    def bound(self, i, j):
        """The tightest upper bound on ``x_i - x_j`` (INF if unbounded)."""
        self.close()
        return self._m[i][j]

    def difference_interval(self, i, j):
        """The interval ``[lo, hi]`` of feasible values of ``x_i - x_j``.

        Either end may be ``-INF`` / ``INF``.
        """
        self.close()
        hi = self._m[i][j]
        lo = -self._m[j][i] if self._m[j][i] is not INF and self._m[j][i] != INF else -INF
        return lo, hi

    def is_trivial(self):
        """True when no finite bound constrains any variable (the zone
        is all of ℤ^size).  A plain matrix scan — no closure needed,
        since an all-INF off-diagonal matrix is already closed and any
        finite off-diagonal entry survives closure.  A negative
        diagonal entry is the emptiness marker (``m[0][0] = -1``), so
        the diagonal must be exactly 0 everywhere."""
        m = self._m
        for i in range(self.size + 1):
            row = m[i]
            for j in range(self.size + 1):
                if i == j:
                    if row[j] != 0:
                        return False
                elif row[j] is not INF and row[j] != INF:
                    return False
        return True

    def canonical_key(self):
        """A hashable canonical form (closed matrix as nested tuples).

        Memoized on the instance; any mutation (``add_bound``,
        ``conjoin``) invalidates the memo.
        """
        if self._key is None:
            if not self.close():
                self._key = ("empty", self.size)
            else:
                self._key = tuple(tuple(row) for row in self._m)
        return self._key

    def __eq__(self, other):
        if not isinstance(other, Dbm):
            return NotImplemented
        if self.size != other.size:
            return False
        return self.canonical_key() == other.canonical_key()

    def __hash__(self):
        return hash(self.canonical_key())

    # -- zone algebra --------------------------------------------------------

    def contains(self, other):
        """True when ``other ⊆ self`` (both zones over the same variables)."""
        if other.size != self.size:
            raise ValueError("cannot compare zones of different dimension")
        if not other.close():
            return True
        if not self.close():
            return False
        for i in range(self.size + 1):
            for j in range(self.size + 1):
                if self._m[i][j] < other._m[i][j]:
                    return False
        return True

    def finite_bounds(self):
        """All finite bounds ``(i, j, c)`` of the closed matrix, ``i != j``."""
        self.close()
        bounds = []
        for i in range(self.size + 1):
            for j in range(self.size + 1):
                if i != j and self._m[i][j] != INF:
                    bounds.append((i, j, self._m[i][j]))
        return bounds

    def generating_bounds(self):
        """A small set of bounds whose conjunction equals this zone.

        The naive "drop every bound that is the sum of two others"
        reduction is unsound on zero cycles (in an equality clique every
        bound is such a sum, so all would be dropped).  We therefore use
        the standard two-level reduction: variables connected by a zero
        cycle form an equality class kept together by a chain of tight
        bounds, and the sum-of-two-others reduction runs only between
        class representatives.
        """
        self.close()
        m = self._m
        n = self.size + 1
        if m[0][0] != 0:
            # Empty zone: a single contradictory bound generates it.
            return [(0, 0, -1)]

        # Equality classes: i ~ j iff x_i - x_j is pinned to a constant.
        representative = list(range(n))
        for i in range(n):
            for j in range(i):
                if m[i][j] != INF and m[j][i] != INF and m[i][j] + m[j][i] == 0:
                    representative[i] = representative[j]
                    break
        classes = {}
        for i in range(n):
            classes.setdefault(representative[i], []).append(i)

        kept = []
        # Chain each equality class with tight bounds in both directions.
        for members in classes.values():
            for a, b in zip(members, members[1:]):
                kept.append((a, b, m[a][b]))
                kept.append((b, a, m[b][a]))

        reps = sorted(classes)
        for i in reps:
            for j in reps:
                if i == j or m[i][j] == INF:
                    continue
                redundant = False
                for k in reps:
                    if k in (i, j):
                        continue
                    if m[i][k] != INF and m[k][j] != INF and m[i][k] + m[k][j] <= m[i][j]:
                        redundant = True
                        break
                if not redundant:
                    kept.append((i, j, m[i][j]))
        return kept

    def difference(self, other):
        """``self \\ other`` as a list of pairwise-disjoint zones.

        Standard zone splitting: enumerate the generating bounds of
        ``other`` in a fixed order; the k-th output zone satisfies the
        first ``k-1`` of them and violates the k-th.  Only satisfiable
        zones are returned.
        """
        if other.size != self.size:
            raise ValueError("cannot subtract zones of different dimension")
        if not self.close():
            return []
        if not other.close():
            return [self.copy()]
        pieces = []
        accumulated = self.copy()
        for (i, j, c) in other.generating_bounds():
            piece = accumulated.copy()
            # Violate x_i - x_j <= c, i.e. x_j - x_i <= -c - 1.
            piece.add_bound(j, i, -c - 1)
            if piece.close():
                pieces.append(piece)
            accumulated.add_bound(i, j, c)
            if not accumulated.close():
                break
        return pieces

    def is_subset_of_union(self, zones):
        """True when ``self ⊆ z_1 ∪ … ∪ z_k``.

        Implemented by successive zone subtraction; exact.
        """
        remaining = [self.copy()]
        for zone in zones:
            if not remaining:
                return True
            next_remaining = []
            for piece in remaining:
                next_remaining.extend(piece.difference(zone))
            remaining = next_remaining
        return not remaining

    # -- projection and renaming ------------------------------------------

    def project_out(self, k):
        """Existentially quantify variable ``k`` (1-based); exact on a
        closed DBM.  Returns a new zone over ``size - 1`` variables with
        the remaining variables renumbered to stay contiguous.
        """
        if not (1 <= k <= self.size):
            raise IndexError("variable index out of range")
        self.close()
        keep = [idx for idx in range(self.size + 1) if idx != k]
        matrix = [[self._m[i][j] for j in keep] for i in keep]
        return Dbm(self.size - 1, matrix, closed=self._m[0][0] == 0)

    def renamed(self, permutation):
        """Apply a permutation of the real variables.

        ``permutation`` maps old 1-based index → new 1-based index and
        must be a bijection on ``1 … size``.
        """
        n = self.size + 1
        full = {0: 0}
        full.update(permutation)
        matrix = [[INF] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                matrix[full[i]][full[j]] = self._m[i][j]
        return Dbm(self.size, matrix, self._closed)

    def embedded(self, new_size, placement):
        """Embed this zone into a larger variable space.

        ``placement`` maps each old 1-based variable to its 1-based
        position among ``new_size`` variables; unmapped new variables
        are unconstrained.
        """
        result = Dbm.unconstrained(new_size)
        full = {0: 0}
        full.update(placement)
        for i in range(self.size + 1):
            for j in range(self.size + 1):
                if i != j and self._m[i][j] != INF:
                    result.add_bound(full[i], full[j], self._m[i][j])
        return result

    def shift_variable(self, k, c):
        """Substitute ``x_k := x_k + c`` — the zone for the shifted column.

        If a tuple's k-th temporal column is advanced by ``c`` time
        units, a constraint ``x_k - x_j <= b`` on the old value becomes
        ``x_k - x_j <= b + c`` on the new one.
        """
        result = self.copy()
        m = result._m
        for idx in range(self.size + 1):
            if idx == k:
                continue
            if m[k][idx] != INF:
                m[k][idx] = m[k][idx] + c
            if m[idx][k] != INF:
                m[idx][k] = m[idx][k] - c
        result._closed = self._closed
        result._key = None
        return result

    # -- solutions -------------------------------------------------------

    def satisfied_by(self, values):
        """True when the integer vector ``values`` (len == size) lies in
        the zone."""
        if len(values) != self.size:
            raise ValueError("expected %d values" % self.size)
        point = (0,) + tuple(values)
        for i in range(self.size + 1):
            for j in range(self.size + 1):
                if self._m[i][j] != INF and point[i] - point[j] > self._m[i][j]:
                    return False
        return True

    def sample(self):
        """One integer point of the zone, or None when empty.

        Fixes variables one at a time at the tightest lower bound
        induced by the already-fixed ones (falling back to the upper
        bound, then to 0); exact thanks to closure.
        """
        if not self.close():
            return None
        values = {0: 0}
        for i in range(1, self.size + 1):
            lower = None
            upper = None
            for j, vj in values.items():
                if self._m[j][i] != INF:  # x_j - x_i <= m → x_i >= x_j - m
                    candidate = vj - self._m[j][i]
                    lower = candidate if lower is None else max(lower, candidate)
                if self._m[i][j] != INF:  # x_i - x_j <= m → x_i <= x_j + m
                    candidate = vj + self._m[i][j]
                    upper = candidate if upper is None else min(upper, candidate)
            if lower is not None:
                values[i] = lower
            elif upper is not None:
                values[i] = upper
            else:
                values[i] = 0
        return tuple(values[i] for i in range(1, self.size + 1))

    def enumerate_in_box(self, low, high):
        """All integer points of the zone inside ``[low, high)^size``.

        Brute force; intended for tests and small windows only.
        """
        self.close()
        if self._m[0][0] != 0:
            return
        point = [0] * self.size

        def recurse(k):
            if k == self.size:
                yield tuple(point)
                return
            for v in range(low, high):
                point[k] = v
                ok = True
                # Check all constraints among fixed vars (0..k) and zero.
                for i in range(k + 2):
                    for j in range(k + 2):
                        ci = 0 if i == 0 else point[i - 1]
                        cj = 0 if j == 0 else point[j - 1]
                        if self._m[i][j] != INF and ci - cj > self._m[i][j]:
                            ok = False
                            break
                    if not ok:
                        break
                if ok:
                    yield from recurse(k + 1)

        yield from recurse(0)

    def __repr__(self):
        self.close()
        if self._m[0][0] != 0:
            return "Dbm(size=%d, empty)" % self.size
        parts = []
        for (i, j, c) in self.generating_bounds():
            left = "0" if i == 0 else "x%d" % i
            right = "0" if j == 0 else "x%d" % j
            parts.append("%s - %s <= %s" % (left, right, c))
        return "Dbm(size=%d, %s)" % (self.size, ", ".join(parts) or "true")


# -- process-level interning: the constraint table ---------------------------
#
# Identical zones recur constantly during bottom-up evaluation (every
# derived tuple of the same clause round carries the same handful of
# canonical zones).  The ConstraintTable shares one closed instance per
# canonical key and assigns it a dense integer id (its ``_cid``), so
# canonicalization and key computation happen once per distinct zone,
# equality checks short-circuit on identity, and downstream layers can
# dedup and index tuples by plain integer compares instead of hashing
# whole canonical matrices.  Interned instances must never be mutated;
# every holder treats its zone as immutable (ConstraintSystem copies
# before any in-place operation).


class ConstraintTable:
    """Process-level intern table: one canonical closed DBM per id.

    Ids are dense (``0 … len-1``) in interning order, so they are only
    meaningful within one process — the wire/checkpoint formats keep
    using canonical bounds.  The table is capped; past the cap
    :meth:`intern` returns the caller's own (closed) zone un-interned
    with no id, and :meth:`zone_id` falls back to the canonical key,
    which compares slower but never collides with an integer id.

    Id assignment is lock-guarded (service threads share the process
    table); the hit path stays lock-free because entries are
    append-only and never replaced.
    """

    __slots__ = ("cap", "_ids", "_zones", "_lock")

    def __init__(self, cap=1 << 17):
        self.cap = cap
        self._ids = {}      # canonical key -> id
        self._zones = []    # id -> frozen closed Dbm
        self._lock = threading.Lock()

    def __len__(self):
        return len(self._zones)

    def intern(self, zone):
        """The shared canonical instance for ``zone``'s canonical key.

        The returned DBM is closed and carries its table id in
        ``_cid``.  On a miss a private copy of ``zone`` is stored, so
        later mutation of the caller's instance can never corrupt the
        table.
        """
        key = zone.canonical_key()
        cid = self._ids.get(key)
        if cid is not None:
            return self._zones[cid]
        if len(self._zones) >= self.cap:
            return zone
        with self._lock:
            cid = self._ids.get(key)
            if cid is not None:
                return self._zones[cid]
            if len(self._zones) >= self.cap:
                return zone
            frozen = zone.copy()
            frozen._cid = len(self._zones)
            self._zones.append(frozen)
            self._ids[key] = frozen._cid
            return frozen

    def zone_id(self, zone):
        """A dedup key for ``zone``: its int id, or the canonical key
        when the zone never made it into the capped table."""
        cid = zone._cid
        if cid is not None:
            return cid
        key = zone.canonical_key()
        cid = self._ids.get(key)
        return key if cid is None else cid

    def zone_for(self, cid):
        """The interned zone with table id ``cid``."""
        return self._zones[cid]


CONSTRAINT_TABLE = ConstraintTable()

_BATCH_UNSET = object()


def intern_dbm(zone):
    """The shared canonical instance for ``zone`` (see ConstraintTable)."""
    return CONSTRAINT_TABLE.intern(zone)


def canonicalize_batch(zones):
    """Canonicalize a batch of zones with one closure per distinct zone.

    Returns a list aligned with ``zones``: the interned canonical
    instance for each satisfiable entry, ``None`` for unsatisfiable
    ones.  Entries that are structurally identical before closure are
    closed only once — the batch form of the per-tuple
    canonicalize/intersect/canonicalize pattern in the plan layer.
    """
    out = [None] * len(zones)
    distinct = {}
    for index, zone in enumerate(zones):
        pre = (zone.size,) + tuple(map(tuple, zone._m))
        cached = distinct.get(pre, _BATCH_UNSET)
        if cached is _BATCH_UNSET:
            cached = CONSTRAINT_TABLE.intern(zone) if zone.close() else None
            distinct[pre] = cached
        out[index] = cached
    return out


def intern_cache_stats():
    """Size of the process-level DBM interning table (for tests)."""
    return {"entries": len(CONSTRAINT_TABLE), "cap": CONSTRAINT_TABLE.cap}
