"""Surface-level constraint atoms (paper Section 2.1).

A constraint atom compares two *temporal sides*, each of which is a
temporal variable plus an integer constant or a bare constant:
``Ti < Tj + c``, ``Ti = c``, ``c < Ti`` and friends.  This module
parses, pretty-prints, and lowers atoms to the ``x_i - x_j <= c``
bounds understood by :class:`repro.constraints.dbm.Dbm`.

Variables are identified by 0-based column index; display uses the
paper's 1-based ``T1, T2, …`` names.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ParseError
from repro.util.lexing import Lexer, TokenKind


@dataclass(frozen=True)
class TemporalTerm:
    """``var + const`` where ``var`` is a 0-based column index or None
    for a pure integer constant."""

    var: int | None
    const: int = 0

    def shifted(self, delta):
        """The term denoting this value plus ``delta``."""
        return TemporalTerm(self.var, self.const + delta)

    def __str__(self):
        if self.var is None:
            return str(self.const)
        name = "T%d" % (self.var + 1)
        if self.const == 0:
            return name
        if self.const > 0:
            return "%s + %d" % (name, self.const)
        return "%s - %d" % (name, -self.const)


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass(frozen=True)
class Comparison:
    """A constraint atom ``left op right`` with op in <, <=, =, >=, >, !=.

    ``!=`` is not a single zone; callers that need zones must expand it
    (see :meth:`is_convex`).
    """

    op: str
    left: TemporalTerm
    right: TemporalTerm

    def is_convex(self):
        """True when the atom denotes a single zone (everything but !=)."""
        return self.op != "!="

    def flipped(self):
        """The same constraint written with sides exchanged."""
        return Comparison(_FLIPPED[self.op], self.right, self.left)

    def negated(self):
        """The complementary constraints, as a list of atoms whose
        disjunction is the negation of this atom.

        Over the integers the negation of every convex atom is a
        disjunction of at most two convex atoms.
        """
        if self.op == "<":
            return [Comparison(">=", self.left, self.right)]
        if self.op == "<=":
            return [Comparison(">", self.left, self.right)]
        if self.op == ">":
            return [Comparison("<=", self.left, self.right)]
        if self.op == ">=":
            return [Comparison("<", self.left, self.right)]
        if self.op == "=":
            return [
                Comparison("<", self.left, self.right),
                Comparison(">", self.left, self.right),
            ]
        # !=
        return [Comparison("=", self.left, self.right)]

    def to_bounds(self):
        """Lower to DBM bounds ``(i, j, c)`` meaning ``x_i - x_j <= c``
        with index 0 reserved for the constant zero and columns shifted
        to 1-based.

        Raises ValueError for ``!=`` (not convex).
        """
        if self.op == "!=":
            raise ValueError("a != atom is not a single zone; expand it first")
        i = 0 if self.left.var is None else self.left.var + 1
        j = 0 if self.right.var is None else self.right.var + 1
        # left.var + left.const  OP  right.var + right.const
        # → x_i - x_j  OP  right.const - left.const
        gap = self.right.const - self.left.const
        if self.op == "<":
            return [(i, j, gap - 1)]
        if self.op == "<=":
            return [(i, j, gap)]
        if self.op == ">":
            return [(j, i, -gap - 1)]
        if self.op == ">=":
            return [(j, i, -gap)]
        # equality
        return [(i, j, gap), (j, i, -gap)]

    def remapped(self, mapping):
        """Rename column indices through ``mapping`` (0-based → 0-based)."""

        def remap(term):
            if term.var is None:
                return term
            return TemporalTerm(mapping[term.var], term.const)

        return Comparison(self.op, remap(self.left), remap(self.right))

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


def _parse_term(lexer, var_names):
    """Parse ``Ti [+/- c]``, a bare integer, or ``- integer``."""
    token = lexer.peek()
    if token.kind is TokenKind.MINUS:
        lexer.next()
        number = lexer.expect(TokenKind.NUMBER)
        return TemporalTerm(None, -int(number.value))
    if token.kind is TokenKind.NUMBER:
        lexer.next()
        return TemporalTerm(None, int(token.value))
    if token.kind is TokenKind.IDENT:
        lexer.next()
        name = token.value
        if name not in var_names:
            raise ParseError(
                "unknown temporal variable %r (expected one of %s)"
                % (name, ", ".join(sorted(var_names))),
                token.line,
                token.column,
            )
        var = var_names[name]
        const = 0
        if lexer.peek().kind is TokenKind.PLUS:
            lexer.next()
            const = int(lexer.expect(TokenKind.NUMBER).value)
        elif lexer.peek().kind is TokenKind.MINUS:
            lexer.next()
            const = -int(lexer.expect(TokenKind.NUMBER).value)
        return TemporalTerm(var, const)
    raise ParseError("expected a temporal term, found %s" % token, token.line, token.column)


_OP_TOKENS = {
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.EQ: "=",
    TokenKind.NE: "!=",
}


def parse_comparison(lexer, var_names):
    """Parse one constraint atom, e.g. ``T2 = T1 + 60`` or ``T1 >= 0``.

    ``var_names`` maps variable spellings (e.g. ``"T1"``) to 0-based
    column indices.
    """
    left = _parse_term(lexer, var_names)
    token = lexer.next()
    op = _OP_TOKENS.get(token.kind)
    if op is None:
        raise ParseError(
            "expected a comparison operator, found %s" % token, token.line, token.column
        )
    right = _parse_term(lexer, var_names)
    return Comparison(op, left, right)


def parse_constraint_text(text, arity, names=None):
    """Parse a conjunction of atoms separated by ``and``, ``&`` or ``,``.

    The default variable names are ``T1 … T<arity>``.

    >>> [str(a) for a in parse_constraint_text("T1 >= 0, T2 = T1 + 60", 2)]
    ['T1 >= 0', 'T2 = T1 + 60']
    """
    if names is None:
        names = {"T%d" % (k + 1): k for k in range(arity)}
    lexer = Lexer(text)
    atoms = []
    if lexer.at_end():
        return atoms
    while True:
        atoms.append(parse_comparison(lexer, names))
        if lexer.accept(TokenKind.COMMA) or lexer.accept(TokenKind.AMP):
            continue
        if lexer.peek().kind is TokenKind.IDENT and lexer.peek().value in ("and", "And", "AND"):
            lexer.next()
            continue
        break
    if not lexer.at_end():
        lexer.error("unexpected trailing input in constraint")
    return atoms
