"""Helpers for simplifying collections of constrained objects.

Used by the generalized-database layer to keep relations small: a
tuple whose zone is covered by the zones of other tuples with the same
shape contributes nothing to the extension and can be dropped.
"""

from __future__ import annotations


def prune_covered(systems):
    """Drop every ConstraintSystem covered by the union of the others.

    ``systems`` is a list of :class:`ConstraintSystem` over the same
    arity.  Returns a sublist with identical union.  Quadratic in the
    number of systems; intended for the small per-signature groups the
    engine manipulates.
    """
    kept = list(systems)
    changed = True
    while changed:
        changed = False
        for index, candidate in enumerate(kept):
            others = kept[:index] + kept[index + 1 :]
            if others and candidate.implied_by_union(others):
                kept.pop(index)
                changed = True
                break
    return kept


def disjoint_cover(systems):
    """Rewrite a union of zones as a disjoint union.

    Preserves the union exactly; useful when enumerating extensions
    without double counting.
    """
    disjoint = []
    for system in systems:
        pieces = [system]
        for existing in disjoint:
            next_pieces = []
            for piece in pieces:
                next_pieces.extend(piece.minus(existing))
            pieces = next_pieces
            if not pieces:
                break
        disjoint.extend(pieces)
    return disjoint
