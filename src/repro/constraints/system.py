"""Conjunctions of gap-order atoms over the temporal columns of a tuple.

:class:`ConstraintSystem` is the immutable, user-facing wrapper around
a :class:`~repro.constraints.dbm.Dbm` zone: it knows the tuple's
temporal arity, speaks the paper's atom syntax (``T2 = T1 + 60``), and
exposes exactly the operations the generalized-database algebra needs.
"""

from __future__ import annotations

from repro.constraints.atoms import Comparison, TemporalTerm, parse_constraint_text
from repro.constraints.dbm import CONSTRAINT_TABLE, Dbm, INF, intern_dbm


class ConstraintSystem:
    """An immutable zone over the temporal columns ``T1 … Tm``.

    Construct with :meth:`top` (no constraints), :meth:`from_atoms`, or
    :meth:`parse`; combine with :meth:`conjoin`; query with
    :meth:`is_satisfiable`, :meth:`satisfied_by`, :meth:`implies`.

    >>> cs = ConstraintSystem.parse("T1 >= 0, T2 = T1 + 60", 2)
    >>> cs.satisfied_by((5, 65))
    True
    >>> cs.satisfied_by((5, 64))
    False
    """

    __slots__ = ("arity", "_zone")

    def __init__(self, arity, zone=None):
        self.arity = arity
        if zone is None:
            zone = Dbm.unconstrained(arity)
        # Canonical zones are interned process-wide: one shared, closed,
        # never-mutated instance per canonical key (every in-place zone
        # operation below works on a copy).
        self._zone = intern_dbm(zone)

    # -- constructors ---------------------------------------------------

    @classmethod
    def top(cls, arity):
        """The trivial constraint ``true`` over ``arity`` columns."""
        return cls(arity)

    @classmethod
    def bottom(cls, arity):
        """The unsatisfiable constraint ``false``."""
        zone = Dbm.unconstrained(arity)
        zone.add_bound(0, 0, -1)
        return cls(arity, zone)

    @classmethod
    def from_atoms(cls, arity, atoms):
        """Build from an iterable of :class:`Comparison` atoms."""
        zone = Dbm.unconstrained(arity)
        for atom in atoms:
            for (i, j, c) in atom.to_bounds():
                zone.add_bound(i, j, c)
        return cls(arity, zone)

    @classmethod
    def parse(cls, text, arity, names=None):
        """Parse a conjunction such as ``"T1 >= 0 & T2 = T1 + 60"``.

        The spellings ``"true"`` and ``"false"`` (which ``str`` emits
        for trivial and unsatisfiable systems) are also accepted.
        """
        stripped = text.strip()
        if stripped in ("", "true"):
            return cls.top(arity)
        if stripped == "false":
            return cls.bottom(arity)
        return cls.from_atoms(arity, parse_constraint_text(text, arity, names))

    @classmethod
    def equal_to_constant(cls, arity, column, value):
        """The constraint ``T<column+1> = value``."""
        atom = Comparison("=", TemporalTerm(column), TemporalTerm(None, value))
        return cls.from_atoms(arity, [atom])

    # -- structure --------------------------------------------------------

    def zone(self):
        """A defensive copy of the underlying DBM."""
        return self._zone.copy()

    def is_satisfiable(self):
        """True when some integer assignment satisfies the conjunction."""
        return self._zone.is_satisfiable()

    def is_trivial(self):
        """True when the constraint is equivalent to ``true``."""
        return self._zone.is_trivial()

    def satisfied_by(self, values):
        """True when the concrete time vector satisfies the constraints."""
        return self._zone.satisfied_by(values)

    def difference_interval(self, i, j):
        """Feasible interval of ``T(i+1) - T(j+1)`` (0-based columns)."""
        return self._zone.difference_interval(i + 1, j + 1)

    def column_interval(self, i):
        """Feasible interval ``[lo, hi]`` of column ``i`` (0-based)."""
        return self._zone.difference_interval(i + 1, 0)

    # -- algebra -----------------------------------------------------------

    def conjoin(self, other):
        """The conjunction of two systems over the same columns."""
        if other.arity != self.arity:
            raise ValueError("arity mismatch: %d vs %d" % (self.arity, other.arity))
        zone = self._zone.copy()
        zone.conjoin(other._zone)
        return ConstraintSystem(self.arity, zone)

    def conjoin_atoms(self, atoms):
        """Conjoin extra :class:`Comparison` atoms."""
        zone = self._zone.copy()
        for atom in atoms:
            for (i, j, c) in atom.to_bounds():
                zone.add_bound(i, j, c)
        return ConstraintSystem(self.arity, zone)

    def joined(self, other, atoms=()):
        """The fused join constraint: this system over columns
        ``0 … m-1``, ``other`` over columns ``m … m+k-1``, and extra
        ``atoms`` (already indexed in the combined space) conjoined in
        one pass with a single closure — the hot operation of the
        compiled clause plans."""
        arity = self.arity + other.arity
        if not self.is_satisfiable() or not other.is_satisfiable():
            return ConstraintSystem.bottom(arity)
        zone = Dbm.unconstrained(arity)
        for (i, j, c) in self._zone.finite_bounds():
            zone.add_bound(i, j, c)
        shift = self.arity
        for (i, j, c) in other._zone.finite_bounds():
            zone.add_bound(i if i == 0 else i + shift, j if j == 0 else j + shift, c)
        for atom in atoms:
            for (i, j, c) in atom.to_bounds():
                zone.add_bound(i, j, c)
        return ConstraintSystem(arity, zone)

    def project_out(self, column):
        """Existentially quantify a 0-based column; the result has
        arity one less, remaining columns renumbered in order."""
        return ConstraintSystem(self.arity - 1, self._zone.project_out(column + 1))

    def remapped(self, mapping, new_arity):
        """Move columns into a (possibly larger) space.

        ``mapping`` sends each old 0-based column to a new 0-based
        column; new columns not in the image are unconstrained.
        """
        placement = {old + 1: new + 1 for old, new in mapping.items()}
        return ConstraintSystem(new_arity, self._zone.embedded(new_arity, placement))

    def shift_column(self, column, delta):
        """The constraint after column ``column`` advances by ``delta``."""
        return ConstraintSystem(self.arity, self._zone.shift_variable(column + 1, delta))

    def implies(self, other):
        """True when this zone is contained in ``other``'s."""
        if other.arity != self.arity:
            raise ValueError("arity mismatch")
        return other._zone.contains(self._zone)

    def implied_by_union(self, others):
        """True when this zone is covered by the union of the others.

        This is exactly the implication test of the paper's
        *constraint safety* definition (Section 4.3):
        ``constraints(gt) ⇒ constraints(gt_1) ∨ … ∨ constraints(gt_n)``.
        """
        return self._zone.is_subset_of_union([o._zone for o in others])

    def minus(self, other):
        """``self ∧ ¬other`` as a list of disjoint ConstraintSystems."""
        if other.arity != self.arity:
            raise ValueError("arity mismatch")
        return [
            ConstraintSystem(self.arity, piece)
            for piece in self._zone.difference(other._zone)
        ]

    # -- display ------------------------------------------------------------

    def atoms(self):
        """A generating list of :class:`Comparison` atoms (canonical,
        non-redundant modulo equality cliques), suitable for display."""
        if not self.is_satisfiable():
            false_atom = Comparison("<", TemporalTerm(None, 0), TemporalTerm(None, 0))
            return [false_atom]
        bounds = self._zone.generating_bounds()
        atoms = []
        emitted_eq = set()
        pending = dict()
        for (i, j, c) in bounds:
            pending[(i, j)] = c
        for (i, j), c in sorted(pending.items()):
            if (j, i) in pending and pending[(j, i)] == -c:
                # Equality: emit once, from the lower index.
                key = (min(i, j), max(i, j))
                if key in emitted_eq:
                    continue
                emitted_eq.add(key)
                lo, hi = key
                gap = pending[(hi, lo)]
                left = TemporalTerm(None, 0) if hi == 0 else TemporalTerm(hi - 1)
                right = (
                    TemporalTerm(None, gap)
                    if lo == 0
                    else TemporalTerm(lo - 1, gap)
                )
                atoms.append(Comparison("=", left, right))
            else:
                left = TemporalTerm(None, 0) if i == 0 else TemporalTerm(i - 1)
                right = TemporalTerm(None, c) if j == 0 else TemporalTerm(j - 1, c)
                atoms.append(Comparison("<=", left, right))
        return atoms

    # -- serialization -------------------------------------------------------

    def to_json_dict(self):
        """A JSON-safe dict round-tripping through :meth:`from_json_dict`.

        A generating set of bounds is stored (including the canonical
        contradictory bound for unsatisfiable zones); re-closing it
        reproduces the identical canonical matrix, so the round trip is
        bit-exact on :meth:`canonical_key`.
        """
        return {
            "arity": self.arity,
            "bounds": [list(b) for b in self._zone.generating_bounds()],
        }

    @classmethod
    def from_json_dict(cls, payload):
        """Rebuild a system serialized by :meth:`to_json_dict`."""
        zone = Dbm.unconstrained(payload["arity"])
        for i, j, c in payload["bounds"]:
            zone.add_bound(i, j, c)
        return cls(payload["arity"], zone)

    def canonical_key(self):
        """Hashable canonical form."""
        return (self.arity, self._zone.canonical_key())

    def constraint_id(self):
        """A compact dedup key for this system's zone.

        The interned table id (an ``int``) in the common case; the full
        canonical key once the process table has hit its cap.  Two
        systems of equal arity are equal iff their constraint ids are
        equal, so integer compares replace matrix-key hashing in dedup
        paths.
        """
        return CONSTRAINT_TABLE.zone_id(self._zone)

    def __eq__(self, other):
        if not isinstance(other, ConstraintSystem):
            return NotImplemented
        if self._zone is other._zone:  # interned zones share identity
            return self.arity == other.arity
        return self.canonical_key() == other.canonical_key()

    def __hash__(self):
        return hash(self.canonical_key())

    def __str__(self):
        atoms = self.atoms()
        if not atoms:
            return "true"
        return " & ".join(str(a) for a in atoms)

    def __repr__(self):
        return "ConstraintSystem(%d, %s)" % (self.arity, str(self))


def interval_is_bounded(interval):
    """True when an interval from :meth:`difference_interval` is finite
    on both sides."""
    lo, hi = interval
    return lo != -INF and hi != INF
