"""Gap-order (difference) constraints over temporal variables.

The constraints a generalized tuple may carry (paper Section 2.1) are
of the forms ``Ti < Tj + c``, ``Ti = Tj + c``, ``Ti < c``, ``Ti = c``
and ``c < Ti``.  A conjunction of such atoms over integer variables is
exactly a *zone*: a difference-bound matrix (DBM).  Over the integers
strict bounds tighten exactly (``x - y < c`` iff ``x - y <= c - 1``),
so every operation this package provides — satisfiability, canonical
closure, variable projection, zone difference, containment in a union
of zones — is **exact**, which is what makes the safety tests of
Section 4.3 decidable.
"""

from repro.constraints.atoms import Comparison, TemporalTerm, parse_comparison
from repro.constraints.dbm import Dbm, INF
from repro.constraints.system import ConstraintSystem

__all__ = [
    "Comparison",
    "TemporalTerm",
    "parse_comparison",
    "Dbm",
    "INF",
    "ConstraintSystem",
]
