"""Translation of TL1 Templog into Datalog1S (paper Sections 2.2–2.3).

The paper treats Templog (via its TL1 fragment) and the language of
Chomicki and Imieliński as notational variants; the translation is the
obvious one:

* every Templog predicate gains one explicit temporal argument;
* ``○^k p`` becomes ``p(t + k; …)`` (or ``p(k; …)`` in an unboxed
  clause, which is asserted at time 0);
* a boxed clause becomes a rule over the clause variable ``t``; an
  unboxed clause is instantiated at time 0 only.

The minimal Templog model is then the Datalog1S minimal model of the
translation — eventually periodic, computed in closed form by
:mod:`repro.datalog1s.evaluation`.
"""

from __future__ import annotations

from repro.core.ast import Clause, PredicateAtom, Program, TemporalTerm
from repro.datalog1s.ast import Datalog1SProgram
from repro.datalog1s.evaluation import minimal_model
from repro.templog.tl1 import is_tl1, to_tl1
from repro.util.errors import BudgetExceededError


def _atom_to_datalog(atom, boxed):
    if boxed:
        term = TemporalTerm("t", atom.shift)
    else:
        term = TemporalTerm(None, atom.shift)
    return PredicateAtom(atom.predicate, (term,), atom.data_args)


def templog_to_datalog1s(program):
    """Translate a Templog program (any — ◇ is first reduced away via
    TL1) into an equivalent Datalog1S program."""
    if not is_tl1(program):
        program = to_tl1(program)
    clauses = []
    for clause in program.clauses:
        head = _atom_to_datalog(clause.head, clause.boxed)
        body = tuple(
            _atom_to_datalog(element, clause.boxed) for element in clause.body
        )
        clauses.append(Clause(head, body))
    return Datalog1SProgram(Program(tuple(clauses)))


def templog_minimal_model(program, edb=None, max_horizon=200_000, budget=None):
    """The minimal Templog model, as a Datalog1S closed-form model.

    The auxiliary ``_ev*`` predicates introduced by the TL1 reduction
    are stripped from the result.  ``budget`` is forwarded to the
    Datalog1S fixpoint; on
    :class:`~repro.util.errors.BudgetExceededError` the attached
    partial model is likewise stripped of the auxiliaries.
    """
    translated = templog_to_datalog1s(program)
    try:
        model = minimal_model(
            translated, edb=edb, max_horizon=max_horizon, budget=budget
        )
    except BudgetExceededError as error:
        if error.partial_model is not None:
            error.partial_model = _visible_part(error.partial_model)
        raise
    return _visible_part(model)


def _visible_part(model):
    visible = {
        predicate
        for predicate in model.predicates()
        if not predicate.startswith("_ev")
    }
    return model.restricted_to(visible)
