"""Templog abstract syntax and parser.

Grammar (paper Section 2.3 restrictions built in)::

    program  := clause*
    clause   := ['always'] '(' inner ')' '.'  |  inner '.'
    inner    := head ['<-' body]
    head     := 'next^'k atom  |  atom
    body     := element (',' element)*
    element  := 'next^'k atom
              | atom
              | ('sometime' | '<>') '(' body ')'

``next^3 p(x)`` may also be written ``next next next p(x)``; ``always``
may be written ``[]`` and ``sometime`` as ``<>`` or ``eventually``.
Atoms carry only data arguments (time is implicit — that is the point
of Templog).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import DataTerm
from repro.util.errors import ParseError
from repro.util.lexing import Lexer, TokenKind


@dataclass(frozen=True)
class TemplogAtom:
    """``p(d_1, …, d_l)`` under ``next^shift``."""

    predicate: str
    data_args: tuple = ()
    shift: int = 0

    def shifted(self, k):
        """The atom under ``k`` more applications of ○."""
        return TemplogAtom(self.predicate, self.data_args, self.shift + k)

    def __str__(self):
        args = ", ".join(str(d) for d in self.data_args)
        body = "%s(%s)" % (self.predicate, args) if args else self.predicate
        if self.shift:
            return "next^%d %s" % (self.shift, body)
        return body


@dataclass(frozen=True)
class Diamond:
    """``◇(conjunction)`` — only legal in clause bodies."""

    elements: tuple  # TemplogAtom | Diamond
    shift: int = 0

    def shifted(self, k):
        return Diamond(self.elements, self.shift + k)

    def __str__(self):
        inner = ", ".join(str(e) for e in self.elements)
        body = "sometime(%s)" % inner
        if self.shift:
            return "next^%d %s" % (self.shift, body)
        return body


@dataclass(frozen=True)
class TemplogClause:
    """``[always] head <- body``.

    ``boxed`` records an explicit ``always``; an unboxed clause is
    asserted at time 0 only.
    """

    head: TemplogAtom
    body: tuple = ()
    boxed: bool = False

    def __str__(self):
        inner = str(self.head)
        if self.body:
            inner = "%s <- %s" % (inner, ", ".join(str(e) for e in self.body))
        if self.boxed:
            return "always (%s)." % inner
        return "%s." % inner


@dataclass(frozen=True)
class TemplogProgram:
    """A finite set of Templog clauses."""

    clauses: tuple

    def predicates(self):
        """All predicate names with their data arities."""
        shapes = {}

        def visit_atom(atom):
            arity = len(atom.data_args)
            known = shapes.setdefault(atom.predicate, arity)
            if known != arity:
                raise ParseError(
                    "predicate %r used with data arities %d and %d"
                    % (atom.predicate, known, arity)
                )

        def visit(element):
            if isinstance(element, Diamond):
                for inner in element.elements:
                    visit(inner)
            else:
                visit_atom(element)

        for clause in self.clauses:
            visit_atom(clause.head)
            for element in clause.body:
                visit(element)
        return shapes

    def __str__(self):
        return "\n".join(str(clause) for clause in self.clauses)

    def __iter__(self):
        return iter(self.clauses)

    def __len__(self):
        return len(self.clauses)


_ALWAYS_WORDS = ("always",)
_DIAMOND_WORDS = ("sometime", "eventually")


def _is_data_variable(name):
    return name[0].isupper() or name[0] == "_"


def _parse_next_prefix(lexer):
    shift = 0
    while True:
        token = lexer.peek()
        if token.kind is TokenKind.IDENT and token.value == "next":
            lexer.next()
            if lexer.accept(TokenKind.CARET):
                shift += int(lexer.expect(TokenKind.NUMBER).value)
            else:
                shift += 1
        else:
            return shift


def _parse_data_term(lexer):
    token = lexer.next()
    if token.kind is TokenKind.STRING:
        return DataTerm.constant(token.value)
    if token.kind is TokenKind.NUMBER:
        return DataTerm.constant(int(token.value))
    if token.kind is TokenKind.IDENT:
        if _is_data_variable(token.value):
            return DataTerm.variable(token.value)
        return DataTerm.constant(token.value)
    raise ParseError(
        "expected a data term, found %s" % token, token.line, token.column
    )


def _parse_atom(lexer, shift):
    name = lexer.expect(TokenKind.IDENT, "a predicate name")
    args = []
    if lexer.accept(TokenKind.LPAREN):
        if lexer.peek().kind is not TokenKind.RPAREN:
            while True:
                args.append(_parse_data_term(lexer))
                if lexer.accept(TokenKind.COMMA):
                    continue
                break
        lexer.expect(TokenKind.RPAREN)
    return TemplogAtom(name.value, tuple(args), shift)


def _parse_body_element(lexer):
    shift = _parse_next_prefix(lexer)
    token = lexer.peek()
    if token.kind is TokenKind.LT:
        # '<>' spelled as two tokens
        lexer.next()
        lexer.expect(TokenKind.GT, "'>' completing '<>'")
        return _parse_diamond_body(lexer, shift)
    if token.kind is TokenKind.IDENT and token.value in _DIAMOND_WORDS:
        lexer.next()
        return _parse_diamond_body(lexer, shift)
    return _parse_atom(lexer, shift)


def _parse_diamond_body(lexer, shift):
    lexer.expect(TokenKind.LPAREN)
    elements = [_parse_body_element(lexer)]
    while lexer.accept(TokenKind.COMMA):
        elements.append(_parse_body_element(lexer))
    lexer.expect(TokenKind.RPAREN)
    return Diamond(tuple(elements), shift)


def _parse_inner(lexer, boxed):
    shift = _parse_next_prefix(lexer)
    head = _parse_atom(lexer, shift)
    body = []
    if lexer.accept(TokenKind.ARROW):
        if lexer.peek().kind not in (
            TokenKind.PERIOD,
            TokenKind.RPAREN,
            TokenKind.EOF,
        ):
            while True:
                body.append(_parse_body_element(lexer))
                if lexer.accept(TokenKind.COMMA):
                    continue
                break
    return TemplogClause(head, tuple(body), boxed)


def _parse_clause(lexer):
    boxed = False
    token = lexer.peek()
    if token.kind is TokenKind.IDENT and token.value in _ALWAYS_WORDS:
        lexer.next()
        boxed = True
    elif token.kind is TokenKind.LBRACKET:
        lexer.next()
        lexer.expect(TokenKind.RBRACKET, "']' completing '[]'")
        boxed = True
    if boxed:
        lexer.expect(TokenKind.LPAREN)
        clause = _parse_inner(lexer, boxed=True)
        lexer.expect(TokenKind.RPAREN)
    else:
        clause = _parse_inner(lexer, boxed=False)
    lexer.expect(TokenKind.PERIOD)
    return clause


def parse_templog(text):
    """Parse Templog source text into a :class:`TemplogProgram`."""
    lexer = Lexer(text)
    clauses = []
    while not lexer.at_end():
        clauses.append(_parse_clause(lexer))
    program = TemplogProgram(tuple(clauses))
    program.predicates()  # arity consistency check
    return program
