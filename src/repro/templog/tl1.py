"""Reduction of Templog to the TL1 fragment.

The paper (Section 2.3) cites Baudinet's result that Templog is
equivalent to its fragment TL1, in which ``○`` is the only temporal
operator allowed **within** clauses (``□`` still wraps whole clauses).
The reduction replaces every body occurrence of ``◇φ`` with a fresh
auxiliary predicate ``e_φ`` defined by the two always-clauses::

    always ( e_φ <- φ̃ ).        # ◇φ holds if φ holds now
    always ( e_φ <- next e_φ ).  # … or at some later instant

where ``φ̃`` is the (recursively reduced) conjunction.  The auxiliary
predicate carries the data variables of ``φ`` so bindings flow through.
"""

from __future__ import annotations

from repro.templog.ast import Diamond, TemplogAtom, TemplogClause, TemplogProgram


def _data_variables(element):
    if isinstance(element, Diamond):
        names = []
        for inner in element.elements:
            for name in _data_variables(inner):
                if name not in names:
                    names.append(name)
        return names
    return [term.name for term in element.data_args if term.is_variable()]


class _Reducer:
    def __init__(self):
        self.counter = 0
        self.new_clauses = []

    def reduce_element(self, element):
        if not isinstance(element, Diamond):
            return element
        reduced_inner = tuple(
            self.reduce_element(inner) for inner in element.elements
        )
        self.counter += 1
        name = "_ev%d" % self.counter
        from repro.core.ast import DataTerm

        variables = []
        for inner in reduced_inner:
            for var in _data_variables(inner):
                if var not in variables:
                    variables.append(var)
        args = tuple(DataTerm.variable(v) for v in variables)
        head = TemplogAtom(name, args, 0)
        # e_φ <- φ̃
        self.new_clauses.append(
            TemplogClause(head, reduced_inner, boxed=True)
        )
        # e_φ <- ○ e_φ
        self.new_clauses.append(
            TemplogClause(head, (head.shifted(1),), boxed=True)
        )
        return TemplogAtom(name, args, element.shift)

    def reduce_clause(self, clause):
        body = tuple(self.reduce_element(element) for element in clause.body)
        return TemplogClause(clause.head, body, clause.boxed)


def to_tl1(program):
    """Eliminate every ◇ of a Templog program, returning an equivalent
    TL1 program (only ○ inside clauses)."""
    reducer = _Reducer()
    clauses = [reducer.reduce_clause(clause) for clause in program.clauses]
    return TemplogProgram(tuple(clauses) + tuple(reducer.new_clauses))


def is_tl1(program):
    """True when no clause body contains a ◇."""

    def flat(element):
        return not isinstance(element, Diamond)

    return all(
        all(flat(element) for element in clause.body)
        for clause in program.clauses
    )
