"""Templog as a query language (paper Sections 1, 2.3).

A Templog *goal* is what may appear in a clause body: a conjunction of
atoms under ``○^k`` and ``◇``.  Given a closed-form minimal model, a
goal evaluates compositionally to the eventually periodic set of time
points at which it holds:

* an atom under ``○^k`` holds at ``t`` iff the predicate holds at
  ``t + k`` — a backward shift of its extension;
* a conjunction is an intersection;
* ``◇φ`` holds at ``t`` iff φ holds at some ``t' >= t`` — the
  up-closure, which is exactly computable on eventually periodic sets.

A yes/no Templog query is a goal read at time 0 — the query
expressiveness the paper characterizes as the finitely regular
ω-languages.
"""

from __future__ import annotations

from repro.plan.goal import GoalPlan
from repro.templog.ast import Diamond, TemplogAtom, parse_templog
from repro.util.errors import EvaluationError


def evaluate_goal(model, elements, budget=None):
    """The set of time points at which a conjunction of body elements
    holds in a closed-form model.

    ``model`` is a :class:`repro.datalog1s.evaluation.Model1S` (as
    returned by :func:`repro.templog.translate.templog_minimal_model`);
    ``elements`` is an iterable of :class:`TemplogAtom` / ``Diamond``.
    Data arguments of atoms must be ground (constants).

    ``budget`` is an optional
    :class:`~repro.runtime.budget.EvaluationBudget` whose wall-clock
    deadline is checked between elements, raising
    :class:`~repro.util.errors.BudgetExceededError`.
    """
    meter = budget.start() if budget is not None else None
    return _evaluate_conjunction(model, elements, meter)


def _evaluate_conjunction(model, elements, meter):
    plan = GoalPlan(elements, Diamond)

    def evaluate_element(element):
        if meter is not None:
            meter.check_deadline("goal element")
        return _evaluate_element(model, element, meter)

    return plan.evaluate(evaluate_element)


def _evaluate_element(model, element, meter=None):
    if isinstance(element, Diamond):
        inner = _evaluate_conjunction(model, element.elements, meter)
        return inner.up_closure().shift_back(element.shift)
    if isinstance(element, TemplogAtom):
        data = []
        for term in element.data_args:
            if term.is_variable():
                raise EvaluationError(
                    "goal atoms must be ground; %s has the variable %s"
                    % (element, term.name)
                )
            data.append(term.value)
        extension = model.set_of(element.predicate, tuple(data))
        return extension.shift_back(element.shift)
    raise TypeError("unexpected goal element %r" % (element,))


def holds_at(model, elements, t, budget=None):
    """Truth of a goal at one time point."""
    return t in evaluate_goal(model, elements, budget=budget)


def yes_no(model, elements, budget=None):
    """The Templog yes/no query: does the goal hold at time 0?"""
    return holds_at(model, elements, 0, budget=budget)


def parse_goal(text):
    """Parse a goal from body syntax, e.g.
    ``"train_leaves(liege, brussels), <>(fault)"``.

    Implemented by parsing ``_goal <- <text>.`` and taking the body.
    """
    program = parse_templog("_goal <- %s." % text)
    return program.clauses[0].body
