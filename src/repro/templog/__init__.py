"""Templog: temporal logic programming (paper Section 2.3).

Templog extends logic programming with the temporal operators of
linear temporal logic over ℕ: ``○`` (next), ``□`` (always) and ``◇``
(eventually), with the paper's syntactic discipline — ``○`` anywhere,
``□`` only on clause heads or around whole clauses, ``◇`` only in
bodies (possibly over a conjunction).

The paper's Example 2.3::

    next^5 train_leaves(liege, brussels).
    always (next^40 train_leaves(X, Y) <- train_leaves(X, Y)).
    always (next^60 train_arrives(X, Y) <- train_leaves(X, Y)).

Modules:

* :mod:`repro.templog.ast` — clause syntax and the parser;
* :mod:`repro.templog.tl1` — the reduction to the TL1 fragment
  (``○`` as the only operator inside clauses): every body ``◇φ``
  becomes an auxiliary predicate with the two clauses
  ``aux <- φ`` and ``aux <- ○aux``;
* :mod:`repro.templog.translate` — the translation of TL1 into
  Datalog1S (the [Bau89] equivalence the paper leans on), and minimal
  model computation by way of :mod:`repro.datalog1s`.
"""

from repro.templog.ast import (
    TemplogAtom,
    TemplogClause,
    TemplogProgram,
    Diamond,
    parse_templog,
)
from repro.templog.tl1 import to_tl1
from repro.templog.translate import templog_minimal_model, templog_to_datalog1s
from repro.templog.query import evaluate_goal, parse_goal, yes_no

__all__ = [
    "evaluate_goal",
    "parse_goal",
    "yes_no",
    "TemplogAtom",
    "TemplogClause",
    "TemplogProgram",
    "Diamond",
    "parse_templog",
    "to_tl1",
    "templog_to_datalog1s",
    "templog_minimal_model",
]
