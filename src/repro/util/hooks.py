"""Process-wide instrumentation hooks: fault injection and the event bus.

Two mechanisms share this module because they share a design: the
evaluation hot paths announce named moments of execution, and by
default that announcement costs a single global read plus a falsy
check — effectively free.

:func:`fault_point` is the original single-purpose mechanism: tests
install a hook (see :class:`repro.runtime.faults.FaultPlan`) to inject
deterministic exceptions and delays at exactly those sites and prove
the engine's recovery paths work.

:func:`emit` generalizes it into a typed event bus for observability
(:mod:`repro.obs`): subscribers (a
:class:`~repro.obs.trace.TraceRecorder`, a metrics bridge, a profile
collector) receive ``(kind, fields)`` events for engine round
boundaries, per-stratum progress, plan operator invocations with
cardinalities, checkpoint writes, budget charges, and the service job
lifecycle.  Emitting sites guard with :data:`SINKS` (or
:func:`active`) so that building the event payload is skipped entirely
when nobody is listening — the hot paths stay as cheap as
``fault_point`` with no fault plan installed.

Event kinds are dotted names; the canonical vocabulary is

====================  ==================================================
``engine.run``        one per run: strategy, safety, strata, outcome
``engine.stratum``    stratum entered / closed
``engine.round``      one per T_GP round: derived/accepted counts, timing
``plan.operator``     one per operator invocation: op, predicate,
                      input/output cardinalities, duration
``kernel.batch``      one per operator invocation under the columnar
                      kernel: batch size, template-cache hits, and the
                      join fast path taken (hash / fused-closure /
                      product; carrier / projection for those steps)
``checkpoint.write``  one per snapshot persisted: path, round, duration
``budget.charge``     one per budget charge: dimension, amount, total
``coverage.cache``    one per coverage sweep: round, stratum, enabled,
                      and the sweep's cache hit / miss counts
``service.job``       job lifecycle: submit / reject / dequeue /
                      attempt / outcome, with retry and degradation
                      annotations
``shard.worker``      shard-pool supervision: a worker lost (crash /
                      hang / dispatch failure, with exit code), a
                      replacement respawned, a task slice retried
``shard.dispatch``    shard-pool transport ledger: one per stratum
                      broadcast and one per round, with the transport
                      (shm / pipe), worker count, and the pipe /
                      shared-memory byte and segment totals moved in
                      that phase
``shard.degraded``    a parallel run lost its whole shard pool beyond
                      healing and downshifted to sequential: reason,
                      restarts used, tasks still pending
``edb.txn``           one per committed EDB transaction: tx id, op
                      counts, WAL bytes appended
``edb.recover``       one per store open: checkpoint tx, transactions
                      replayed from the WAL, torn bytes truncated
``maintain.delta``    one per materialized-model refresh: delta sizes,
                      rounds, and whether (and why) the incremental
                      path degraded to a from-scratch recompute
====================  ==================================================

Every event dict carries at least ``phase`` (begin/end or a lifecycle
verb) where the kind is not atomic.  Subscribers must never raise: the
bus is wrapped around hot paths and a crashing observer must not take
the computation down, so :func:`emit` swallows subscriber exceptions.
"""

from __future__ import annotations

import threading

#: The currently installed fault hook, or None.  Managed by
#: :meth:`repro.runtime.faults.FaultPlan.installed`; not intended to be
#: assigned directly.
FAULT_HOOK = None

#: The installed event subscribers, as an immutable tuple swapped
#: atomically under :data:`_SINK_LOCK`.  Emitting sites read this once
#: and skip all payload construction when it is empty — check
#: ``hooks.SINKS`` (truthiness) before building event fields.
SINKS = ()

_SINK_LOCK = threading.Lock()


def fault_point(site):
    """Announce that execution reached the named instrumentation site.

    A no-op unless a fault hook is installed; the hook may sleep (delay
    injection) or raise (fault injection).
    """
    hook = FAULT_HOOK
    if hook is not None:
        hook(site)


def active():
    """True when at least one event subscriber is installed.

    Hot paths use this (or read :data:`SINKS` directly) to skip the
    cost of assembling event payloads entirely.
    """
    return bool(SINKS)


def emit(kind, fields):
    """Deliver one event to every subscriber.

    ``fields`` is a plain dict the emitting site owns; subscribers must
    treat it as read-only (sinks that buffer events should copy).  A
    subscriber that raises is ignored — observability must never alter
    the observed computation.
    """
    for sink in SINKS:
        try:
            sink(kind, fields)
        except Exception:
            pass


def subscribe(sink):
    """Install ``sink`` (a ``callable(kind, fields)``) on the bus."""
    global SINKS
    with _SINK_LOCK:
        if sink not in SINKS:
            SINKS = SINKS + (sink,)
    return sink


def unsubscribe(sink):
    """Remove a previously installed subscriber (idempotent)."""
    global SINKS
    with _SINK_LOCK:
        SINKS = tuple(s for s in SINKS if s is not sink)


class subscribed:
    """Context manager form: ``with subscribed(recorder): …``."""

    def __init__(self, *sinks):
        self.sinks = sinks

    def __enter__(self):
        for sink in self.sinks:
            subscribe(sink)
        return self.sinks[0] if len(self.sinks) == 1 else self.sinks

    def __exit__(self, *exc_info):
        for sink in self.sinks:
            unsubscribe(sink)
        return False
