"""Process-wide instrumentation hooks.

The evaluation hot paths call :func:`fault_point` at a handful of named
sites (clause evaluation, DBM canonicalization, coverage testing,
checkpoint writing, round boundaries).  By default the call is a single
global read plus a ``None`` check — effectively free.  Installing a
hook (see :class:`repro.runtime.faults.FaultPlan`) lets tests inject
deterministic exceptions and delays at exactly those sites to prove the
engine's recovery paths work.
"""

from __future__ import annotations

#: The currently installed fault hook, or None.  Managed by
#: :meth:`repro.runtime.faults.FaultPlan.installed`; not intended to be
#: assigned directly.
FAULT_HOOK = None


def fault_point(site):
    """Announce that execution reached the named instrumentation site.

    A no-op unless a fault hook is installed; the hook may sleep (delay
    injection) or raise (fault injection).
    """
    hook = FAULT_HOOK
    if hook is not None:
        hook(site)
