"""A small hand-written tokenizer shared by all surface languages.

The languages in this library are deliberately close in concrete
syntax (identifiers, integers, quoted strings, arithmetic on temporal
terms, clause arrows), so a single tokenizer serves all of them.  Each
parser decides which identifiers are keywords.

Example
-------
>>> lx = Lexer("p(t1 + 2; X) <- q(t1; X), t1 < 5.")
>>> lx.next().value
'p'
>>> lx.next().kind is TokenKind.LPAREN
True
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ParseError


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`Lexer`."""

    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMICOLON = ";"
    PERIOD = "."
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    CARET = "^"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "="
    NE = "!="
    ARROW = "<-"
    PIPE = "|"
    AMP = "&"
    COLON = ":"
    EOF = "end of input"


_SINGLE_CHARS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ".": TokenKind.PERIOD,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "^": TokenKind.CARET,
    ">": TokenKind.GT,
    "=": TokenKind.EQ,
    "|": TokenKind.PIPE,
    "&": TokenKind.AMP,
    ":": TokenKind.COLON,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def __str__(self):
        if self.kind in (TokenKind.IDENT, TokenKind.NUMBER, TokenKind.STRING):
            return "%s %r" % (self.kind.value, self.value)
        return repr(self.kind.value)


class Lexer:
    """Tokenizer with one-token lookahead.

    Comments run from ``%`` or ``#`` to end of line.  Numbers are
    unsigned decimal integers; unary minus is handled by the parsers so
    that expressions such as ``t - 3`` lex consistently.
    """

    def __init__(self, text):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1
        self._peeked = None

    def peek(self):
        """Return the next token without consuming it."""
        if self._peeked is None:
            self._peeked = self._scan()
        return self._peeked

    def next(self):
        """Consume and return the next token."""
        token = self.peek()
        self._peeked = None
        return token

    def expect(self, kind, description=None):
        """Consume the next token, requiring it to be of ``kind``."""
        token = self.next()
        if token.kind is not kind:
            wanted = description or kind.value
            raise ParseError(
                "expected %s but found %s" % (wanted, token),
                token.line,
                token.column,
            )
        return token

    def expect_keyword(self, word):
        """Consume the next token, requiring the identifier ``word``."""
        token = self.next()
        if token.kind is not TokenKind.IDENT or token.value != word:
            raise ParseError(
                "expected %r but found %s" % (word, token), token.line, token.column
            )
        return token

    def accept(self, kind):
        """Consume and return the next token if it has ``kind``, else None."""
        if self.peek().kind is kind:
            return self.next()
        return None

    def accept_keyword(self, word):
        """Consume the identifier ``word`` if it is next, else None."""
        token = self.peek()
        if token.kind is TokenKind.IDENT and token.value == word:
            return self.next()
        return None

    def at_end(self):
        """True when all input has been consumed."""
        return self.peek().kind is TokenKind.EOF

    def error(self, message):
        """Raise a :class:`ParseError` at the current position."""
        token = self.peek()
        raise ParseError(message, token.line, token.column)

    # -- internals ---------------------------------------------------

    def _advance(self):
        char = self._text[self._pos]
        self._pos += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _skip_whitespace_and_comments(self):
        while self._pos < len(self._text):
            char = self._text[self._pos]
            if char in " \t\r\n":
                self._advance()
            elif char in "%#":
                while self._pos < len(self._text) and self._text[self._pos] != "\n":
                    self._advance()
            else:
                return

    def _scan(self):
        self._skip_whitespace_and_comments()
        line, column = self._line, self._column
        if self._pos >= len(self._text):
            return Token(TokenKind.EOF, "", line, column)
        char = self._text[self._pos]
        if char.isalpha() or char == "_":
            return self._scan_ident(line, column)
        if char.isdigit():
            return self._scan_number(line, column)
        if char == '"':
            return self._scan_string(line, column)
        if char == "<":
            self._advance()
            if self._pos < len(self._text) and self._text[self._pos] == "-":
                self._advance()
                return Token(TokenKind.ARROW, "<-", line, column)
            if self._pos < len(self._text) and self._text[self._pos] == "=":
                self._advance()
                return Token(TokenKind.LE, "<=", line, column)
            return Token(TokenKind.LT, "<", line, column)
        if char == ">":
            self._advance()
            if self._pos < len(self._text) and self._text[self._pos] == "=":
                self._advance()
                return Token(TokenKind.GE, ">=", line, column)
            return Token(TokenKind.GT, ">", line, column)
        if char == "!":
            self._advance()
            if self._pos < len(self._text) and self._text[self._pos] == "=":
                self._advance()
                return Token(TokenKind.NE, "!=", line, column)
            raise ParseError("unexpected character '!'", line, column)
        if char == ":":
            self._advance()
            if self._pos < len(self._text) and self._text[self._pos] == "-":
                self._advance()
                return Token(TokenKind.ARROW, ":-", line, column)
            return Token(TokenKind.COLON, ":", line, column)
        if char in _SINGLE_CHARS:
            self._advance()
            return Token(_SINGLE_CHARS[char], char, line, column)
        raise ParseError("unexpected character %r" % char, line, column)

    def _scan_ident(self, line, column):
        start = self._pos
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum() or self._text[self._pos] == "_"
        ):
            self._advance()
        return Token(TokenKind.IDENT, self._text[start : self._pos], line, column)

    def _scan_number(self, line, column):
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos].isdigit():
            self._advance()
        return Token(TokenKind.NUMBER, self._text[start : self._pos], line, column)

    def _scan_string(self, line, column):
        self._advance()  # opening quote
        chars = []
        while True:
            if self._pos >= len(self._text):
                raise ParseError("unterminated string literal", line, column)
            char = self._advance()
            if char == '"':
                break
            if char == "\\":
                if self._pos >= len(self._text):
                    raise ParseError("unterminated string literal", line, column)
                chars.append(self._advance())
            else:
                chars.append(char)
        return Token(TokenKind.STRING, "".join(chars), line, column)
