"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so applications can
catch everything raised by this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ParseError(ReproError):
    """A surface-language text could not be parsed.

    Carries the source position so front ends can point at the
    offending token.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line %d, column %d: %s" % (line, column, message)
        super().__init__(message)


class SchemaError(ReproError):
    """A relation, atom, or tuple does not match its declared schema."""


class EvaluationError(ReproError):
    """A query or program could not be evaluated.

    Raised, e.g., when the bottom-up evaluation of a deductive program
    exhausts its give-up budget without reaching constraint safety
    (Section 4.3 of the paper), or when an FO query is not range
    restricted.
    """


class GiveUpError(EvaluationError):
    """Bottom-up evaluation reached free-extension safety but not
    constraint safety within the configured patience budget.

    The paper (Section 4.3) recommends giving up in exactly this
    situation: Theorem 4.2 guarantees free-extension safety is always
    reached, but constraint safety — the actual termination criterion
    of Theorem 4.3 — may never hold.  The partially computed model is
    attached so callers can inspect how far evaluation got.
    """

    def __init__(self, message, partial_model=None, stats=None):
        super().__init__(message)
        self.partial_model = partial_model
        self.stats = stats
