"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so applications can
catch everything raised by this package with a single ``except``.

Errors raised *during* a bottom-up evaluation additionally derive from
:class:`PartialResultError`: they carry the partially computed model
and the evaluation statistics so callers can degrade gracefully — the
paper's Section 4.3 give-up argument (:class:`GiveUpError`), a resource
budget running out (:class:`BudgetExceededError`), or an unexpected
crash mid-fixpoint (:class:`EvaluationAbortedError`) all leave the
caller with a usable, queryable partial interpretation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ParseError(ReproError):
    """A surface-language text could not be parsed.

    Carries the source position so front ends can point at the
    offending token.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line %d, column %d: %s" % (line, column, message)
        super().__init__(message)


class SchemaError(ReproError):
    """A relation, atom, or tuple does not match its declared schema."""


class EvaluationError(ReproError):
    """A query or program could not be evaluated.

    Raised, e.g., when the bottom-up evaluation of a deductive program
    exhausts its give-up budget without reaching constraint safety
    (Section 4.3 of the paper), or when an FO query is not range
    restricted.
    """


class PartialResultError(EvaluationError):
    """An evaluation stopped early but produced a usable partial result.

    ``partial_model`` is the interpretation computed up to the stop
    (``None`` only when evaluation stopped before anything could be
    built); ``stats`` the bookkeeping accumulated so far.  The partial
    model is monotonically below the intended model (bottom-up
    evaluation only ever adds tuples), so every answer it gives is
    sound — it may merely be incomplete.
    """

    def __init__(self, message, partial_model=None, stats=None):
        super().__init__(message)
        self.partial_model = partial_model
        self.stats = stats


class GiveUpError(PartialResultError):
    """Bottom-up evaluation reached free-extension safety but not
    constraint safety within the configured patience budget.

    The paper (Section 4.3) recommends giving up in exactly this
    situation: Theorem 4.2 guarantees free-extension safety is always
    reached, but constraint safety — the actual termination criterion
    of Theorem 4.3 — may never hold.  The partially computed model is
    attached so callers can inspect how far evaluation got.
    """


class BudgetExceededError(PartialResultError):
    """A hard resource budget ran out before evaluation finished.

    Raised cooperatively by the fixpoint loops when an
    :class:`~repro.runtime.budget.EvaluationBudget` limit (wall-clock
    deadline, round cap, accepted-tuple cap, derived-tuple work cap)
    trips.  ``limit`` names the budget dimension that was exceeded.
    """

    def __init__(self, message, partial_model=None, stats=None, limit=None):
        super().__init__(message, partial_model=partial_model, stats=stats)
        self.limit = limit


class EvaluationAbortedError(PartialResultError):
    """An unexpected failure interrupted the fixpoint mid-flight.

    The engine wraps any exception escaping a T_GP round (an injected
    fault, an I/O failure while writing a checkpoint, a genuine bug) so
    that the caller still receives a typed error carrying the partial
    model computed before the crash.  The original exception is
    available as ``__cause__``.
    """


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or belongs to a
    different program/configuration than the resuming engine.

    ``path`` and ``offset`` (byte offset of the failure inside the
    file, when known) locate the damage for operators.
    """

    def __init__(self, message, path=None, offset=None):
        self.path = path
        self.offset = offset
        if path is not None:
            where = str(path)
            if offset is not None:
                where = "%s at byte %d" % (where, offset)
            message = "%s (%s)" % (message, where)
        super().__init__(message)


class EdbError(ReproError):
    """Base class of errors raised by the durable EDB layer
    (:mod:`repro.edb`)."""


class WalError(EdbError):
    """The write-ahead log could not be read or written."""


class WalCorruptError(WalError):
    """A WAL segment holds a record that fails its CRC or framing
    check *before* the final record — damage that torn-tail
    truncation cannot explain, so the store refuses to open rather
    than silently dropping committed transactions.

    ``path`` and ``offset`` locate the first bad byte.
    """

    def __init__(self, message, path=None, offset=None):
        self.path = path
        self.offset = offset
        if path is not None:
            where = str(path)
            if offset is not None:
                where = "%s at byte %d" % (where, offset)
            message = "%s (%s)" % (message, where)
        super().__init__(message)


class TransactionError(EdbError):
    """A transaction batch was rejected before anything was written:
    an op referencing an undeclared relation, a retract matching no
    live fact, or a malformed op object.  The store is unchanged."""


class ServiceError(ReproError):
    """Base class of errors raised by the query service layer
    (:mod:`repro.service`)."""


class OverloadedError(ServiceError):
    """The service shed a submission because its admission queue is
    full.

    Load shedding is explicit and typed — a caller that submits into a
    saturated service gets this error immediately instead of blocking
    behind an unbounded backlog.  ``queue_limit`` records the bound
    that was hit.
    """

    def __init__(self, message, queue_limit=None):
        super().__init__(message)
        self.queue_limit = queue_limit


class CircuitOpenError(ServiceError):
    """The per-program circuit breaker is open for this job's program.

    A program that keeps failing terminally trips its breaker; further
    jobs for the same program are rejected without being evaluated
    until the cooldown elapses and a half-open probe succeeds.
    ``program_key`` identifies the tripped program.
    """

    def __init__(self, message, program_key=None):
        super().__init__(message)
        self.program_key = program_key


class WorkerDiedError(ServiceError):
    """A service worker died (or was declared dead by the supervisor)
    while holding a job.

    The supervisor treats this as transient: the job is requeued with
    the dead worker excluded and a replacement worker is started.
    """
