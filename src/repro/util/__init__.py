"""Shared infrastructure: errors, lexing, and pretty-printing helpers.

The four surface languages of this library (the generalized-database
text format, the deductive language of Section 4, Datalog1S, and
Templog) share a single tokenizer (:mod:`repro.util.lexing`) and a
single error hierarchy (:mod:`repro.util.errors`).
"""

from repro.util.errors import ReproError, ParseError, EvaluationError, SchemaError
from repro.util.lexing import Lexer, Token, TokenKind

__all__ = [
    "ReproError",
    "ParseError",
    "EvaluationError",
    "SchemaError",
    "Lexer",
    "Token",
    "TokenKind",
]
