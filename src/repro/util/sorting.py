"""Typed sort keys for mixed-type output rows.

Window extensions and model rows mix numeric temporal columns with
arbitrary data constants (strings, ints, tuples).  Sorting them with
``key=repr`` orders ``(10, ...)`` before ``(2, ...)`` — lexicographic
on the digits — and flips order between value types, which makes
``--json`` output unstable.  :func:`typed_sort_key` sorts numbers
numerically, strings lexicographically, and everything else by a
stable ``(type name, repr)`` fallback, with a rank prefix so distinct
types never compare against each other directly.
"""

from __future__ import annotations

import numbers


def _element_key(value):
    if isinstance(value, bool):
        # bools are ints, but keep them out of the numeric ordering so
        # True/False don't interleave with temporal values.
        return (2, "bool", repr(value))
    if isinstance(value, numbers.Real):
        return (0, value)
    if isinstance(value, str):
        return (1, value)
    if isinstance(value, (tuple, list)):
        return (3, tuple(_element_key(item) for item in value))
    return (2, type(value).__name__, repr(value))


def typed_sort_key(row):
    """Sort key for one flat output row (a sequence of scalars).

    Numeric columns compare numerically (so ``(2,)`` precedes
    ``(10,)``), strings compare as strings, and mixed types fall into
    disjoint rank buckets instead of raising ``TypeError``.
    """
    return tuple(_element_key(value) for value in row)
