"""Process-pool sharding of one T_GP round (``parallelism > 1``).

Within a round, every clause-variant firing reads only the *previous*
environment (plus the last round's delta), so the firings of one round
are embarrassingly parallel.  The GIL makes threads useless for this
CPU-bound work, so the shards are **processes**: each worker rebuilds
the compiled plans from the program/EDB *texts* (the same canonical
texts the engine fingerprint hashes — the worker verifies its plan
fingerprint against the parent's at startup), replicates the growing
IDB environment from the accepted-tuple updates the parent broadcasts
each round, and evaluates the task subset it is handed.

Determinism is by construction, not by luck:

* the parent enumerates the round's tasks in exactly the sequential
  firing order (stratum clause order, then intensional body position
  order) and reassembles worker results by global task index, so the
  merged ``{predicate: [tuples]}`` dict is element-for-element the one
  the sequential round would have built;
* tuples and relations cross the process boundary as their canonical
  JSON forms (:meth:`~repro.gdb.tuple.GeneralizedTuple.to_json_dict`),
  the same representation checkpoints rely on for bit-identical
  resume, so worker-side evaluation sees value-identical inputs in the
  same order.

Observability sinks and fault hooks are parent-side concerns: workers
clear :data:`repro.util.hooks.SINKS` and the fault hook at startup, so
plan-operator events and injected faults keep their sequential
semantics (they fire where the budget is metered — in the parent — or
not at all).

The pool prefers the ``fork`` start method (cheap, copy-on-write) and
falls back to ``spawn`` where fork is unavailable; set
``REPRO_PARALLEL_START_METHOD`` to override.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.util.errors import EvaluationError


class ShardError(EvaluationError):
    """A shard worker failed or disagreed with the parent's plans."""


def _start_method(override=None):
    method = override or os.environ.get("REPRO_PARALLEL_START_METHOD")
    if method:
        return method
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_start_method(allow_none=False)
    )


def _relation_payload(relation):
    return relation.to_json_dict()


def _tuples_payload(tuples):
    return [gt.to_json_dict() for gt in tuples]


class ShardPool:
    """``parallelism`` worker processes evaluating round shards.

    The pool is built lazily from the *texts* of the program and EDB
    (``str(program)`` / ``str(edb)`` round-trip through the parsers —
    the same property the engine fingerprint depends on) so the
    snapshot shipped to workers is trivially picklable under any
    multiprocessing start method.
    """

    def __init__(
        self,
        program_text,
        edb_text,
        evaluation,
        parallelism,
        plan_fingerprint=None,
        start_method=None,
    ):
        if parallelism < 2:
            raise ValueError("a shard pool needs parallelism >= 2")
        self.program_text = program_text
        self.edb_text = edb_text
        self.evaluation = evaluation
        self.parallelism = parallelism
        self.expected_fingerprint = plan_fingerprint
        self.start_method = _start_method(start_method)
        self._workers = []  # [(process, connection)]

    # -- lifecycle --------------------------------------------------------

    def started(self):
        return bool(self._workers)

    def ensure_started(self):
        if self._workers:
            return
        context = multiprocessing.get_context(self.start_method)
        bootstrap = {
            "program": self.program_text,
            "edb": self.edb_text,
            "evaluation": self.evaluation,
        }
        for index in range(self.parallelism):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_end, bootstrap),
                name="repro-shard-%d" % index,
                daemon=True,
            )
            process.start()
            child_end.close()
            self._workers.append((process, parent_end))
        for process, connection in self._workers:
            ready = self._receive(connection, process)
            fingerprint = ready.get("plan_fingerprint")
            if (
                self.expected_fingerprint is not None
                and fingerprint != self.expected_fingerprint
            ):
                self.close()
                raise ShardError(
                    "shard worker compiled different plans than the parent "
                    "(plan fingerprint mismatch %r != %r) — the program/EDB "
                    "texts do not round-trip" % (fingerprint, self.expected_fingerprint)
                )

    def close(self):
        """Stop the workers; safe to call repeatedly."""
        for process, connection in self._workers:
            try:
                connection.send({"op": "stop"})
            except (OSError, ValueError):
                pass
        for process, connection in self._workers:
            try:
                connection.close()
            except OSError:
                pass
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._workers = []

    # -- round protocol ---------------------------------------------------

    def begin_stratum(self, stratum_index, env, complements, delta, intensional):
        """Broadcast the stratum context: the current IDB relations
        (which a resume may have pre-populated), the negated-predicate
        complements, and the in-flight delta (``None`` outside a
        mid-stratum resume)."""
        self.ensure_started()
        message = {
            "op": "stratum",
            "stratum": stratum_index,
            "env": {
                name: _relation_payload(env[name]) for name in intensional
            },
            "complements": {
                name: _relation_payload(relation)
                for name, relation in complements.items()
            },
            "delta": None
            if delta is None
            else {name: _tuples_payload(tuples) for name, tuples in delta.items()},
        }
        self._broadcast(message)

    def run_round(self, tasks, update):
        """Evaluate ``tasks`` (global sequential order) across the
        workers and return the per-task derived tuple lists, reassembled
        in that same order.

        ``update`` is the previous round's accepted-tuple delta as an
        ordered ``[(predicate, [tuples])]`` list (or ``None`` for the
        first round of a stratum); every worker applies it to its
        replica environment — in the parent's insertion order — before
        evaluating, which also makes it the round's semi-naive delta.
        """
        from repro.gdb.tuple import GeneralizedTuple

        update_payload = (
            None
            if update is None
            else [
                [name, _tuples_payload(tuples)] for name, tuples in update
            ]
        )
        workers = self._workers
        count = len(workers)
        for shard, (process, connection) in enumerate(workers):
            self._send(
                connection,
                process,
                {
                    "op": "round",
                    # Round-robin keeps shard loads level when task
                    # costs are skewed toward one end of the list.
                    "tasks": [list(task) for task in tasks[shard::count]],
                    "update": update_payload,
                },
            )
        merged = [None] * len(tasks)
        for shard, (process, connection) in enumerate(workers):
            reply = self._receive(connection, process)
            for offset, tuples_json in enumerate(reply["results"]):
                merged[shard + offset * count] = [
                    GeneralizedTuple.from_json_dict(payload)
                    for payload in tuples_json
                ]
        return merged

    # -- plumbing ---------------------------------------------------------

    def _broadcast(self, message):
        for process, connection in self._workers:
            self._send(connection, process, message)
        for process, connection in self._workers:
            self._receive(connection, process)

    def _send(self, connection, process, message):
        try:
            connection.send(message)
        except (OSError, ValueError) as error:
            raise ShardError(
                "shard worker %s is gone: %s" % (process.name, error)
            ) from error

    def _receive(self, connection, process):
        try:
            reply = connection.recv()
        except (EOFError, OSError) as error:
            raise ShardError(
                "shard worker %s died mid-round (exit code %r)"
                % (process.name, process.exitcode)
            ) from error
        if not reply.get("ok"):
            raise ShardError(
                "shard worker %s failed: %s"
                % (process.name, reply.get("error", "unknown error"))
            )
        return reply


def _worker_main(connection, bootstrap):
    """Shard worker loop: rebuild the evaluator, replicate the
    environment, answer round requests until told to stop."""
    # Observability and fault injection belong to the parent; a forked
    # worker must not double-report to inherited sinks or re-fire
    # injected faults.
    from repro.util import hooks

    hooks.SINKS = ()
    hooks.FAULT_HOOK = None

    from repro.core.evaluation import ProgramEvaluator
    from repro.core.parser import parse_program
    from repro.gdb.parser import parse_database
    from repro.gdb.relation import GeneralizedRelation
    from repro.gdb.tuple import GeneralizedTuple

    try:
        program = parse_program(bootstrap["program"])
        edb = parse_database(bootstrap["edb"])
        evaluator = ProgramEvaluator(
            program, edb, evaluation=bootstrap["evaluation"]
        )
        env = evaluator.initial_environment()
        connection.send(
            {"ok": True, "plan_fingerprint": evaluator.plan_fingerprint()}
        )
    except Exception as error:  # pragma: no cover - startup failure path
        try:
            connection.send({"ok": False, "error": repr(error)})
        finally:
            connection.close()
        return

    stratum_index = 0
    complements = {}
    delta = None  # {predicate: [GeneralizedTuple]}

    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        op = message.get("op")
        if op == "stop":
            break
        try:
            if op == "stratum":
                stratum_index = message["stratum"]
                for name, payload in message["env"].items():
                    env[name] = GeneralizedRelation.from_json_dict(payload)
                complements = {
                    name: GeneralizedRelation.from_json_dict(payload)
                    for name, payload in message["complements"].items()
                }
                delta = None
                if message["delta"] is not None:
                    delta = {
                        name: [
                            GeneralizedTuple.from_json_dict(item)
                            for item in tuples
                        ]
                        for name, tuples in message["delta"].items()
                    }
                connection.send({"ok": True})
            elif op == "round":
                if message["update"] is not None:
                    delta = {}
                    for name, tuples_json in message["update"]:
                        tuples = [
                            GeneralizedTuple.from_json_dict(item)
                            for item in tuples_json
                        ]
                        env[name] = env[name].with_tuples(tuples)
                        delta[name] = tuples
                delta_env = None
                if delta is not None:
                    delta_env = {
                        name: GeneralizedRelation(
                            *evaluator.schemas[name], tuples=tuples
                        )
                        for name, tuples in delta.items()
                    }
                evaluators = evaluator.stratum_evaluators[stratum_index]
                results = []
                for index, position in message["tasks"]:
                    clause = evaluators[index]
                    if position is None:
                        relation = clause.evaluate(env, complements=complements)
                    else:
                        relation = clause.evaluate(
                            env,
                            delta=delta_env,
                            delta_position=position,
                            complements=complements,
                        )
                    results.append(
                        [gt.to_json_dict() for gt in relation.tuples]
                    )
                connection.send({"ok": True, "results": results})
            else:
                connection.send(
                    {"ok": False, "error": "unknown op %r" % (op,)}
                )
        except Exception as error:
            try:
                connection.send({"ok": False, "error": repr(error)})
            except (OSError, ValueError):
                break
    try:
        connection.close()
    except OSError:
        pass
