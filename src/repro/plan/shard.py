"""Supervised persistent-worker sharding of T_GP rounds (``parallelism > 1``).

Within a round, every clause-variant firing reads only the *previous*
environment (plus the last round's delta), so the firings of one round
are embarrassingly parallel.  The GIL makes threads useless for this
CPU-bound work, so the shards are **processes**: each worker is
bootstrapped once per run — it rebuilds the compiled plans from the
program/EDB *texts* (the same canonical texts the engine fingerprint
hashes; the worker verifies its plan fingerprint against the parent's
at startup) — and then stays resident for the whole run, replicating
the growing IDB environment from the per-round accepted-tuple updates.

The wire protocol (v2) is built around a **shared-memory delta
plane**.  Pipes carry only small control frames; bulk payloads ride
:mod:`multiprocessing.shared_memory` segments carrying the column-batch
codec of :mod:`repro.gdb.store` (each distinct constraint zone
serialized once per batch, rows referencing it by index):

* **Stratum broadcast** — at each stratum boundary the parent encodes
  the IDB environment, the negation complements, and any in-flight
  delta *once*, writes the pickled payload into one segment, and sends
  every worker a frame naming it.  The segment is retained for the
  stratum so replacements spawned mid-stratum rehydrate from it.
* **Round dispatch** — one control frame per worker per round.  It
  carries no task payloads at all: a compact *assignment descriptor*
  (``["block", slot, count]`` on the first attempt — contiguous blocks,
  because consecutive tasks share subgoal joins and cache affinity —
  an explicit index list on re-deals) plus the round's task-list
  length as a cross-check.
  The worker recomputes the round's task list itself — the enumeration
  is a pure function of the (replicated) delta, so it provably matches
  the parent's sequential firing order, and the ``tasks_total`` check
  turns any divergence into a hard error instead of a silent reorder.
* **Results** — each worker pickles its ``{task index: column batch}``
  map into a segment whose name the parent assigned in the dispatch
  frame (no segment when every assigned task derived nothing); the pipe
  reply carries only the name and size.
* **Accepted-delta broadcast as result references** — the parent never
  re-serializes accepted tuples.  Coverage sweeping preserves object
  identity, so each accepted tuple maps back to ``(task index, row)``
  in the round it was derived; the next round's dispatch ships those
  index pairs.  A worker resolves references into its *own* tasks from
  the derived tuples it retained, and decodes only the other workers'
  accepted rows from the previous round's result segments (which the
  parent retains exactly one round for this purpose).  Workers more
  than one round behind — respawned replacements, re-healed laggards —
  get the missing updates inline, lazily encoded from the accepted
  tuples the parent retains per stratum.

``REPRO_SHARD_TRANSPORT=pipe`` switches to the legacy inline-payload
protocol (every payload pickled per worker onto its pipe); the
parallel benchmark uses it to price the shared-memory plane honestly
(``wire_stats()`` counts pipe and segment bytes exactly, and every
round emits a ``shard.dispatch`` event with the totals).

Determinism is by construction, not by luck: tasks are enumerated in
exactly the sequential firing order, results are reassembled by global
task index, and tuples cross the process boundary in canonical form —
so the merged round is element-for-element the sequential one, no
matter how it was transported.

Supervision
-----------
Long-running fixpoints on real pods lose workers mid-round, so the
pool is supervised rather than trusted:

* every receive is deadline-bounded with exponentially backed-off
  liveness polling (``poll_floor`` doubling to ``poll_ceiling``) — a
  dead worker wakes the poll immediately via pipe EOF, a *hung* one is
  detected within ``recv_deadline`` seconds (and is then killed), and
  an idle parent waiting on a long computation burns almost no CPU;
* a round task is a pure function of the broadcast ``(env, delta)``
  replica, so a failed worker's task slice is simply re-dealt to the
  survivors (or to a freshly respawned replacement) and the
  index-keyed merge stays bit-identical to sequential no matter which
  workers die when;
* replacements are rehydrated from the retained stratum broadcast plus
  the per-round accepted updates they missed — each worker tracks how
  many updates its replica has applied (``synced``), and every round
  dispatch carries exactly the missing suffix;
* respawns are capped (``max_restarts`` per pool lifetime).  When the
  pool empties with the cap spent, :class:`ShardPoolLostError` carries
  the per-task results already collected so the caller can finish the
  round sequentially instead of failing the run.

Shared-memory segments are parent-owned: the parent names every
segment (its own and the ones workers create for replies), keeps a
registry, and is the only process that ever unlinks — at round
retirement, stratum end, and unconditionally in :meth:`ShardPool.close`
(which every engine exit path reaches), so no segment outlives the
pool even when workers are SIGKILLed mid-write.  Python's resource
tracker remains the safety net for a SIGKILLed *parent*.

Worker loss, respawn, and retry surface as ``shard.worker`` events on
the bus; per-round transport totals as ``shard.dispatch``; the caller
emits ``shard.degraded`` when it downshifts.  Fault injection stays a
parent-side concern (workers clear the fault hook), but observability
is **aggregated, not dropped**: when the parent had sinks installed at
pool start, each worker accumulates its ``plan.operator`` and
``kernel.batch`` events locally and the parent drains them at stratum
end (``flush_stats``), re-emitting them as aggregated events carrying
a ``count`` — so ``explain --profile`` under ``--parallel`` reports
the worker-side operator work instead of silently under-counting.  The
parent-side chaos sites (``shard_dispatch``, ``shard_worker_crash``,
``shard_worker_hang`` — see :mod:`repro.runtime.faults`) let tests
kill, wedge, or unplug specific workers at exact dispatch counts.

The pool prefers the ``fork`` start method (cheap, copy-on-write) and
falls back to ``spawn`` where fork is unavailable; set
``REPRO_PARALLEL_START_METHOD`` to override (the test suite runs the
equivalence and heal suites under ``spawn`` too, since shared memory
plus ``spawn`` is the macOS/Windows reality).
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.gdb.store import (
    decode_tuple_batch,
    decode_tuple_batch_rows,
    dump_payload,
    encode_relation_batch,
    encode_tuple_batch,
    load_payload,
)
from repro.util import hooks
from repro.util.errors import EvaluationError, ReproError
from repro.util.hooks import fault_point

#: Seconds a worker may stay silent mid-round before the parent
#: declares it hung and kills it.  Liveness is polled throughout, so a
#: worker that *dies* is detected immediately (pipe EOF) regardless.
DEFAULT_RECV_DEADLINE = 30.0

#: Worker respawns allowed per pool lifetime before a lost worker
#: means a lost pool slot (and an empty pool means degradation).
DEFAULT_MAX_RESTARTS = 2

#: Liveness-poll backoff inside :meth:`ShardPool._receive`: the first
#: poll waits the floor, each quiet wakeup doubles the wait up to the
#: ceiling.  Data (and pipe EOF) wake the poll immediately either way —
#: the interval only paces the ``is_alive`` check on a silent worker.
DEFAULT_POLL_FLOOR = 0.001
DEFAULT_POLL_CEILING = 0.1

#: Floor for the startup-handshake deadline: a worker re-parsing and
#: re-compiling a large program is slow but not hung.
_BOOT_DEADLINE = 60.0

#: Prefix of every shared-memory segment the pool creates (or assigns
#: to a worker); the leak tests scan ``/dev/shm`` for it.
SHM_PREFIX = "repro_shard_"


class ShardError(EvaluationError):
    """A shard worker failed or disagreed with the parent's plans."""


class ShardPoolLostError(ShardError):
    """The pool emptied and could not be healed within the restart cap.

    ``partial`` is the per-task result list collected before the loss
    (aligned with the round's task list, ``None`` where a result is
    missing — possibly ``None`` itself when the loss happened outside
    a round), so the caller can finish the remaining tasks
    sequentially and keep the run's results bit-identical.
    """

    def __init__(self, message, partial=None, restarts_used=0):
        super().__init__(message)
        self.partial = partial
        self.restarts_used = restarts_used


class _WorkerFailure(Exception):
    """Internal: one worker failed (``reason``: crash/hang/dispatch).

    Never escapes the pool — it marks the worker for discard-and-retry
    inside the supervision loop.
    """

    def __init__(self, reason, detail=""):
        super().__init__(detail or reason)
        self.reason = reason


def _start_method(override=None):
    method = override or os.environ.get("REPRO_PARALLEL_START_METHOD")
    if method:
        return method
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_start_method(allow_none=False)
    )


def _shared_memory_available():
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - all supported platforms have it
        return False
    return True


def _transport(override=None):
    """``"shm"`` (default where available) or ``"pipe"``."""
    choice = override or os.environ.get("REPRO_SHARD_TRANSPORT")
    if choice:
        if choice not in ("shm", "pipe"):
            raise ValueError(
                "shard transport must be 'shm' or 'pipe', got %r" % (choice,)
            )
        if choice == "shm" and not _shared_memory_available():
            raise ValueError("shared-memory transport is unavailable here")
        return choice
    return "shm" if _shared_memory_available() else "pipe"


class _ShardWorker:
    """One pool slot: the process, the parent pipe end, and how many of
    the stratum's per-round updates the replica has applied."""

    __slots__ = ("process", "connection", "synced")

    def __init__(self, process, connection):
        self.process = process
        self.connection = connection
        self.synced = 0

    @property
    def name(self):
        return self.process.name


class ShardPool:
    """``parallelism`` supervised worker processes evaluating round shards.

    The pool is built lazily from the *texts* of the program and EDB
    (``str(program)`` / ``str(edb)`` round-trip through the parsers —
    the same property the engine fingerprint depends on) so the
    snapshot shipped to workers is trivially picklable under any
    multiprocessing start method.

    ``recv_deadline`` bounds how long a silent-but-alive worker is
    waited on mid-round; ``max_restarts`` caps replacement spawns per
    pool lifetime; ``poll_floor`` / ``poll_ceiling`` tune the
    liveness-poll backoff.  All default to the module constants when
    ``None``.  ``transport`` forces ``"shm"`` or ``"pipe"`` (default:
    the ``REPRO_SHARD_TRANSPORT`` environment variable, else shared
    memory where available).  The pool is a context manager:
    ``with ShardPool(...) as pool: ...`` guarantees :meth:`close`.
    """

    def __init__(
        self,
        program_text,
        edb_text,
        evaluation,
        parallelism,
        plan_fingerprint=None,
        start_method=None,
        recv_deadline=None,
        max_restarts=None,
        poll_floor=None,
        poll_ceiling=None,
        transport=None,
    ):
        if parallelism < 2:
            raise ValueError("a shard pool needs parallelism >= 2")
        self.program_text = program_text
        self.edb_text = edb_text
        self.evaluation = evaluation
        self.parallelism = parallelism
        self.expected_fingerprint = plan_fingerprint
        self.start_method = _start_method(start_method)
        self.transport = _transport(transport)
        self.recv_deadline = (
            DEFAULT_RECV_DEADLINE if recv_deadline is None else float(recv_deadline)
        )
        if self.recv_deadline <= 0:
            raise ValueError("recv_deadline must be positive")
        self.max_restarts = (
            DEFAULT_MAX_RESTARTS if max_restarts is None else int(max_restarts)
        )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.poll_floor = (
            DEFAULT_POLL_FLOOR if poll_floor is None else float(poll_floor)
        )
        self.poll_ceiling = (
            DEFAULT_POLL_CEILING if poll_ceiling is None else float(poll_ceiling)
        )
        if self.poll_floor <= 0 or self.poll_ceiling < self.poll_floor:
            raise ValueError("need 0 < poll_floor <= poll_ceiling")
        self._workers = []  # [_ShardWorker]
        self._context = None
        self._spawn_seq = 0
        self.restarts_used = 0
        self.observe = False
        self._round = 0  # rounds dispatched this stratum (for events)
        self._stratum = 0
        # Rehydration state for respawned replacements: the last
        # stratum broadcast frame, and every per-round update applied
        # since — as accepted-tuple object refs, encoded lazily only
        # when a laggard actually needs the inline form.
        self._stratum_message = None
        self._updates = []  # [{"objects", "encoded", "refs"}]
        # Previous round's decoded per-task results (accept-reference
        # translation) and the segments that carried them.
        self._last_results = None
        self._prev_reply_segments = []  # [[name, size]]
        # Parent-owned shared-memory registry: every name the pool
        # created or assigned, mapped to an attached handle when the
        # parent holds one (None for assigned-but-unread names).
        self._segments = {}
        self._segment_seq = 0
        #: Exact transport totals for this pool's lifetime.
        self.wire = {
            "pipe_bytes": 0,
            "shm_bytes": 0,
            "dispatches": 0,
            "segments": 0,
            "rounds": 0,
        }

    # -- lifecycle --------------------------------------------------------

    def started(self):
        return bool(self._workers)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def wire_stats(self):
        """Lifetime transport totals (bytes are exact, both directions
        on the pipes plus every segment written)."""
        stats = dict(self.wire)
        stats["transport"] = self.transport
        return stats

    def _spawn(self):
        """Start one worker process; the caller still owes a handshake."""
        if self._context is None:
            self._context = multiprocessing.get_context(self.start_method)
        bootstrap = {
            "program": self.program_text,
            "edb": self.edb_text,
            "evaluation": self.evaluation,
            "observe": self.observe,
        }
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_end, bootstrap),
            # The sequence number keeps replacement names unique while
            # preserving the repro-shard- prefix leak tests scan for.
            name="repro-shard-%d" % self._spawn_seq,
            daemon=True,
        )
        self._spawn_seq += 1
        process.start()
        child_end.close()
        return _ShardWorker(process, parent_end)

    def _handshake(self, worker):
        """Wait for the worker's ready message and verify its plans.

        Raises :class:`_WorkerFailure` when the worker dies or stalls,
        :class:`ShardError` on a fingerprint mismatch (a configuration
        error no respawn can heal).
        """
        ready = self._receive(
            worker, deadline=max(_BOOT_DEADLINE, self.recv_deadline)
        )
        fingerprint = ready.get("plan_fingerprint")
        if (
            self.expected_fingerprint is not None
            and fingerprint != self.expected_fingerprint
        ):
            raise ShardError(
                "shard worker compiled different plans than the parent "
                "(plan fingerprint mismatch %r != %r) — the program/EDB "
                "texts do not round-trip" % (fingerprint, self.expected_fingerprint)
            )

    def ensure_started(self):
        if self._workers:
            return
        # Whether the parent is observing is captured once, at pool
        # start: it decides whether workers aggregate their operator
        # events for the stratum-end flush.
        self.observe = bool(hooks.SINKS)
        try:
            for _ in range(self.parallelism):
                self._workers.append(self._spawn())
            for worker in list(self._workers):
                self._handshake(worker)
        except _WorkerFailure as failure:
            self.close()
            raise ShardError(
                "shard pool startup failed: %s" % failure
            ) from failure
        except Exception:
            self.close()
            raise

    def close(self):
        """Stop the workers and unlink every segment; safe to call
        repeatedly.

        Escalates per worker: cooperative stop, ``terminate()`` when
        the join times out, ``kill()`` when even SIGTERM is ignored
        (a worker wedged in uninterruptible state).  The parent pipe
        end is closed unconditionally so no descriptor outlives a dead
        worker, and the segment registry is drained unconditionally so
        no shared memory outlives the pool.
        """
        workers, self._workers = self._workers, []
        self._stratum_message = None
        self._updates = []
        self._last_results = None
        self._prev_reply_segments = []
        for worker in workers:
            try:
                self._send(worker, {"op": "stop"})
            except (_WorkerFailure, OSError, ValueError):
                pass
        for worker in workers:
            try:
                worker.connection.close()
            except OSError:
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
        for name in list(self._segments):
            self._unlink_segment(name)

    # -- shared-memory registry -------------------------------------------

    def _new_segment_name(self):
        name = "%s%d_%d" % (SHM_PREFIX, os.getpid(), self._segment_seq)
        self._segment_seq += 1
        return name

    def _write_segment(self, data):
        """Create a segment holding ``data``; returns ``(name, size)``."""
        from multiprocessing import shared_memory

        name = self._new_segment_name()
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, len(data))
        )
        segment.buf[: len(data)] = data
        self._segments[name] = segment
        self.wire["shm_bytes"] += len(data)
        self.wire["segments"] += 1
        return name, len(data)

    def _assign_segment_name(self):
        """Reserve a name for a worker-created reply segment.  It goes
        into the registry immediately (handle ``None``) so close() can
        unlink it even if the worker dies mid-write."""
        name = self._new_segment_name()
        self._segments[name] = None
        return name

    def _read_segment(self, name, size, retain=False):
        """Attach and unpickle a worker-written segment.  With
        ``retain`` the attached handle stays in the registry (the
        segment must survive for accept-reference resolution); without
        it the segment is unlinked on the spot."""
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=name)
        try:
            view = segment.buf[:size]
            try:
                payload = load_payload(view)
            finally:
                view.release()
        except BaseException:
            segment.close()
            raise
        if retain:
            self._segments[name] = segment
        else:
            self._segments.pop(name, None)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        return payload

    def _unlink_segment(self, name):
        """Remove one segment, attached or not; tolerates the segment
        never having been created (a worker died before writing it)."""
        from multiprocessing import shared_memory

        handle = self._segments.pop(name, None)
        if handle is None:
            try:
                handle = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return
        handle.close()
        try:
            handle.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink raced
            pass

    # -- supervision ------------------------------------------------------

    def _discard(self, worker, reason, detail=""):
        """Forget a failed worker: kill it if needed, close its pipe,
        and announce the loss on the bus."""
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.connection.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=2.0)
        if hooks.SINKS:
            hooks.emit(
                "shard.worker",
                {
                    "phase": "lost",
                    "worker": worker.name,
                    "reason": reason,
                    "exitcode": worker.process.exitcode,
                    "round": self._round,
                    "detail": detail,
                },
            )

    def _heal(self):
        """Respawn workers up to the restart cap; returns the live list.

        A replacement is rehydrated through the normal bootstrap
        handshake plus a re-broadcast of the retained stratum context;
        its ``synced`` counter starts at 0, so its first round dispatch
        ships every update the stratum has applied so far (inline —
        the result segments its siblings resolve references from only
        cover the latest round).  A replacement that itself dies burns
        its restart credit — that is what bounds a crash-looping pod.
        """
        while (
            len(self._workers) < self.parallelism
            and self.restarts_used < self.max_restarts
        ):
            self.restarts_used += 1
            worker = None
            try:
                worker = self._spawn()
                self._handshake(worker)
                if self._stratum_message is not None:
                    self._send(worker, self._stratum_message)
                    self._receive(worker)
            except (_WorkerFailure, OSError) as failure:
                if worker is not None:
                    self._discard(worker, "respawn-failed", str(failure))
                continue
            self._workers.append(worker)
            if hooks.SINKS:
                hooks.emit(
                    "shard.worker",
                    {
                        "phase": "respawn",
                        "worker": worker.name,
                        "restarts_used": self.restarts_used,
                        "round": self._round,
                    },
                )
        return list(self._workers)

    def _inject_worker_faults(self, worker):
        """The deterministic chaos sites, hit once per worker dispatch.

        A triggered ``shard_worker_crash`` SIGKILLs the worker about to
        be dispatched to — a real process death, exercising the real
        broken-pipe/EOF detection.  A triggered ``shard_worker_hang``
        wedges the worker in a sleep loop, exercising the recv
        deadline.  Either way the dispatch itself proceeds normally.
        """
        if hooks.FAULT_HOOK is None:
            return
        try:
            fault_point("shard_worker_crash")
        except Exception:
            worker.process.kill()
            worker.process.join(timeout=2.0)
        try:
            fault_point("shard_worker_hang")
        except Exception:
            try:
                worker.connection.send({"op": "hang"})
            except (OSError, ValueError):
                pass

    # -- stratum protocol -------------------------------------------------

    def begin_stratum(self, stratum_index, env, complements, delta, intensional):
        """Broadcast the stratum context: the current IDB relations
        (which a resume may have pre-populated), the negated-predicate
        complements, and the in-flight delta (``None`` outside a
        mid-stratum start).  Under the shared-memory transport the
        payload is encoded and written exactly once; the frame — which
        is retained so replacements can be rehydrated — only names the
        segment."""
        self.ensure_started()
        self._release_stratum_state()
        payload = {
            "env": {
                name: encode_relation_batch(env[name]) for name in intensional
            },
            "complements": {
                name: encode_relation_batch(relation)
                for name, relation in complements.items()
            },
            "delta": None
            if delta is None
            else {
                name: encode_tuple_batch(tuples)
                for name, tuples in delta.items()
            },
        }
        pipe_before, shm_before = self.wire["pipe_bytes"], self.wire["shm_bytes"]
        if self.transport == "shm":
            name, size = self._write_segment(dump_payload(payload))
            message = {
                "op": "stratum",
                "stratum": stratum_index,
                "shm": name,
                "size": size,
            }
        else:
            message = {
                "op": "stratum",
                "stratum": stratum_index,
                "payload": payload,
            }
        self._stratum_message = message
        self._stratum = stratum_index
        self._round = 0
        acked = []
        for worker in list(self._workers):
            try:
                self._send(worker, message)
            except _WorkerFailure as failure:
                self._discard(worker, failure.reason, str(failure))
                continue
            acked.append(worker)
        for worker in acked:
            try:
                self._receive(worker)
            except _WorkerFailure as failure:
                self._discard(worker, failure.reason, str(failure))
                continue
            worker.synced = 0
        if len(self._workers) < self.parallelism:
            self._heal()
        if hooks.SINKS:
            hooks.emit(
                "shard.dispatch",
                {
                    "phase": "stratum",
                    "stratum": stratum_index,
                    "round": self._round,
                    "tasks": 0,
                    "workers": len(self._workers),
                    "transport": self.transport,
                    "pipe_bytes": self.wire["pipe_bytes"] - pipe_before,
                    "shm_bytes": self.wire["shm_bytes"] - shm_before,
                    "segments": 1 if self.transport == "shm" else 0,
                },
            )
        if not self._workers:
            raise ShardPoolLostError(
                "every shard worker was lost broadcasting stratum %d "
                "(restart cap %d spent)" % (stratum_index, self.max_restarts),
                partial=None,
                restarts_used=self.restarts_used,
            )

    def end_stratum(self):
        """Stratum boundary: drain worker-side operator statistics
        (re-emitted as aggregated events) and retire the stratum's
        segments and update history.  Best-effort on the stats side — a
        worker that dies during the flush loses its counters, never the
        run."""
        if self.observe and hooks.SINKS and self._workers:
            self.flush_worker_stats()
        self._release_stratum_state()

    def _release_stratum_state(self):
        for name, _size in self._prev_reply_segments:
            self._unlink_segment(name)
        self._prev_reply_segments = []
        message = self._stratum_message
        self._stratum_message = None
        if message is not None and message.get("shm"):
            self._unlink_segment(message["shm"])
        self._updates = []
        self._last_results = None

    def flush_worker_stats(self):
        """Collect every worker's aggregated ``plan.operator`` /
        ``kernel.batch`` counters and re-emit them on the parent's bus
        with ``aggregated: True`` and a ``count`` of folded events."""
        for worker in list(self._workers):
            try:
                self._send(worker, {"op": "flush_stats"})
                reply = self._receive(worker)
            except _WorkerFailure as failure:
                self._discard(worker, failure.reason, str(failure))
                continue
            except ShardError:
                continue
            for fields in reply.get("operators", ()):
                fields = dict(fields)
                fields["aggregated"] = True
                fields["worker"] = worker.name
                hooks.emit("plan.operator", fields)
            for fields in reply.get("kernel", ()):
                fields = dict(fields)
                fields["aggregated"] = True
                fields["worker"] = worker.name
                hooks.emit("kernel.batch", fields)

    # -- round protocol ---------------------------------------------------

    def run_round(self, tasks, update, seminaive=None):
        """Evaluate ``tasks`` (global sequential order) across the
        workers and return the per-task derived tuple lists, reassembled
        in that same order.

        ``update`` is the previous round's accepted-tuple delta as an
        ordered ``[(predicate, [tuples])]`` list (or ``None`` for the
        first round of a stratum); every worker applies it to its
        replica environment — in the parent's insertion order — before
        evaluating, which also makes it the round's semi-naive delta.
        Under the shared-memory transport the update crosses the wire
        as result references (see the module docstring), so accepting a
        tuple costs the parent no serialization at all.

        ``seminaive`` tells the workers which task enumeration this
        round used (they recompute the task list themselves).  It
        defaults to ``update is not None``; the caller must pass it
        explicitly for the two exceptions — a naive-strategy round
        (updates applied, naive enumeration) and the first round after
        a mid-stratum start (no update, but the stratum broadcast
        carried a delta).

        The supervision loop deals the still-pending task indices in
        contiguous blocks over the live workers, collects with the deadline,
        discards failures, and repeats until every index has a result —
        healing the pool between attempts.  Because results are keyed
        by global task index and replicas are value-identical, the
        merged list is the sequential one regardless of failures.
        Raises :class:`ShardPoolLostError` (carrying the partial
        results) when the pool empties with the restart cap spent.
        """
        self._round += 1
        self.wire["rounds"] += 1
        pipe_before, shm_before = self.wire["pipe_bytes"], self.wire["shm_bytes"]
        if seminaive is None:
            seminaive = update is not None
        if update is not None:
            self._push_update(update)
        merged = [None] * len(tasks)
        pending = list(range(len(tasks)))
        first_attempt = True
        reply_segments = []  # [[name, size]] successful replies this round
        while pending:
            workers = list(self._workers)
            if len(workers) < self.parallelism:
                workers = self._heal()
            if not workers:
                raise ShardPoolLostError(
                    "shard pool lost with %d of %d round task(s) outstanding "
                    "(restart cap %d spent)"
                    % (len(pending), len(tasks), self.max_restarts),
                    partial=merged,
                    restarts_used=self.restarts_used,
                )
            if not first_attempt and hooks.SINKS:
                hooks.emit(
                    "shard.worker",
                    {
                        "phase": "retry",
                        "worker": ",".join(w.name for w in workers),
                        "round": self._round,
                        "tasks": len(pending),
                    },
                )
            count = len(workers)
            # On the first attempt every index is pending, so the
            # assignment is a contiguous block the worker can recompute
            # from (slot, count) alone; re-deals ship explicit lists.
            # Blocks beat a stride deal because the task list is
            # ordered by clause: consecutive tasks share subgoal
            # relations, so keeping them on one worker keeps their
            # joins in that worker's caches instead of recomputing
            # them on every replica (measured ~1.3x faster end-to-end
            # on the multi-chain workload).
            block = first_attempt and len(pending) == len(tasks)
            first_attempt = False
            total = len(pending)
            dispatched = []  # [(worker, [global task index], reply name)]
            for slot, worker in enumerate(workers):
                if block:
                    indices = pending[
                        (total * slot) // count : (total * (slot + 1)) // count
                    ]
                else:
                    indices = pending[slot::count]
                if not indices:
                    continue
                self._inject_worker_faults(worker)
                assign = (
                    ["block", slot, count] if block else ["indices", indices]
                )
                try:
                    reply_name = self._dispatch(
                        worker, len(tasks), assign, seminaive
                    )
                except _WorkerFailure as failure:
                    self._discard(worker, failure.reason, str(failure))
                    continue
                dispatched.append((worker, indices, reply_name))
            completed = set()
            for worker, indices, reply_name in dispatched:
                try:
                    reply = self._receive(worker)
                    results = self._collect_results(reply, reply_name)
                except _WorkerFailure as failure:
                    self._discard(worker, failure.reason, str(failure))
                    if reply_name is not None:
                        self._unlink_segment(reply_name)
                    continue
                for index in indices:
                    batch = results.get(index)
                    merged[index] = (
                        [] if batch is None else decode_tuple_batch(batch)
                    )
                    completed.add(index)
                if reply_name is not None and reply.get("shm"):
                    reply_segments.append([reply_name, reply["size"]])
                elif reply_name is not None:
                    # Assigned but never created (all tasks empty).
                    self._segments.pop(reply_name, None)
            pending = [i for i in pending if i not in completed]
        # Retire the previous round's result segments — the accept
        # references of *this* round's update resolved against them —
        # and retain this round's for the next update.
        for name, _size in self._prev_reply_segments:
            self._unlink_segment(name)
        self._prev_reply_segments = reply_segments
        self._last_results = merged
        self.wire["dispatches"] += len(tasks)
        if hooks.SINKS:
            hooks.emit(
                "shard.dispatch",
                {
                    "phase": "round",
                    "stratum": self._stratum,
                    "round": self._round,
                    "tasks": len(tasks),
                    "workers": len(self._workers),
                    "transport": self.transport,
                    "pipe_bytes": self.wire["pipe_bytes"] - pipe_before,
                    "shm_bytes": self.wire["shm_bytes"] - shm_before,
                    "segments": len(reply_segments),
                },
            )
        return merged

    def _push_update(self, update):
        """Record one accepted-tuple update: object refs always (the
        laggard/inline source of truth), accept references when the
        tuples map back into the previous round's results."""
        entry = {
            "objects": [(name, list(tuples)) for name, tuples in update],
            "encoded": None,
            "refs": self._translate_update(update),
        }
        self._updates.append(entry)

    def _translate_update(self, update):
        """Map accepted tuple *objects* back to ``[task, row]`` pairs in
        the previous round's merged results (coverage sweeping preserves
        identity).  Returns ``None`` — forcing the inline path — when
        any tuple fails to map or the transport cannot resolve refs."""
        if self.transport != "shm" or self._last_results is None:
            return None
        id_map = {}
        for task, tuples in enumerate(self._last_results):
            if tuples:
                for row, gt in enumerate(tuples):
                    id_map[id(gt)] = (task, row)
        refs = []
        for name, tuples in update:
            pairs = []
            for gt in tuples:
                ref = id_map.get(id(gt))
                if ref is None:
                    return None
                pairs.append([ref[0], ref[1]])
            refs.append([name, pairs])
        return refs

    def _encoded_update(self, entry):
        if entry["encoded"] is None:
            entry["encoded"] = [
                [name, encode_tuple_batch(tuples)]
                for name, tuples in entry["objects"]
            ]
        return entry["encoded"]

    def _update_field(self, worker):
        """The update portion of one worker's dispatch frame: nothing
        for a replica that is current, accept references for one
        exactly one round behind, the full missing suffix inline for a
        laggard or replacement."""
        total = len(self._updates)
        missing = total - worker.synced
        if missing <= 0:
            return None
        latest = self._updates[-1]
        if missing == 1 and latest["refs"] is not None:
            return {
                "accept": latest["refs"],
                "prev": list(self._prev_reply_segments),
            }
        return {
            "inline": [
                self._encoded_update(entry)
                for entry in self._updates[worker.synced :]
            ]
        }

    # -- plumbing ---------------------------------------------------------

    def _dispatch(self, worker, tasks_total, assign, seminaive):
        """Send one round control frame; returns the reply-segment name
        assigned to the worker (``None`` under the pipe transport)."""
        reply_name = (
            self._assign_segment_name() if self.transport == "shm" else None
        )
        message = {
            "op": "round",
            "round": self._round,
            "seminaive": seminaive,
            "tasks_total": tasks_total,
            "assign": assign,
            "update": self._update_field(worker),
            "reply": reply_name,
        }
        try:
            fault_point("shard_dispatch")
            self._send_bytes(worker, dump_payload(message))
        except (OSError, ValueError, ReproError) as error:
            if reply_name is not None:
                self._segments.pop(reply_name, None)
            # A send that fails because the process died is a crash;
            # pipe trouble with a live worker is dispatch failure.
            reason = "dispatch" if worker.process.is_alive() else "crash"
            raise _WorkerFailure(
                reason, "shard worker %s is gone: %s" % (worker.name, error)
            ) from error
        worker.synced = len(self._updates)
        return reply_name

    def _collect_results(self, reply, reply_name):
        """The ``{task index: batch}`` map of one worker reply, read
        from its segment (retained for accept references) or straight
        off the pipe frame."""
        if self.transport != "shm":
            return reply.get("results", {})
        if not reply.get("shm"):
            return {}
        size = reply["size"]
        payload = self._read_segment(reply_name, size, retain=True)
        self.wire["shm_bytes"] += size
        self.wire["segments"] += 1
        return payload

    def _send(self, worker, message):
        try:
            self._send_bytes(worker, dump_payload(message))
        except (OSError, ValueError) as error:
            raise _WorkerFailure(
                "dispatch", "shard worker %s is gone: %s" % (worker.name, error)
            ) from error

    def _send_bytes(self, worker, data):
        worker.connection.send_bytes(data)
        self.wire["pipe_bytes"] += len(data)

    def _receive(self, worker, deadline=None):
        """Deadline-bounded receive with backed-off liveness polling.

        Raises :class:`_WorkerFailure` (reason ``crash``) as soon as
        the worker process is observed dead with nothing left to read,
        or (reason ``hang``) when the deadline expires on a live but
        silent worker — which is then killed so its slot can be healed.
        Worker-reported evaluation errors (``ok: False``) raise
        :class:`ShardError`: they are deterministic, so a retry
        elsewhere would fail identically.
        """
        if deadline is None:
            deadline = self.recv_deadline
        connection = worker.connection
        process = worker.process
        expires = time.monotonic() + deadline
        interval = self.poll_floor
        while True:
            remaining = expires - time.monotonic()
            try:
                if connection.poll(min(interval, max(0.0, remaining))):
                    data = connection.recv_bytes()
                    self.wire["pipe_bytes"] += len(data)
                    reply = load_payload(data)
                    if not reply.get("ok"):
                        raise ShardError(
                            "shard worker %s failed: %s"
                            % (worker.name, reply.get("error", "unknown error"))
                        )
                    return reply
            except (EOFError, OSError) as error:
                raise _WorkerFailure(
                    "crash",
                    "shard worker %s died mid-round (exit code %r)"
                    % (worker.name, process.exitcode),
                ) from error
            if not process.is_alive():
                # Dead — but drain a reply it may have flushed before
                # exiting rather than discarding finished work.
                try:
                    if connection.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                raise _WorkerFailure(
                    "crash",
                    "shard worker %s died mid-round (exit code %r)"
                    % (worker.name, process.exitcode),
                )
            if remaining <= 0:
                process.kill()
                process.join(timeout=2.0)
                raise _WorkerFailure(
                    "hang",
                    "shard worker %s unresponsive for %.1fs (killed)"
                    % (worker.name, deadline),
                )
            # Quiet wakeup: back off before the next liveness check.
            interval = min(interval * 2.0, self.poll_ceiling)


# -- worker side -------------------------------------------------------------


class _WorkerStatSink:
    """Worker-side observability aggregator.

    Workers must not stream events over the pipe (that would serialize
    the hot path on exactly the IPC this module removes), but dropping
    them made ``explain --profile`` blind to worker-side operator work.
    So the worker folds its own events locally — ``plan.operator``
    keyed by (clause, variant, step), ``kernel.batch`` additionally by
    fast path — and the parent drains the totals at stratum end.
    """

    def __init__(self):
        self.operators = {}
        self.kernel = {}

    def __call__(self, kind, fields):
        if kind == "plan.operator":
            key = (fields.get("clause"), fields.get("variant"), fields.get("step"))
            entry = self.operators.get(key)
            if entry is None:
                entry = self.operators[key] = {
                    "clause": fields.get("clause"),
                    "variant": fields.get("variant"),
                    "step": fields.get("step"),
                    "op": fields.get("op"),
                    "predicate": fields.get("predicate"),
                    "count": 0,
                    "in": 0,
                    "source": 0,
                    "selected": 0,
                    "out": 0,
                    "duration_s": 0.0,
                }
            entry["count"] += 1
            entry["in"] += fields.get("in", 0)
            entry["source"] += fields.get("source", 0)
            entry["selected"] += fields.get("selected", 0)
            entry["out"] += fields.get("out", 0)
            entry["duration_s"] += fields.get("duration_s", 0.0)
        elif kind == "kernel.batch":
            key = (
                fields.get("clause"),
                fields.get("variant"),
                fields.get("step"),
                fields.get("fast_path"),
            )
            entry = self.kernel.get(key)
            if entry is None:
                entry = self.kernel[key] = {
                    "clause": fields.get("clause"),
                    "variant": fields.get("variant"),
                    "step": fields.get("step"),
                    "fast_path": fields.get("fast_path"),
                    "count": 0,
                    "size": 0,
                    "hits": 0,
                }
            entry["count"] += 1
            entry["size"] += fields.get("size", 0)
            entry["hits"] += fields.get("hits", 0)

    def drain(self):
        operators = list(self.operators.values())
        kernel = list(self.kernel.values())
        self.operators = {}
        self.kernel = {}
        return operators, kernel


def _worker_send(connection, message):
    connection.send_bytes(dump_payload(message))


def _worker_read_segment(name, size):
    """Attach, unpickle, detach — the worker never unlinks (segments
    are parent-owned)."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        view = segment.buf[:size]
        try:
            return load_payload(view)
        finally:
            view.release()
    finally:
        segment.close()


def _worker_write_segment(name, data):
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name, create=True, size=len(data))
    try:
        segment.buf[: len(data)] = data
    finally:
        segment.close()


def _resolve_accept_refs(refs, prev_segments, retained):
    """Rebuild an accepted-tuple update from ``[task, row]`` references:
    the worker's own derived objects where it evaluated the task,
    selective decodes of the previous round's result segments
    elsewhere.  Returns the ordered ``[(predicate, [tuples])]`` list."""
    needed = {}  # task -> [row, ...] not resolvable locally
    for _name, pairs in refs:
        for task, row in pairs:
            if task not in retained:
                needed.setdefault(task, []).append(row)
    remote = {}  # (task, row) -> tuple
    if needed:
        batches = {}
        for name, size in prev_segments:
            batches.update(_worker_read_segment(name, size))
        for task, rows in needed.items():
            batch = batches.get(task)
            if batch is None:
                raise ValueError(
                    "accept reference to task %d missing from the previous "
                    "round's result segments" % task
                )
            unique = sorted(set(rows))
            for row, gt in zip(unique, decode_tuple_batch_rows(batch, unique)):
                remote[(task, row)] = gt
    update = []
    for name, pairs in refs:
        tuples = []
        for task, row in pairs:
            own = retained.get(task)
            tuples.append(own[row] if own is not None else remote[(task, row)])
        update.append((name, tuples))
    return update


def _disable_worker_shm_tracking():
    """Keep the worker's resource tracker out of segment lifecycle.

    Segments are parent-owned: the parent unlinks every name it
    registers, and its own resource tracker is the safety net for a
    SIGKILLed parent.  Workers, however, *attach* to those segments,
    and attaching also registers the name with the attaching process's
    tracker.  Under ``spawn`` each worker has a private tracker that
    dies with it — and on the way out it would "clean up" (unlink)
    segments the parent and surviving workers still need, turning a
    healed worker loss into a corrupted stratum.  Dropping
    shared-memory registrations in workers leaves exactly one owner.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register


def _worker_main(connection, bootstrap):
    """Shard worker loop: rebuild the evaluator, replicate the
    environment, answer round requests until told to stop."""
    # Fault injection belongs to the parent; a forked worker must not
    # re-fire inherited injected faults.  Observability is replaced,
    # not inherited: when the parent was observing at pool start the
    # worker aggregates its own events for the stratum-end flush,
    # otherwise events are disabled entirely.
    import gc

    from repro.util import hooks

    _disable_worker_shm_tracking()

    # The evaluator allocates heavily but acyclically (tuples, zones,
    # batches are refcount-collected); cycle detection in every worker
    # multiplies the collector's sweep cost by the pool size for no
    # reclaim.  Freeze the inherited/bootstrapped heap out of the
    # collector's view and switch cycle detection off for the worker's
    # lifetime — worth ~8% of round wall on the parallel benchmark.
    gc.freeze()
    gc.disable()

    hooks.FAULT_HOOK = None
    stat_sink = None
    if bootstrap.get("observe"):
        stat_sink = _WorkerStatSink()
        hooks.SINKS = (stat_sink,)
    else:
        hooks.SINKS = ()

    from repro.core.evaluation import ProgramEvaluator
    from repro.core.parser import parse_program
    from repro.gdb.parser import parse_database
    from repro.gdb.relation import GeneralizedRelation

    try:
        program = parse_program(bootstrap["program"])
        edb = parse_database(bootstrap["edb"])
        evaluator = ProgramEvaluator(
            program, edb, evaluation=bootstrap["evaluation"]
        )
        env = evaluator.initial_environment()
        _worker_send(
            connection,
            {"ok": True, "plan_fingerprint": evaluator.plan_fingerprint()},
        )
    except Exception as error:  # pragma: no cover - startup failure path
        try:
            _worker_send(connection, {"ok": False, "error": repr(error)})
        finally:
            connection.close()
        return

    stratum_index = 0
    complements = {}
    delta = None  # {predicate: [GeneralizedTuple]}
    retained = {}  # global task index -> derived tuples (last round)
    retained_round = 0

    def decode_relation(payload):
        return GeneralizedRelation(
            payload["temporal_arity"],
            payload["data_arity"],
            decode_tuple_batch(payload["batch"]),
        )

    while True:
        try:
            message = load_payload(connection.recv_bytes())
        except (EOFError, OSError):
            break
        op = message.get("op")
        if op == "stop":
            break
        if op == "hang":  # chaos testing: wedge until killed
            while True:  # pragma: no cover - exits only by SIGKILL
                time.sleep(60.0)
        try:
            if op == "stratum":
                stratum_index = message["stratum"]
                if "shm" in message:
                    payload = _worker_read_segment(
                        message["shm"], message["size"]
                    )
                else:
                    payload = message["payload"]
                for name, encoded in payload["env"].items():
                    env[name] = decode_relation(encoded)
                complements = {
                    name: decode_relation(encoded)
                    for name, encoded in payload["complements"].items()
                }
                delta = None
                if payload["delta"] is not None:
                    delta = {
                        name: decode_tuple_batch(batch)
                        for name, batch in payload["delta"].items()
                    }
                retained = {}
                retained_round = 0
                _worker_send(connection, {"ok": True})
            elif op == "round":
                # Apply whatever updates this replica has missed, in
                # parent order; the last one is the round's semi-naive
                # delta (a replica that kept up gets exactly one, as
                # accept references into the last round's results).
                update = message["update"]
                if update is not None:
                    if "accept" in update:
                        rounds = [
                            _resolve_accept_refs(
                                update["accept"], update["prev"], retained
                            )
                        ]
                    else:
                        rounds = [
                            [
                                (name, decode_tuple_batch(batch))
                                for name, batch in encoded
                            ]
                            for encoded in update["inline"]
                        ]
                    for one_round in rounds:
                        delta = {}
                        for name, tuples in one_round:
                            env[name] = env[name].with_tuples(tuples)
                            delta[name] = tuples
                round_no = message["round"]
                if round_no != retained_round:
                    retained = {}
                    retained_round = round_no
                evaluators = evaluator.stratum_evaluators[stratum_index]
                task_list = evaluator.round_tasks(
                    evaluators, delta if message["seminaive"] else None
                )
                if len(task_list) != message["tasks_total"]:
                    raise ValueError(
                        "task-list divergence: worker enumerated %d round "
                        "tasks, parent %d"
                        % (len(task_list), message["tasks_total"])
                    )
                kind, *spec = message["assign"]
                if kind == "block":
                    slot, count = spec
                    total = len(task_list)
                    indices = range(
                        (total * slot) // count, (total * (slot + 1)) // count
                    )
                else:
                    (indices,) = spec
                delta_env = None
                if delta is not None:
                    delta_env = {
                        name: GeneralizedRelation(
                            *evaluator.schemas[name], tuples=tuples
                        )
                        for name, tuples in delta.items()
                    }
                results = {}
                for i in indices:
                    index, position = task_list[i]
                    clause = evaluators[index]
                    if position is None:
                        relation = clause.evaluate(env, complements=complements)
                    else:
                        relation = clause.evaluate(
                            env,
                            delta=delta_env,
                            delta_position=position,
                            complements=complements,
                        )
                    retained[i] = relation.tuples
                    if relation.tuples:
                        results[i] = encode_tuple_batch(relation.tuples)
                if message["reply"] is not None:
                    reply = {"ok": True, "round": round_no, "shm": None, "size": 0}
                    if results:
                        data = dump_payload(results)
                        _worker_write_segment(message["reply"], data)
                        reply["shm"] = message["reply"]
                        reply["size"] = len(data)
                    _worker_send(connection, reply)
                else:
                    _worker_send(
                        connection,
                        {"ok": True, "round": round_no, "results": results},
                    )
            elif op == "flush_stats":
                operators, kernel = (
                    stat_sink.drain() if stat_sink is not None else ([], [])
                )
                _worker_send(
                    connection,
                    {"ok": True, "operators": operators, "kernel": kernel},
                )
            else:
                _worker_send(
                    connection, {"ok": False, "error": "unknown op %r" % (op,)}
                )
        except Exception as error:
            try:
                _worker_send(connection, {"ok": False, "error": repr(error)})
            except (OSError, ValueError):
                break
    try:
        connection.close()
    except OSError:
        pass
