"""Supervised process-pool sharding of one T_GP round (``parallelism > 1``).

Within a round, every clause-variant firing reads only the *previous*
environment (plus the last round's delta), so the firings of one round
are embarrassingly parallel.  The GIL makes threads useless for this
CPU-bound work, so the shards are **processes**: each worker rebuilds
the compiled plans from the program/EDB *texts* (the same canonical
texts the engine fingerprint hashes — the worker verifies its plan
fingerprint against the parent's at startup), replicates the growing
IDB environment from the accepted-tuple updates the parent broadcasts
each round, and evaluates the task subset it is handed.

Determinism is by construction, not by luck:

* the parent enumerates the round's tasks in exactly the sequential
  firing order (stratum clause order, then intensional body position
  order) and reassembles worker results by global task index, so the
  merged ``{predicate: [tuples]}`` dict is element-for-element the one
  the sequential round would have built;
* tuples and relations cross the process boundary as *column batches*
  (:func:`~repro.gdb.store.encode_tuple_batch`): each distinct
  constraint system is serialized once into a per-batch dictionary (in
  its canonical checkpoint JSON form) and rows reference it by index,
  so worker-side evaluation sees value-identical inputs in the same
  order while a round's broadcast ships measurably fewer bytes than
  the old one-JSON-object-per-tuple form (``benchmarks/kernel_bench.py``
  records the ratio).  Checkpoints keep the per-tuple canonical form —
  the batch codec is wire-only.

Supervision
-----------
Long-running fixpoints on real pods lose workers mid-round, so the
pool is supervised rather than trusted:

* every receive is deadline-bounded with liveness polling — a dead
  worker is detected within one poll interval, a *hung* one within
  ``recv_deadline`` seconds (and is then killed);
* a round task is a pure function of the broadcast ``(env, delta)``
  replica, so a failed worker's task slice is simply re-dealt to the
  survivors (or to a freshly respawned replacement) and the
  index-keyed merge stays bit-identical to sequential no matter which
  workers die when;
* replacements are rehydrated from the stored stratum broadcast plus
  the per-round accepted-tuple updates they missed — each worker
  tracks how many updates it has applied (``synced``), and every round
  dispatch carries exactly the missing suffix;
* respawns are capped (``max_restarts`` per pool lifetime).  When the
  pool empties with the cap spent, :class:`ShardPoolLostError` carries
  the per-task results already collected so the caller can finish the
  round sequentially instead of failing the run.

Worker loss, respawn, and retry surface as ``shard.worker`` events on
the bus; the caller emits ``shard.degraded`` when it downshifts.
Observability sinks and fault hooks are otherwise parent-side
concerns: workers clear :data:`repro.util.hooks.SINKS` and the fault
hook at startup, so plan-operator events and injected faults keep
their sequential semantics.  The parent-side chaos sites
(``shard_dispatch``, ``shard_worker_crash``, ``shard_worker_hang`` —
see :mod:`repro.runtime.faults`) let tests kill, wedge, or unplug
specific workers at exact dispatch counts.

The pool prefers the ``fork`` start method (cheap, copy-on-write) and
falls back to ``spawn`` where fork is unavailable; set
``REPRO_PARALLEL_START_METHOD`` to override.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.gdb.store import (
    decode_relation_batch,
    decode_tuple_batch,
    encode_relation_batch,
    encode_tuple_batch,
)
from repro.util import hooks
from repro.util.errors import EvaluationError, ReproError
from repro.util.hooks import fault_point

#: Seconds a worker may stay silent mid-round before the parent
#: declares it hung and kills it.  Liveness is polled throughout, so a
#: worker that *dies* is detected within one poll interval regardless.
DEFAULT_RECV_DEADLINE = 30.0

#: Worker respawns allowed per pool lifetime before a lost worker
#: means a lost pool slot (and an empty pool means degradation).
DEFAULT_MAX_RESTARTS = 2

#: Granularity of the liveness poll inside :meth:`ShardPool._receive`.
_POLL_INTERVAL = 0.05

#: Floor for the startup-handshake deadline: a worker re-parsing and
#: re-compiling a large program is slow but not hung.
_BOOT_DEADLINE = 60.0


class ShardError(EvaluationError):
    """A shard worker failed or disagreed with the parent's plans."""


class ShardPoolLostError(ShardError):
    """The pool emptied and could not be healed within the restart cap.

    ``partial`` is the per-task result list collected before the loss
    (aligned with the round's task list, ``None`` where a result is
    missing — possibly ``None`` itself when the loss happened outside
    a round), so the caller can finish the remaining tasks
    sequentially and keep the run's results bit-identical.
    """

    def __init__(self, message, partial=None, restarts_used=0):
        super().__init__(message)
        self.partial = partial
        self.restarts_used = restarts_used


class _WorkerFailure(Exception):
    """Internal: one worker failed (``reason``: crash/hang/dispatch).

    Never escapes the pool — it marks the worker for discard-and-retry
    inside the supervision loop.
    """

    def __init__(self, reason, detail=""):
        super().__init__(detail or reason)
        self.reason = reason


def _start_method(override=None):
    method = override or os.environ.get("REPRO_PARALLEL_START_METHOD")
    if method:
        return method
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_start_method(allow_none=False)
    )


def _relation_payload(relation):
    return encode_relation_batch(relation)


def _tuples_payload(tuples):
    return encode_tuple_batch(tuples)


class _ShardWorker:
    """One pool slot: the process, the parent pipe end, and how many of
    the stratum's per-round updates the replica has applied."""

    __slots__ = ("process", "connection", "synced")

    def __init__(self, process, connection):
        self.process = process
        self.connection = connection
        self.synced = 0

    @property
    def name(self):
        return self.process.name


class ShardPool:
    """``parallelism`` supervised worker processes evaluating round shards.

    The pool is built lazily from the *texts* of the program and EDB
    (``str(program)`` / ``str(edb)`` round-trip through the parsers —
    the same property the engine fingerprint depends on) so the
    snapshot shipped to workers is trivially picklable under any
    multiprocessing start method.

    ``recv_deadline`` bounds how long a silent-but-alive worker is
    waited on mid-round; ``max_restarts`` caps replacement spawns per
    pool lifetime.  Both default to the module constants when ``None``.
    The pool is a context manager: ``with ShardPool(...) as pool: ...``
    guarantees :meth:`close` on exit.
    """

    def __init__(
        self,
        program_text,
        edb_text,
        evaluation,
        parallelism,
        plan_fingerprint=None,
        start_method=None,
        recv_deadline=None,
        max_restarts=None,
    ):
        if parallelism < 2:
            raise ValueError("a shard pool needs parallelism >= 2")
        self.program_text = program_text
        self.edb_text = edb_text
        self.evaluation = evaluation
        self.parallelism = parallelism
        self.expected_fingerprint = plan_fingerprint
        self.start_method = _start_method(start_method)
        self.recv_deadline = (
            DEFAULT_RECV_DEADLINE if recv_deadline is None else float(recv_deadline)
        )
        if self.recv_deadline <= 0:
            raise ValueError("recv_deadline must be positive")
        self.max_restarts = (
            DEFAULT_MAX_RESTARTS if max_restarts is None else int(max_restarts)
        )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self._workers = []  # [_ShardWorker]
        self._context = None
        self._spawn_seq = 0
        self.restarts_used = 0
        self._round = 0  # rounds dispatched this stratum (for events)
        # Rehydration state for respawned replacements: the last
        # stratum broadcast, and every per-round update applied since.
        self._stratum_message = None
        self._updates = []

    # -- lifecycle --------------------------------------------------------

    def started(self):
        return bool(self._workers)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _spawn(self):
        """Start one worker process; the caller still owes a handshake."""
        if self._context is None:
            self._context = multiprocessing.get_context(self.start_method)
        bootstrap = {
            "program": self.program_text,
            "edb": self.edb_text,
            "evaluation": self.evaluation,
        }
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_end, bootstrap),
            # The sequence number keeps replacement names unique while
            # preserving the repro-shard- prefix leak tests scan for.
            name="repro-shard-%d" % self._spawn_seq,
            daemon=True,
        )
        self._spawn_seq += 1
        process.start()
        child_end.close()
        return _ShardWorker(process, parent_end)

    def _handshake(self, worker):
        """Wait for the worker's ready message and verify its plans.

        Raises :class:`_WorkerFailure` when the worker dies or stalls,
        :class:`ShardError` on a fingerprint mismatch (a configuration
        error no respawn can heal).
        """
        ready = self._receive(
            worker, deadline=max(_BOOT_DEADLINE, self.recv_deadline)
        )
        fingerprint = ready.get("plan_fingerprint")
        if (
            self.expected_fingerprint is not None
            and fingerprint != self.expected_fingerprint
        ):
            raise ShardError(
                "shard worker compiled different plans than the parent "
                "(plan fingerprint mismatch %r != %r) — the program/EDB "
                "texts do not round-trip" % (fingerprint, self.expected_fingerprint)
            )

    def ensure_started(self):
        if self._workers:
            return
        try:
            for _ in range(self.parallelism):
                self._workers.append(self._spawn())
            for worker in list(self._workers):
                self._handshake(worker)
        except _WorkerFailure as failure:
            self.close()
            raise ShardError(
                "shard pool startup failed: %s" % failure
            ) from failure
        except Exception:
            self.close()
            raise

    def close(self):
        """Stop the workers; safe to call repeatedly.

        Escalates per worker: cooperative stop, ``terminate()`` when
        the join times out, ``kill()`` when even SIGTERM is ignored
        (a worker wedged in uninterruptible state).  The parent pipe
        end is closed unconditionally so no descriptor outlives a dead
        worker.
        """
        workers, self._workers = self._workers, []
        self._stratum_message = None
        self._updates = []
        for worker in workers:
            try:
                worker.connection.send({"op": "stop"})
            except (OSError, ValueError):
                pass
        for worker in workers:
            try:
                worker.connection.close()
            except OSError:
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)

    # -- supervision ------------------------------------------------------

    def _discard(self, worker, reason, detail=""):
        """Forget a failed worker: kill it if needed, close its pipe,
        and announce the loss on the bus."""
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.connection.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=2.0)
        if hooks.SINKS:
            hooks.emit(
                "shard.worker",
                {
                    "phase": "lost",
                    "worker": worker.name,
                    "reason": reason,
                    "exitcode": worker.process.exitcode,
                    "round": self._round,
                    "detail": detail,
                },
            )

    def _heal(self):
        """Respawn workers up to the restart cap; returns the live list.

        A replacement is rehydrated through the normal bootstrap
        handshake plus a re-broadcast of the stored stratum context;
        its ``synced`` counter starts at 0, so its first round dispatch
        ships every update the stratum has applied so far.  A
        replacement that itself dies burns its restart credit — that is
        what bounds a crash-looping pod.
        """
        while (
            len(self._workers) < self.parallelism
            and self.restarts_used < self.max_restarts
        ):
            self.restarts_used += 1
            worker = None
            try:
                worker = self._spawn()
                self._handshake(worker)
                if self._stratum_message is not None:
                    self._send(worker, self._stratum_message)
                    self._receive(worker)
            except (_WorkerFailure, OSError) as failure:
                if worker is not None:
                    self._discard(worker, "respawn-failed", str(failure))
                continue
            self._workers.append(worker)
            if hooks.SINKS:
                hooks.emit(
                    "shard.worker",
                    {
                        "phase": "respawn",
                        "worker": worker.name,
                        "restarts_used": self.restarts_used,
                        "round": self._round,
                    },
                )
        return list(self._workers)

    def _inject_worker_faults(self, worker):
        """The deterministic chaos sites, hit once per worker dispatch.

        A triggered ``shard_worker_crash`` SIGKILLs the worker about to
        be dispatched to — a real process death, exercising the real
        broken-pipe/EOF detection.  A triggered ``shard_worker_hang``
        wedges the worker in a sleep loop, exercising the recv
        deadline.  Either way the dispatch itself proceeds normally.
        """
        if hooks.FAULT_HOOK is None:
            return
        try:
            fault_point("shard_worker_crash")
        except Exception:
            worker.process.kill()
            worker.process.join(timeout=2.0)
        try:
            fault_point("shard_worker_hang")
        except Exception:
            try:
                worker.connection.send({"op": "hang"})
            except (OSError, ValueError):
                pass

    # -- round protocol ---------------------------------------------------

    def begin_stratum(self, stratum_index, env, complements, delta, intensional):
        """Broadcast the stratum context: the current IDB relations
        (which a resume may have pre-populated), the negated-predicate
        complements, and the in-flight delta (``None`` outside a
        mid-stratum resume).  The message is retained so replacements
        spawned mid-stratum can be rehydrated from it."""
        self.ensure_started()
        message = {
            "op": "stratum",
            "stratum": stratum_index,
            "env": {
                name: _relation_payload(env[name]) for name in intensional
            },
            "complements": {
                name: _relation_payload(relation)
                for name, relation in complements.items()
            },
            "delta": None
            if delta is None
            else {name: _tuples_payload(tuples) for name, tuples in delta.items()},
        }
        self._stratum_message = message
        self._updates = []
        self._round = 0
        acked = []
        for worker in list(self._workers):
            try:
                self._send(worker, message)
            except _WorkerFailure as failure:
                self._discard(worker, failure.reason, str(failure))
                continue
            acked.append(worker)
        for worker in acked:
            try:
                self._receive(worker)
            except _WorkerFailure as failure:
                self._discard(worker, failure.reason, str(failure))
                continue
            worker.synced = 0
        if len(self._workers) < self.parallelism:
            self._heal()
        if not self._workers:
            raise ShardPoolLostError(
                "every shard worker was lost broadcasting stratum %d "
                "(restart cap %d spent)" % (stratum_index, self.max_restarts),
                partial=None,
                restarts_used=self.restarts_used,
            )

    def run_round(self, tasks, update):
        """Evaluate ``tasks`` (global sequential order) across the
        workers and return the per-task derived tuple lists, reassembled
        in that same order.

        ``update`` is the previous round's accepted-tuple delta as an
        ordered ``[(predicate, [tuples])]`` list (or ``None`` for the
        first round of a stratum); every worker applies it to its
        replica environment — in the parent's insertion order — before
        evaluating, which also makes it the round's semi-naive delta.

        The supervision loop deals the still-pending task indices
        round-robin over the live workers, collects with the deadline,
        discards failures, and repeats until every index has a result —
        healing the pool between attempts.  Because results are keyed
        by global task index and replicas are value-identical, the
        merged list is the sequential one regardless of failures.
        Raises :class:`ShardPoolLostError` (carrying the partial
        results) when the pool empties with the restart cap spent.
        """
        self._round += 1
        if update is not None:
            self._updates.append(
                [[name, _tuples_payload(tuples)] for name, tuples in update]
            )
        merged = [None] * len(tasks)
        pending = list(range(len(tasks)))
        first_attempt = True
        while pending:
            workers = list(self._workers)
            if len(workers) < self.parallelism:
                workers = self._heal()
            if not workers:
                raise ShardPoolLostError(
                    "shard pool lost with %d of %d round task(s) outstanding "
                    "(restart cap %d spent)"
                    % (len(pending), len(tasks), self.max_restarts),
                    partial=merged,
                    restarts_used=self.restarts_used,
                )
            if not first_attempt and hooks.SINKS:
                hooks.emit(
                    "shard.worker",
                    {
                        "phase": "retry",
                        "worker": ",".join(w.name for w in workers),
                        "round": self._round,
                        "tasks": len(pending),
                    },
                )
            first_attempt = False
            count = len(workers)
            dispatched = []  # [(worker, [global task index])]
            for slot, worker in enumerate(workers):
                # Round-robin keeps shard loads level when task costs
                # are skewed toward one end of the list.
                indices = pending[slot::count]
                if not indices:
                    continue
                self._inject_worker_faults(worker)
                try:
                    self._dispatch(worker, [tasks[i] for i in indices])
                except _WorkerFailure as failure:
                    self._discard(worker, failure.reason, str(failure))
                    continue
                dispatched.append((worker, indices))
            completed = set()
            for worker, indices in dispatched:
                try:
                    reply = self._receive(worker)
                except _WorkerFailure as failure:
                    self._discard(worker, failure.reason, str(failure))
                    continue
                for index, batch in zip(indices, reply["results"]):
                    merged[index] = decode_tuple_batch(batch)
                    completed.add(index)
            pending = [i for i in pending if i not in completed]
        return merged

    # -- plumbing ---------------------------------------------------------

    def _dispatch(self, worker, task_list):
        """Send one round slice, piggybacking whatever per-round updates
        this worker's replica has not yet applied (none for a worker
        that has kept up; the whole stratum history for a fresh
        replacement)."""
        missing = self._updates[worker.synced :]
        message = {
            "op": "round",
            "tasks": [list(task) for task in task_list],
            "updates": missing,
        }
        try:
            fault_point("shard_dispatch")
            worker.connection.send(message)
        except (OSError, ValueError, ReproError) as error:
            # A send that fails because the process died is a crash;
            # pipe trouble with a live worker is dispatch failure.
            reason = "dispatch" if worker.process.is_alive() else "crash"
            raise _WorkerFailure(
                reason, "shard worker %s is gone: %s" % (worker.name, error)
            ) from error
        worker.synced = len(self._updates)

    def _send(self, worker, message):
        try:
            worker.connection.send(message)
        except (OSError, ValueError) as error:
            raise _WorkerFailure(
                "dispatch", "shard worker %s is gone: %s" % (worker.name, error)
            ) from error

    def _receive(self, worker, deadline=None):
        """Deadline-bounded receive with liveness polling.

        Raises :class:`_WorkerFailure` (reason ``crash``) as soon as
        the worker process is observed dead with nothing left to read,
        or (reason ``hang``) when the deadline expires on a live but
        silent worker — which is then killed so its slot can be healed.
        Worker-reported evaluation errors (``ok: False``) raise
        :class:`ShardError`: they are deterministic, so a retry
        elsewhere would fail identically.
        """
        if deadline is None:
            deadline = self.recv_deadline
        connection = worker.connection
        process = worker.process
        expires = time.monotonic() + deadline
        while True:
            remaining = expires - time.monotonic()
            try:
                if connection.poll(min(_POLL_INTERVAL, max(0.0, remaining))):
                    reply = connection.recv()
                    if not reply.get("ok"):
                        raise ShardError(
                            "shard worker %s failed: %s"
                            % (worker.name, reply.get("error", "unknown error"))
                        )
                    return reply
            except (EOFError, OSError) as error:
                raise _WorkerFailure(
                    "crash",
                    "shard worker %s died mid-round (exit code %r)"
                    % (worker.name, process.exitcode),
                ) from error
            if not process.is_alive():
                # Dead — but drain a reply it may have flushed before
                # exiting rather than discarding finished work.
                try:
                    if connection.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                raise _WorkerFailure(
                    "crash",
                    "shard worker %s died mid-round (exit code %r)"
                    % (worker.name, process.exitcode),
                )
            if remaining <= 0:
                process.kill()
                process.join(timeout=2.0)
                raise _WorkerFailure(
                    "hang",
                    "shard worker %s unresponsive for %.1fs (killed)"
                    % (worker.name, deadline),
                )


def _worker_main(connection, bootstrap):
    """Shard worker loop: rebuild the evaluator, replicate the
    environment, answer round requests until told to stop."""
    # Observability and fault injection belong to the parent; a forked
    # worker must not double-report to inherited sinks or re-fire
    # injected faults.
    from repro.util import hooks

    hooks.SINKS = ()
    hooks.FAULT_HOOK = None

    from repro.core.evaluation import ProgramEvaluator
    from repro.core.parser import parse_program
    from repro.gdb.parser import parse_database
    from repro.gdb.relation import GeneralizedRelation

    try:
        program = parse_program(bootstrap["program"])
        edb = parse_database(bootstrap["edb"])
        evaluator = ProgramEvaluator(
            program, edb, evaluation=bootstrap["evaluation"]
        )
        env = evaluator.initial_environment()
        connection.send(
            {"ok": True, "plan_fingerprint": evaluator.plan_fingerprint()}
        )
    except Exception as error:  # pragma: no cover - startup failure path
        try:
            connection.send({"ok": False, "error": repr(error)})
        finally:
            connection.close()
        return

    stratum_index = 0
    complements = {}
    delta = None  # {predicate: [GeneralizedTuple]}

    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        op = message.get("op")
        if op == "stop":
            break
        if op == "hang":  # chaos testing: wedge until killed
            while True:  # pragma: no cover - exits only by SIGKILL
                time.sleep(60.0)
        try:
            if op == "stratum":
                stratum_index = message["stratum"]
                for name, payload in message["env"].items():
                    env[name] = decode_relation_batch(payload)
                complements = {
                    name: decode_relation_batch(payload)
                    for name, payload in message["complements"].items()
                }
                delta = None
                if message["delta"] is not None:
                    delta = {
                        name: decode_tuple_batch(batch)
                        for name, batch in message["delta"].items()
                    }
                connection.send({"ok": True})
            elif op == "round":
                # Apply every update this replica has missed, in
                # parent order; the last one is the round's semi-naive
                # delta (a replica that kept up gets exactly one).
                for update in message["updates"]:
                    delta = {}
                    for name, batch in update:
                        tuples = decode_tuple_batch(batch)
                        env[name] = env[name].with_tuples(tuples)
                        delta[name] = tuples
                delta_env = None
                if delta is not None:
                    delta_env = {
                        name: GeneralizedRelation(
                            *evaluator.schemas[name], tuples=tuples
                        )
                        for name, tuples in delta.items()
                    }
                evaluators = evaluator.stratum_evaluators[stratum_index]
                results = []
                for index, position in message["tasks"]:
                    clause = evaluators[index]
                    if position is None:
                        relation = clause.evaluate(env, complements=complements)
                    else:
                        relation = clause.evaluate(
                            env,
                            delta=delta_env,
                            delta_position=position,
                            complements=complements,
                        )
                    results.append(encode_tuple_batch(relation.tuples))
                connection.send({"ok": True, "results": results})
            else:
                connection.send(
                    {"ok": False, "error": "unknown op %r" % (op,)}
                )
        except Exception as error:
            try:
                connection.send({"ok": False, "error": repr(error)})
            except (OSError, ValueError):
                break
    try:
        connection.close()
    except OSError:
        pass
