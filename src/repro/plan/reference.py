"""The reference T_GP clause evaluator (paper Section 4.3, literal).

This is the product-then-select-then-project formulation exactly as
the paper states it — and exactly as the engine executed it before the
compiled plan layer existed: (i) product of the body atom relations,
(ii) unconstrained carrier columns for temporal variables no atom
binds, (iii) conjunction of all constraint atoms, (iv) projection onto
the head.  It is deliberately kept alive, unoptimized, as the oracle
the plan-correctness property tests compare against
(``ProgramEvaluator(…, evaluation="reference")``).
"""

from __future__ import annotations

from repro.constraints.atoms import Comparison, TemporalTerm as ConstraintTerm
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.point import Lrp
from repro.util.errors import SchemaError
from repro.util.hooks import fault_point


class ReferenceClauseEvaluator:
    """Evaluates one normalized clause by the literal product-then-
    select-then-project formulation."""

    def __init__(self, normalized, schemas, intensional):
        self.normalized = normalized
        self.schemas = schemas
        self.head_predicate = normalized.head_predicate
        self.intensional_positions = [
            index
            for index, atom in enumerate(normalized.body_atoms)
            if atom.predicate in intensional
        ]
        self.negated_predicates = {
            atom.predicate for atom in normalized.negated_atoms
        }
        self._validate()

    def _validate(self):
        atoms = list(self.normalized.body_atoms) + list(
            self.normalized.negated_atoms
        )
        for atom in atoms:
            expected = self.schemas.get(atom.predicate)
            if expected is None:
                raise SchemaError("no schema for predicate %r" % atom.predicate)
            if expected != (atom.temporal_arity, atom.data_arity):
                raise SchemaError(
                    "atom %s does not match schema %s of %r"
                    % (atom, expected, atom.predicate)
                )

    # -- evaluation --------------------------------------------------------

    def evaluate(self, env, delta=None, delta_position=None, complements=None):
        """The head relation derived by one T_GP application of this
        clause.  With ``delta``/``delta_position`` set, the atom at
        that body position reads from the delta relations instead
        (semi-naive firing).  ``complements`` supplies, for each
        negated predicate, its exact complement relation — negated
        atoms then join like positive ones (stratified negation)."""
        fault_point("clause")
        normalized = self.normalized
        if self.negated_predicates and complements is None:
            raise SchemaError(
                "clause %s negates %s but no complements were supplied"
                % (normalized, ", ".join(sorted(self.negated_predicates)))
            )
        columns = []        # temporal variable name per relation column
        data_columns = []   # data variable name per data column
        current = GeneralizedRelation(0, 0, [GeneralizedTuple((), ())])

        positive = list(enumerate(normalized.body_atoms))
        sources = [(position, atom, False) for position, atom in positive]
        sources += [(None, atom, True) for atom in normalized.negated_atoms]

        for position, atom, negative in sources:
            if negative:
                relation = complements[atom.predicate]
            else:
                source = env
                if delta is not None and position == delta_position:
                    source = delta
                relation = source.get(atom.predicate)
                if relation is None:
                    relation = GeneralizedRelation.empty(
                        *self.schemas[atom.predicate]
                    )
            relation, atom_data_columns = _restrict_data(relation, atom)
            current = current.product(relation)
            columns.extend(term.var for term in atom.temporal_args)
            data_columns.extend(atom_data_columns)
            if not current.tuples:
                return GeneralizedRelation.empty(
                    len(normalized.head_vars), len(normalized.head_data)
                )

        # Cross-atom data variable sharing: equality selections, then
        # remember only the first occurrence of each variable.
        first_data = {}
        for index, name in enumerate(data_columns):
            if name is None:
                continue
            if name in first_data:
                current = current.select_data_equal(first_data[name], index)
            else:
                first_data[name] = index

        # Extend with unconstrained columns for temporal variables not
        # bound by a body atom (constants, free head variables, and
        # variables occurring only in constraint atoms).
        all_vars = normalized.all_temporal_variables()
        missing = [name for name in all_vars if name not in columns]
        if missing:
            carriers = GeneralizedRelation(
                len(missing),
                0,
                [GeneralizedTuple(tuple(Lrp.constant_carrier() for _ in missing))],
            )
            current = current.product(carriers)
            columns.extend(missing)

        position_of = {name: index for index, name in enumerate(columns)}

        atoms = [
            _lower_constraint(constraint, position_of)
            for constraint in normalized.constraints
        ]
        if atoms:
            current = current.select(atoms)
            if not current.tuples:
                return GeneralizedRelation.empty(
                    len(normalized.head_vars), len(normalized.head_data)
                )

        keep_temporal = [position_of[name] for name in normalized.head_vars]
        keep_data = []
        constant_slots = []
        for slot, term in enumerate(normalized.head_data):
            if term.is_variable():
                keep_data.append(first_data[term.name])
            else:
                constant_slots.append((slot, term.value))
        projected = current.project(keep_temporal, keep_data)
        if constant_slots:
            projected = _weave_data_constants(
                projected, constant_slots, len(normalized.head_data)
            )
        return projected


def _lower_constraint(constraint, position_of):
    """Convert an AST constraint atom to a column-indexed Comparison."""

    def lower(term):
        if term.var is None:
            return ConstraintTerm(None, term.offset)
        return ConstraintTerm(position_of[term.var], term.offset)

    return Comparison(constraint.op, lower(constraint.left), lower(constraint.right))


def _weave_data_constants(relation, constant_slots, final_arity):
    """Insert head data constants at their positions among the
    projected data-variable columns."""
    slots = dict(constant_slots)
    tuples = []
    for gt in relation.tuples:
        data = []
        variable_values = iter(gt.data)
        for slot in range(final_arity):
            if slot in slots:
                data.append(slots[slot])
            else:
                data.append(next(variable_values))
        tuples.append(GeneralizedTuple(gt.lrps, tuple(data), gt.constraints))
    return GeneralizedRelation(relation.temporal_arity, final_arity, tuples)


def _restrict_data(relation, atom):
    """Apply data-constant selections and within-atom data variable
    equalities; returns ``(relation, data_column_names)`` where the
    names list has None for constant positions (kept but anonymous)."""
    names = []
    seen = {}
    for index, term in enumerate(atom.data_args):
        if term.is_variable():
            if term.name in seen:
                relation = relation.select_data_equal(seen[term.name], index)
                names.append(None)
            else:
                seen[term.name] = index
                names.append(term.name)
        else:
            relation = relation.select_data_constant(index, term.value)
            names.append(None)
    return relation, names
