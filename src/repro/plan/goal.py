"""Goal plans for Templog conjunctions.

A Templog goal conjunction intersects eventually periodic sets, which
is commutative — so the order is a pure cost decision.  A
:class:`GoalPlan` evaluates the cheap, selective elements first
(shifted atoms, whose extensions are direct lookups in the model) and
the nested ``◇`` groups last (each is an up-closure, i.e. the *least*
selective shape an element can take, and the most expensive to
build), short-circuiting as soon as the running intersection is
empty.  Nested conjunctions under ``◇`` are planned recursively.
"""

from __future__ import annotations

from repro.lrp.periodic_set import EventuallyPeriodicSet


class GoalPlan:
    """A compiled evaluation order for one goal conjunction."""

    __slots__ = ("elements",)

    def __init__(self, elements, diamond_type):
        ordered = sorted(
            enumerate(elements),
            key=lambda pair: (isinstance(pair[1], diamond_type), pair[0]),
        )
        self.elements = tuple(element for _, element in ordered)

    def evaluate(self, evaluate_element):
        """Intersect the element sets in plan order;
        ``evaluate_element`` maps one goal element to its set."""
        result = EventuallyPeriodicSet.all()
        for element in self.elements:
            result = result & evaluate_element(element)
            if result.is_empty():
                break
        return result
