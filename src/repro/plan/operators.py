"""Physical operators of compiled clause plans.

A compiled variant is a linear pipeline of steps over a growing
working set of :class:`~repro.gdb.tuple.GeneralizedTuple`:

* :class:`JoinStep` joins the working set with one body atom's
  relation (or, for negated atoms, with the predicate's exact
  complement — negation as anti-join).  Within-atom data-constant and
  data-equality selections are applied to the source relation first
  (and cached per source relation), cross-atom data-variable sharing
  is enforced through hash buckets, and every constraint atom whose
  columns are bound by this step is conjoined into the pair's zone in
  the same single closure (:meth:`GeneralizedTuple.joined`).
* :class:`CarrierStep` appends unconstrained carrier columns for
  temporal variables no atom binds (head constants and offsets,
  constraint-only variables) and conjoins the constraint atoms that
  become placeable with them (:meth:`GeneralizedTuple.extended`).
* :class:`Projection` is fused into the pipeline's tail: each
  surviving tuple is projected onto the head columns and head data
  constants are woven in, without materializing an intermediate
  relation.

Steps are compiled once per clause (per delta position) by
:mod:`repro.plan.compiler` and executed many times; all name → column
resolution happens at compile time, execution touches only integers.
"""

from __future__ import annotations

import time

from repro.gdb import kernel
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.util import hooks

_UNIT = GeneralizedTuple((), ())


class JoinStep:
    """Join the working set with one source atom's relation."""

    __slots__ = (
        "position",
        "predicate",
        "negated",
        "temporal_vars",
        "data_names",
        "const_sels",
        "eq_sels",
        "match_pairs",
        "atoms",
        "token",
        "_cache",
    )

    def __init__(self, position, predicate, negated, temporal_vars, data_names,
                 const_sels, eq_sels, match_pairs):
        self.position = position          # body position; None for negated atoms
        self.predicate = predicate
        self.negated = negated
        self.temporal_vars = tuple(temporal_vars)
        self.data_names = tuple(data_names)
        self.const_sels = tuple(const_sels)    # (local data col, value)
        self.eq_sels = tuple(eq_sels)          # (local first col, local dup col)
        self.match_pairs = tuple(match_pairs)  # (global bound col, local col)
        self.atoms = ()                        # Comparisons, combined column space
        self.token = kernel.next_token()       # template-cache keyspace
        self._cache = None                     # (source relation, restricted tuples)

    @property
    def fast_path(self):
        """The join strategy this step executes: ``hash`` when shared
        data variables bucket the source, ``fused-closure`` when only
        pushed-down constraint atoms refine the pairs (one closure per
        distinct template), ``product`` otherwise."""
        if self.match_pairs:
            return "hash"
        if self.atoms:
            return "fused-closure"
        return "product"

    def source_tuples(self, relation):
        """The source tuples after within-atom selections, cached per
        source relation (relations are immutable value objects, so an
        identity hit can never be stale)."""
        if not self.const_sels and not self.eq_sels:
            return relation.tuples
        cached = self._cache
        if cached is not None and cached[0] is relation:
            return cached[1]
        if self.const_sels:
            column, value = self.const_sels[0]
            tuples = [
                relation.tuples[k]
                for k in relation.data_index(column).get(value, ())
            ]
            for column, value in self.const_sels[1:]:
                tuples = [gt for gt in tuples if gt.data[column] == value]
        else:
            tuples = list(relation.tuples)
        for first, dup in self.eq_sels:
            tuples = [gt for gt in tuples if gt.data[first] == gt.data[dup]]
        self._cache = (relation, tuples)
        return tuples

    def apply(self, current, relation, stats=None):
        """One join: returns the new working set (possibly empty)."""
        tuples = self.source_tuples(relation)
        if not tuples:
            return []
        if len(current) == 1 and current[0] is _UNIT and not self.match_pairs:
            # First join against the unit tuple: the pair IS the source
            # tuple; only pushed-down constraints need conjoining.
            if not self.atoms:
                if stats is not None:
                    stats["size"] = stats.get("size", 0) + len(tuples)
                return tuples if type(tuples) is list else list(tuples)
            refined = kernel.select_batch(tuples, self.atoms, self.token, stats)
            return [gt for gt in refined if gt is not None]
        if self.match_pairs:
            local_cols = [local for (_, local) in self.match_pairs]
            buckets = {}
            for b in tuples:
                key = tuple(b.data[c] for c in local_cols)
                buckets.setdefault(key, []).append(b)
            bound_cols = [bound for (bound, _) in self.match_pairs]
            pairs = []
            for a in current:
                key = tuple(a.data[c] for c in bound_cols)
                for b in buckets.get(key, ()):
                    pairs.append((a, b))
        else:
            pairs = [(a, b) for a in current for b in tuples]
        joined = kernel.join_batch(pairs, self.atoms, self.token, stats)
        return [gt for gt in joined if gt is not None]


class CarrierStep:
    """Append unconstrained carrier columns and conjoin constraints."""

    __slots__ = ("names", "atoms", "token")

    def __init__(self, names, atoms):
        self.names = tuple(names)
        self.atoms = tuple(atoms)
        self.token = kernel.next_token()

    def apply(self, current, stats=None):
        extended = kernel.extend_batch(
            current, len(self.names), self.atoms, self.token, stats
        )
        return [gt for gt in extended if gt is not None]


class Projection:
    """The fused final projection onto the head schema.

    ``shifts`` holds one offset per kept temporal column: head columns
    the compiler resolved as *aliases* (``v = u + c`` with ``u`` bound
    by an atom) project the base column and shear it by ``c`` — exact
    and closure-free (:meth:`GeneralizedTuple.shift_column`) instead of
    materializing a carrier column and re-closing the zone."""

    __slots__ = (
        "keep_temporal",
        "shifts",
        "keep_data",
        "constant_slots",
        "head_schema",
        "sheared",
        "token",
    )

    def __init__(self, keep_temporal, shifts, keep_data, constant_slots,
                 head_schema):
        self.keep_temporal = tuple(keep_temporal)
        self.shifts = tuple(shifts)                  # per kept temporal column
        self.keep_data = tuple(keep_data)
        self.constant_slots = tuple(constant_slots)  # (final slot, value)
        self.head_schema = head_schema               # (temporal, data) arities
        self.sheared = tuple(
            (position, offset)
            for position, offset in enumerate(self.shifts)
            if offset
        )
        self.token = kernel.next_token()

    def apply(self, current, stats=None):
        temporal_arity, data_arity = self.head_schema
        result = []
        slots = dict(self.constant_slots)
        batches = kernel.project_batch(
            current, self.keep_temporal, self.keep_data, self.sheared,
            self.token, stats,
        )
        for projected_batch in batches:
            for projected in projected_batch:
                if slots:
                    data = []
                    values = iter(projected.data)
                    for slot in range(data_arity):
                        if slot in slots:
                            data.append(slots[slot])
                        else:
                            data.append(next(values))
                    projected = projected.with_data(tuple(data))
                result.append(projected)
        return GeneralizedRelation._trusted(temporal_arity, data_arity, result)


class PlanVariant:
    """One compiled pipeline: steps, projection, and the column layout
    they were compiled against (kept for :mod:`repro.plan.explain`).

    ``clause`` and ``variant_label`` identify the pipeline in operator
    events and profiles; they are stamped by
    :class:`~repro.plan.compiler.ClausePlan` after compilation."""

    __slots__ = (
        "seed_position",
        "steps",
        "projection",
        "columns",
        "data_names",
        "clause",
        "variant_label",
    )

    def __init__(self, seed_position, steps, projection, columns, data_names):
        self.seed_position = seed_position
        self.steps = tuple(steps)
        self.projection = projection
        self.columns = tuple(columns)
        self.data_names = tuple(data_names)
        self.clause = None
        self.variant_label = (
            "naive" if seed_position is None else "delta@%d" % seed_position
        )

    def execute(self, relation_for):
        """Run the pipeline; ``relation_for(step)`` resolves each
        JoinStep's source relation (env / delta / complement), or None
        for an absent predicate."""
        if hooks.SINKS:
            return self._execute_observed(relation_for)
        empty = GeneralizedRelation.empty(*self.projection.head_schema)
        current = [_UNIT]
        for step in self.steps:
            if type(step) is CarrierStep:
                current = step.apply(current)
            else:
                relation = relation_for(step)
                if relation is None or not relation.tuples:
                    return empty
                current = step.apply(current, relation)
            if not current:
                return empty
        return self.projection.apply(current)

    def _execute_observed(self, relation_for):
        """The same pipeline, emitting one ``plan.operator`` event per
        step with input/output cardinalities and wall time.  ``in_``
        counts working-set tuples entering the step, ``source`` the raw
        source relation, ``selected`` the source after pushed-down
        selections, ``out`` the working set leaving the step."""
        empty = GeneralizedRelation.empty(*self.projection.head_schema)
        current = [_UNIT]
        for index, step in enumerate(self.steps):
            started = time.perf_counter()
            fields = {
                "clause": self.clause,
                "variant": self.variant_label,
                "step": index,
                "in": 0 if len(current) == 1 and current[0] is _UNIT else len(current),
            }
            batch_stats = {}
            if type(step) is CarrierStep:
                fields["op"] = "carrier"
                current = step.apply(current, batch_stats)
            else:
                fields["op"] = "anti-join" if step.negated else "join"
                fields["predicate"] = step.predicate
                relation = relation_for(step)
                if relation is None or not relation.tuples:
                    fields.update(
                        source=0, selected=0, out=0,
                        duration_s=time.perf_counter() - started,
                    )
                    hooks.emit("plan.operator", fields)
                    return empty
                fields["source"] = len(relation.tuples)
                fields["selected"] = len(step.source_tuples(relation))
                current = step.apply(current, relation, batch_stats)
            fields["out"] = len(current)
            fields["duration_s"] = time.perf_counter() - started
            hooks.emit("plan.operator", fields)
            self._emit_batch(step, index, batch_stats)
            if not current:
                return empty
        started = time.perf_counter()
        batch_stats = {}
        result = self.projection.apply(current, batch_stats)
        hooks.emit(
            "plan.operator",
            {
                "clause": self.clause,
                "variant": self.variant_label,
                "step": len(self.steps),
                "op": "projection",
                "predicate": None,
                "in": len(current),
                "out": len(result.tuples),
                "duration_s": time.perf_counter() - started,
            },
        )
        self._emit_batch(self.projection, len(self.steps), batch_stats)
        return result

    def _emit_batch(self, step, index, batch_stats):
        """One ``kernel.batch`` event per executed step: how many
        tuples the batch kernel saw and how many rode a memoized
        template, plus the join fast path taken (``carrier`` /
        ``projection`` for the non-join steps)."""
        if type(step) is JoinStep:
            fast_path = step.fast_path
        elif type(step) is CarrierStep:
            fast_path = "carrier"
        else:
            fast_path = "projection"
        hooks.emit(
            "kernel.batch",
            {
                "clause": self.clause,
                "variant": self.variant_label,
                "step": index,
                "size": batch_stats.get("size", 0),
                "hits": batch_stats.get("hits", 0),
                "fast_path": fast_path,
            },
        )
