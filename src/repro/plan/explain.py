"""Rendering compiled plans and fingerprinting them.

The ``repro explain`` CLI subcommand prints, per clause, every
compiled variant as a numbered pipeline; :func:`plan_fingerprint`
hashes the same rendering, so the fingerprint changes exactly when a
plan-visible compilation decision changes — checkpoints store it and
refuse to resume under a different plan (bit-identical replay).
"""

from __future__ import annotations

import hashlib

from repro.plan.operators import CarrierStep


def _format_step(step, number):
    if isinstance(step, CarrierStep):
        line = "%d. carriers [%s]" % (number, ", ".join(step.names))
    else:
        kind = "anti-join ~" if step.negated else "scan"
        line = "%d. %s %s -> [%s]" % (
            number,
            kind,
            step.predicate,
            ", ".join(step.temporal_vars),
        )
        details = []
        for column, value in step.const_sels:
            details.append("data[%d] = %r" % (column, value))
        for first, dup in step.eq_sels:
            details.append("data[%d] = data[%d]" % (first, dup))
        for bound, local in step.match_pairs:
            details.append("match col %d ~ data[%d]" % (bound, local))
        if details:
            line += " where " + ", ".join(details)
    if step.atoms:
        line += " apply " + " & ".join(str(atom) for atom in step.atoms)
    return line


def format_variant(variant, label):
    """Render one compiled pipeline as indented text lines."""
    lines = ["  plan %s:" % label]
    for number, step in enumerate(variant.steps, 1):
        lines.append("    " + _format_step(step, number))
    joins = [
        "%s %s" % (step.predicate, step.fast_path)
        for step in variant.steps
        if not isinstance(step, CarrierStep)
    ]
    if joins:
        lines.append("    fast path: " + ", ".join(joins))
    projection = variant.projection
    head_cols = ", ".join(
        variant.columns[index] if not offset
        else "%s%+d" % (variant.columns[index], offset)
        for index, offset in zip(projection.keep_temporal, projection.shifts)
    )
    parts = ["    -> project [%s" % head_cols]
    if projection.keep_data or projection.constant_slots:
        rendered = {}
        for slot, value in projection.constant_slots:
            rendered[slot] = repr(value)
        data_iter = iter(projection.keep_data)
        _, data_arity = projection.head_schema
        data_cols = []
        for slot in range(data_arity):
            if slot in rendered:
                data_cols.append(rendered[slot])
            else:
                name = variant.data_names[next(data_iter)]
                data_cols.append(name if name is not None else "?")
        parts.append("; " + ", ".join(data_cols))
    parts.append("]")
    lines.append("".join(parts))
    return lines


def format_plan(plan):
    """Render every variant of one :class:`ClausePlan`."""
    lines = ["clause: %s" % plan.normalized]
    for key in sorted(plan.variants, key=lambda k: (k is not None, k)):
        variant = plan.variants[key]
        label = "naive" if key is None else "semi-naive, delta @ body position %d" % key
        lines.extend(format_variant(variant, label))
    return "\n".join(lines)


def format_program_plans(plans):
    """Render the plans of a whole program (one block per clause)."""
    return "\n\n".join(format_plan(plan) for plan in plans)


def plan_fingerprint(plans):
    """A stable digest of the compiled plans: sha256 over the full
    textual rendering.  Recorded in checkpoints so a resume under
    different plans (different join order, pushdown, …) is rejected
    instead of silently diverging."""
    digest = hashlib.sha256()
    digest.update(format_program_plans(plans).encode("utf-8"))
    return digest.hexdigest()
