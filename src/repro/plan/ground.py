"""Ground-clause plans for the Datalog1S frontier evaluator.

The previous evaluator instantiated every clause over the active data
domain upfront (``|domain|^k`` ground rules per clause with ``k`` data
variables) and re-scanned them all at every time slice.  A
:class:`GroundClausePlan` compiles the clause body once instead and
enumerates data substitutions *driven by the facts actually present*:

* positive body atoms are matched first, greedily ordered so atoms
  with the most constants and already-bound variables go early — each
  candidate fact binds variables by unification, so sparse slices are
  never multiplied out over the full domain;
* variables bound by no positive atom (head-only or negation-only
  variables) are enumerated over the active domain, exactly as the
  old grounding did — positive atoms cannot constrain them, so the
  semantics coincide;
* negated atoms are membership checks, placed as early as their
  variables allow (fully-bound ones right after the positives,
  the rest after the domain enumeration).

The time coordinate stays the caller's business: each body atom
carries an opaque ``time_key`` (a relative offset or an absolute
time) and matching consults ``facts_at(predicate, time_key)``, which
returns the set of data tuples true there — or ``None`` to veto the
body entirely (the evaluator's out-of-window convention).
"""

from __future__ import annotations

import itertools

_MISSING = object()


class GroundClausePlan:
    """A compiled matcher for one Datalog1S clause body."""

    __slots__ = ("steps", "ground_checks", "domain")

    def __init__(self, head_data_terms, body, domain):
        """``body`` is a list of ``(predicate, time_key, data_terms,
        negative)``; ``head_data_terms`` contributes the variables the
        head needs bound; ``domain`` is the active data domain."""
        self.domain = tuple(domain)
        variables = {
            term.name for term in head_data_terms if term.is_variable()
        }
        for (_, _, data_terms, _) in body:
            variables |= {
                term.name for term in data_terms if term.is_variable()
            }

        positives = [entry for entry in body if not entry[3]]
        negatives = [entry for entry in body if entry[3]]

        if not variables:
            # Fully ground clause: matching degenerates to membership
            # checks, with positives first (cheap vetoes).
            self.steps = None
            self.ground_checks = tuple(
                (
                    predicate,
                    time_key,
                    tuple(term.value for term in data_terms),
                    negative,
                )
                for (predicate, time_key, data_terms, negative) in positives
                + negatives
            )
            return
        self.ground_checks = None

        steps = []
        bound = set()

        def slots_for(data_terms):
            return tuple(
                ("var", term.name) if term.is_variable() else ("const", term.value)
                for term in data_terms
            )

        def boundness(entry):
            return sum(
                1
                for term in entry[2]
                if not term.is_variable() or term.name in bound
            )

        remaining = list(positives)
        while remaining:
            pick = max(
                range(len(remaining)),
                key=lambda k: (boundness(remaining[k]), -k),
            )
            predicate, time_key, data_terms, _ = remaining.pop(pick)
            steps.append(("pos", predicate, time_key, slots_for(data_terms)))
            bound |= {term.name for term in data_terms if term.is_variable()}

        pending_negatives = []
        for predicate, time_key, data_terms, _ in negatives:
            names = {term.name for term in data_terms if term.is_variable()}
            entry = ("neg", predicate, time_key, slots_for(data_terms))
            if names <= bound:
                steps.append(entry)
            else:
                pending_negatives.append(entry)

        residual = sorted(variables - bound)
        if residual:
            steps.append(("enum", tuple(residual)))
        steps.extend(pending_negatives)
        self.steps = tuple(steps)

    def substitutions(self, facts_at):
        """Yield every data substitution (a dict) under which the body
        holds according to ``facts_at``."""
        if self.ground_checks is not None:
            for predicate, time_key, data, negative in self.ground_checks:
                facts = facts_at(predicate, time_key)
                if facts is None:
                    return
                if (data in facts) == negative:
                    return
            yield {}
            return

        steps = self.steps
        theta = {}
        domain = self.domain

        def run(index):
            if index == len(steps):
                yield dict(theta)
                return
            step = steps[index]
            kind = step[0]
            if kind == "pos":
                _, predicate, time_key, slots = step
                facts = facts_at(predicate, time_key)
                if not facts:  # None (vetoed) or simply no facts there
                    return
                for data in facts:
                    added = []
                    matched = True
                    for slot, value in zip(slots, data):
                        if slot[0] == "const":
                            if slot[1] != value:
                                matched = False
                                break
                        else:
                            current = theta.get(slot[1], _MISSING)
                            if current is _MISSING:
                                theta[slot[1]] = value
                                added.append(slot[1])
                            elif current != value:
                                matched = False
                                break
                    if matched:
                        yield from run(index + 1)
                    for name in added:
                        del theta[name]
            elif kind == "neg":
                _, predicate, time_key, slots = step
                facts = facts_at(predicate, time_key)
                if facts is None:
                    return
                data = tuple(
                    slot[1] if slot[0] == "const" else theta[slot[1]]
                    for slot in slots
                )
                if data not in facts:
                    yield from run(index + 1)
            else:  # enum
                names = step[1]
                for values in itertools.product(domain, repeat=len(names)):
                    for name, value in zip(names, values):
                        theta[name] = value
                    yield from run(index + 1)
                    for name in names:
                        del theta[name]

        yield from run(0)


def ground_data(terms, theta):
    """Ground a data-term vector under a substitution."""
    return tuple(
        theta[term.name] if term.is_variable() else term.value for term in terms
    )
