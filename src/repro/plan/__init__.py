"""The shared query-plan layer.

Every front-end evaluates through this package:

* :mod:`repro.plan.compiler` / :mod:`repro.plan.operators` — compiled
  clause plans for the deductive engine's T_GP rounds (naive and
  semi-naive);
* :mod:`repro.plan.joiner` — greedy multi-way conjunction joining for
  the FO evaluator;
* :mod:`repro.plan.ground` — slice-driven ground-clause matching for
  the Datalog1S frontier evaluator;
* :mod:`repro.plan.goal` — conjunction ordering for Templog goals;
* :mod:`repro.plan.explain` — plan rendering (``repro explain``) and
  the plan fingerprint recorded in checkpoints;
* :mod:`repro.plan.reference` — the paper-literal product-then-select
  evaluator, kept as the correctness oracle.
"""

from repro.plan.compiler import ClausePlan, compile_variant
from repro.plan.explain import format_plan, format_program_plans, plan_fingerprint
from repro.plan.reference import ReferenceClauseEvaluator

__all__ = [
    "ClausePlan",
    "compile_variant",
    "format_plan",
    "format_program_plans",
    "plan_fingerprint",
    "ReferenceClauseEvaluator",
]
