"""Compiling normalized clauses into executable plans.

Each :class:`~repro.core.transform.NormalizedClause` is compiled once
— at :class:`~repro.core.evaluation.ProgramEvaluator` construction —
into a :class:`ClausePlan` holding one :class:`PlanVariant` per firing
mode: ``None`` for naive rounds, plus one per intensional body
position for semi-naive rounds (the delta atom is seeded first, since
the delta is typically the smallest source).

Compilation performs, per variant:

* **greedy join ordering** — after normalization body atoms never
  share temporal columns directly (sharing is expressed through
  equality constraint atoms), so atoms are scored by how many pending
  constraint atoms the join would make fully bound (temporal linkage),
  then by data variables shared with already-bound columns (hash-join
  selectivity), then by within-atom restrictions;
* **selection and constraint pushdown** — data-constant and repeated
  data-variable selections are folded into the source scan of their
  atom, and every constraint atom is conjoined at the earliest step
  where all its columns are bound (carrier columns count as bindable
  on demand);
* **negation as anti-join** — negated atoms join the predicate's
  exact complement, after all positive atoms;
* **fused projection** — the head projection (with head data
  constants woven in) is part of the plan, not a separate pass.
"""

from __future__ import annotations

from repro.constraints.atoms import Comparison, TemporalTerm as ConstraintTerm
from repro.plan.operators import CarrierStep, JoinStep, PlanVariant, Projection
from repro.util.errors import SchemaError
from repro.util.hooks import fault_point

#: Name prefix of the demand (magic) predicates the goal-directed
#: rewrite introduces (:mod:`repro.plan.magic`).  The join-order
#: scorer treats atoms over these predicates as the most selective
#: source available: a demand relation holds one zone per demanded
#: binding, so seeding the pipeline with it restricts every later join
#: to the demanded region.
DEMAND_PREFIX = "_m__"


def _lower_constraint(constraint, position_of, aliases=None):
    """Convert an AST constraint atom to a column-indexed Comparison.

    Aliased variables (``v = u + c``) lower through their base column
    with the offset folded in."""

    def lower(term):
        if term.var is None:
            return ConstraintTerm(None, term.offset)
        if aliases and term.var in aliases:
            base, offset = aliases[term.var]
            return ConstraintTerm(position_of[base], term.offset + offset)
        return ConstraintTerm(position_of[term.var], term.offset)

    return Comparison(constraint.op, lower(constraint.left), lower(constraint.right))


def _constraint_variables(constraint):
    return frozenset(
        term.var
        for term in (constraint.left, constraint.right)
        if term.var is not None
    )


def compile_variant(normalized, seed_position=None):
    """Compile one pipeline for the clause; with ``seed_position`` set,
    the body atom at that position is joined first (semi-naive delta
    seeding)."""
    pending = [
        (constraint, _constraint_variables(constraint))
        for constraint in normalized.constraints
    ]
    placed = [False] * len(pending)
    atom_bound = set()
    for atom in tuple(normalized.body_atoms) + tuple(normalized.negated_atoms):
        atom_bound |= {term.var for term in atom.temporal_args}
    all_vars = normalized.all_temporal_variables()

    columns = []
    position_of = {}
    data_names = []
    first_data = {}
    bound = set()
    steps = []
    aliases = {}  # var -> (base var, offset): v = base + offset
    head_counts = {}
    for name in normalized.head_vars:
        head_counts[name] = head_counts.get(name, 0) + 1
    # How many head slots each bound column will serve once aliases are
    # folded in; aliasing must keep this <= 1 (the projection cannot
    # duplicate a column).
    projected_use = dict(head_counts)

    def bind(names):
        for name in names:
            position_of[name] = len(columns)
            columns.append(name)
            bound.add(name)

    def resolved(v):
        return v in bound or v in aliases

    def try_alias(k):
        """Eliminate a carrier variable pinned by an equality ``v = u
        + c`` (``u`` bound or itself aliased): every later use of ``v``
        substitutes ``base + offset``, the head projection shears the
        base column — no carrier column, no extra zone closure."""
        constraint = pending[k][0]
        if constraint.op != "=":
            return False
        left, right = constraint.left, constraint.right
        if left.var is None or right.var is None:
            return False
        for cand, other in ((left, right), (right, left)):
            v = cand.var
            if v in atom_bound or resolved(v):
                continue
            if not resolved(other.var):
                continue
            if other.var in aliases:
                base, base_offset = aliases[other.var]
            else:
                base, base_offset = other.var, 0
            uses = projected_use.get(base, 0) + head_counts.get(v, 0)
            if uses > 1:
                continue
            # cand.var + cand.offset = other.var + other.offset
            aliases[v] = (base, base_offset + other.offset - cand.offset)
            projected_use[base] = uses
            placed[k] = True
            return True
        return False

    def ready_indices():
        return [
            k
            for k in range(len(pending))
            if not placed[k]
            and all(v in bound or v not in atom_bound for v in pending[k][1])
        ]

    def settle(join_step):
        """Place every constraint that became placeable: alias-eliminate
        equality-pinned carrier variables, attach the fully-resolved
        constraints to the join just emitted, and materialize the
        carrier columns the rest need."""
        progress = True
        while progress:  # alias chains: v = u + c, w = v + d
            progress = False
            for k in ready_indices():
                if try_alias(k):
                    progress = True
        ready = ready_indices()
        if not ready:
            return
        attach = [k for k in ready if all(resolved(v) for v in pending[k][1])]
        carry = [k for k in ready if k not in attach]
        if attach and join_step is not None:
            join_step.atoms = join_step.atoms + tuple(
                _lower_constraint(pending[k][0], position_of, aliases)
                for k in attach
            )
            for k in attach:
                placed[k] = True
            attach = []
        if carry or attach:
            needed = [
                name
                for name in all_vars
                if name not in bound
                and name not in aliases
                and any(name in pending[k][1] for k in carry)
            ]
            bind(needed)
            atoms = tuple(
                _lower_constraint(pending[k][0], position_of, aliases)
                for k in attach + carry
            )
            steps.append(CarrierStep(needed, atoms))
            for k in attach + carry:
                placed[k] = True

    def emit_join(position, atom, negated):
        data_base = len(data_names)
        names = []
        seen = {}
        const_sels = []
        eq_sels = []
        match_pairs = []
        for index, term in enumerate(atom.data_args):
            if not term.is_variable():
                const_sels.append((index, term.value))
                names.append(None)
                continue
            if term.name in seen:
                eq_sels.append((seen[term.name], index))
                names.append(None)
                continue
            seen[term.name] = index
            if term.name in first_data:
                match_pairs.append((first_data[term.name], index))
                names.append(None)
            else:
                first_data[term.name] = data_base + index
                names.append(term.name)
        step = JoinStep(
            position,
            atom.predicate,
            negated,
            [term.var for term in atom.temporal_args],
            names,
            const_sels,
            eq_sels,
            match_pairs,
        )
        bind(step.temporal_vars)
        data_names.extend(names)
        steps.append(step)
        settle(step)

    def score(position, atom):
        would_bound = bound | {term.var for term in atom.temporal_args}
        gain = sum(
            1
            for k in range(len(pending))
            if not placed[k]
            and all(
                v in would_bound or v not in atom_bound for v in pending[k][1]
            )
        )
        shared = restrictions = 0
        seen_local = set()
        for term in atom.data_args:
            if not term.is_variable():
                restrictions += 1
            elif term.name in seen_local:
                restrictions += 1
            else:
                seen_local.add(term.name)
                if term.name in first_data:
                    shared += 1
        demand = 1 if atom.predicate.startswith(DEMAND_PREFIX) else 0
        return (demand, gain, shared, restrictions, -position)

    settle(None)  # constant-only and pure-carrier constraints

    remaining = list(enumerate(normalized.body_atoms))
    if seed_position is not None:
        for entry in remaining:
            if entry[0] == seed_position:
                remaining.remove(entry)
                emit_join(entry[0], entry[1], False)
                break
    while remaining:
        best = max(remaining, key=lambda entry: score(*entry))
        remaining.remove(best)
        emit_join(best[0], best[1], False)
    for atom in normalized.negated_atoms:
        emit_join(None, atom, True)

    missing = [
        name for name in all_vars if name not in bound and name not in aliases
    ]
    if missing:
        bind(missing)
        steps.append(CarrierStep(missing, ()))
    assert all(placed), "unplaced constraints after compilation: %s" % (
        [str(pending[k][0]) for k in range(len(pending)) if not placed[k]],
    )

    keep_temporal = []
    shifts = []
    for name in normalized.head_vars:
        if name in aliases:
            base, offset = aliases[name]
            keep_temporal.append(position_of[base])
            shifts.append(offset)
        else:
            keep_temporal.append(position_of[name])
            shifts.append(0)
    keep_data = []
    constant_slots = []
    for slot, term in enumerate(normalized.head_data):
        if term.is_variable():
            keep_data.append(first_data[term.name])
        else:
            constant_slots.append((slot, term.value))
    projection = Projection(
        keep_temporal,
        shifts,
        keep_data,
        constant_slots,
        (len(normalized.head_vars), len(normalized.head_data)),
    )
    return PlanVariant(seed_position, steps, projection, columns, data_names)


class ClausePlan:
    """A normalized clause compiled to plan variants, evaluating with
    the same interface as the reference product-then-select path."""

    def __init__(self, normalized, schemas, intensional):
        self.normalized = normalized
        self.schemas = schemas
        self.head_predicate = normalized.head_predicate
        self.intensional_positions = [
            index
            for index, atom in enumerate(normalized.body_atoms)
            if atom.predicate in intensional
        ]
        self.negated_predicates = {
            atom.predicate for atom in normalized.negated_atoms
        }
        self._validate()
        self.variants = {None: compile_variant(normalized)}
        for position in self.intensional_positions:
            self.variants[position] = compile_variant(normalized, position)
        self.label = str(normalized)
        for variant in self.variants.values():
            variant.clause = self.label
        # Delta variants for *extensional* body positions, compiled
        # lazily by the incremental maintainer (EDB deltas).  Kept out
        # of ``self.variants`` so the plan fingerprint — which renders
        # that dict — is identical whether or not maintenance ever ran.
        self._maintenance_variants = {}

    def maintenance_variant(self, position):
        """The delta variant seeded at an extensional body
        ``position``, compiled on first use (see ``__init__``)."""
        variant = self._maintenance_variants.get(position)
        if variant is None:
            variant = compile_variant(self.normalized, position)
            variant.clause = self.label
            self._maintenance_variants[position] = variant
        return variant

    def _validate(self):
        atoms = list(self.normalized.body_atoms) + list(
            self.normalized.negated_atoms
        )
        for atom in atoms:
            expected = self.schemas.get(atom.predicate)
            if expected is None:
                raise SchemaError("no schema for predicate %r" % atom.predicate)
            if expected != (atom.temporal_arity, atom.data_arity):
                raise SchemaError(
                    "atom %s does not match schema %s of %r"
                    % (atom, expected, atom.predicate)
                )

    def evaluate(self, env, delta=None, delta_position=None, complements=None):
        """The head relation derived by one T_GP application of this
        clause (same contract as the reference evaluator)."""
        fault_point("clause")
        if self.negated_predicates and complements is None:
            raise SchemaError(
                "clause %s negates %s but no complements were supplied"
                % (self.normalized, ", ".join(sorted(self.negated_predicates)))
            )
        if delta is None:
            variant = self.variants[None]
        else:
            variant = self.variants.get(delta_position)
            if variant is None:
                variant = self.maintenance_variant(delta_position)

        def relation_for(step):
            if step.negated:
                return complements[step.predicate]
            if delta is not None and step.position == delta_position:
                return delta.get(step.predicate)
            return env.get(step.predicate)

        return variant.execute(relation_for)
