"""Goal-directed evaluation: magic sets over generalized atoms.

Bottom-up T_GP materializes every predicate over all of ℤ before a
query selects the sliver it wanted — the anti-pattern the paper's
finite representation is meant to avoid.  This module adapts the
classic magic-set / demand transformation to generalized tuples,
where the binding pattern has a *temporal dimension*: a demand is not
just "which data constants" but "which constraint zone".

Given a :class:`QueryGoal` (a predicate, an optional demanded window,
and optional bound data columns), :func:`rewrite_for_goal` produces a
rewritten program plus *magic relations*:

1. **Reachability** — clauses whose head cannot reach the goal in the
   dependency graph are dropped wholesale
   (:func:`repro.core.stratify.reachable_predicates`).
2. **Negation cone** — predicates reachable through a negated atom
   must be computed *exactly* (their complement is taken), so their
   downward closure stays unguarded; everything else is *restricted*.
3. **Adornment** — one demand predicate ``_m__p`` per restricted
   ``p``; its bound data columns are the meet (intersection) over all
   body occurrences of ``p`` of the columns resolvable sideways from
   the caller's demand (a constant, or a variable bound in the
   caller's own demanded columns).  The temporal dimension is always
   "bound by zone": the demand carries a DBM.
4. **Demand fixpoint with widening** — seeds from the goal, then
   sideways information passing: a demand on a clause's head, conjoined
   with the clause's constraint atoms and projected onto a body atom's
   temporal columns, is a demand on that atom's predicate.  Temporal
   recursion through shifts (``p(t+6) <- p(t)``) makes the naive
   demand set diverge (``t=10`` demands ``t=4`` demands ``t=-2`` …),
   so per demand key the zones are merged by convex hull, and after
   :data:`DEFAULT_WIDEN_DELAY` growths the still-growing bounds are
   widened away to ±∞ — a strict over-approximation, so completeness
   within the demanded region is preserved and termination is
   guaranteed (each DBM bound widens at most once).
5. **Guards** — every restricted clause gets its head's demand atom
   prepended to the body.  The demand relations ride the ordinary
   columnar kernel: each demand is one generalized tuple with
   constant-carrier lrps, the bound data constants, and the demand
   zone as its constraint system, supplied through an augmented EDB.
   Magic predicates are therefore *extensional* in the rewritten
   program — stratification of the guarded program follows from the
   original's, and the engine evaluates it unchanged.

:func:`goal_directed_model` wraps the rewrite around a
:class:`~repro.core.engine.DeductiveEngine` run and falls back to the
full fixpoint — recording the ``magic_degraded`` rung — whenever the
rewrite cannot apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.atoms import Comparison, TemporalTerm as ColumnTerm
from repro.constraints.dbm import Dbm, INF
from repro.constraints.system import ConstraintSystem
from repro.core.ast import PredicateAtom, Program, TemporalTerm
from repro.core.stratify import reachable_predicates, stratify
from repro.core.transform import NormalizedClause, denormalize, normalize_program
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.point import Lrp
from repro.plan.compiler import DEMAND_PREFIX
from repro.util import hooks
from repro.util.errors import EvaluationError, SchemaError

#: Convex-hull merges per demand key tolerated before widening starts
#: dropping the bounds that keep growing.  Small: a genuinely bounded
#: demand cone stabilizes in one or two merges; a shifting recursion
#: grows every merge and should be widened quickly.
DEFAULT_WIDEN_DELAY = 3

#: Hard cap on demand-propagation steps; trips only on pathological
#: programs (the widening argument bounds the real fixpoint far lower).
DEFAULT_DEMAND_STEPS = 100_000


class MagicUnsupportedError(EvaluationError):
    """The goal cannot be rewritten; callers fall back to the full
    fixpoint and record the degradation."""


def _freeze_bindings(data):
    """Normalize ``data`` (mapping column → constant, or pairs) to a
    sorted tuple of ``(column, value)`` pairs."""
    if data is None:
        return ()
    if isinstance(data, dict):
        items = data.items()
    else:
        items = data
    return tuple(sorted((int(column), value) for column, value in items))


@dataclass(frozen=True)
class QueryGoal:
    """What the caller demands: a predicate, an optional temporal
    window ``[low, high)`` applying to every temporal column, and
    bound data columns with their constants."""

    predicate: str
    low: Optional[int] = None
    high: Optional[int] = None
    data: tuple = ()

    @classmethod
    def point(cls, predicate, instant, data=None):
        """Demand at one instant (every temporal column equal to it)."""
        return cls(predicate, int(instant), int(instant) + 1, _freeze_bindings(data))

    @classmethod
    def windowed(cls, predicate, low, high, data=None):
        """Demand within the window ``[low, high)``."""
        return cls(predicate, int(low), int(high), _freeze_bindings(data))

    @classmethod
    def whole(cls, predicate, data=None):
        """Demand with no temporal constraint (reachability pruning and
        data bindings only)."""
        return cls(predicate, None, None, _freeze_bindings(data))

    def bound_data_columns(self):
        """The 0-based data columns the goal binds, ascending."""
        return tuple(column for column, _value in self.data)

    def zone(self, temporal_arity):
        """The demanded region as a :class:`ConstraintSystem` over the
        goal predicate's temporal columns."""
        atoms = []
        for column in range(temporal_arity):
            if self.low is not None:
                atoms.append(
                    Comparison(">=", ColumnTerm(column), ColumnTerm(None, self.low))
                )
            if self.high is not None:
                atoms.append(
                    Comparison("<", ColumnTerm(column), ColumnTerm(None, self.high))
                )
        return ConstraintSystem.from_atoms(temporal_arity, atoms)

    def __str__(self):
        window = ""
        if self.low is not None or self.high is not None:
            window = "[%s, %s)" % (
                "-inf" if self.low is None else self.low,
                "+inf" if self.high is None else self.high,
            )
        bindings = ""
        if self.data:
            bindings = "; " + ", ".join(
                "#%d=%r" % (column, value) for column, value in self.data
            )
        return "%s%s%s" % (self.predicate, window, bindings)


def magic_predicate(predicate):
    """The demand predicate name for ``predicate``."""
    return DEMAND_PREFIX + predicate


# -- zone arithmetic ---------------------------------------------------------


def _hull(a, b):
    """The tightest zone containing both (pointwise max of closed DBM
    bounds) — the convex-hull join of the demand lattice."""
    if not a.is_satisfiable():
        return b
    if not b.is_satisfiable():
        return a
    za, zb = a.zone(), b.zone()
    joined = Dbm.unconstrained(a.arity)
    for (i, j, c) in za.finite_bounds():
        other = zb.bound(i, j)
        if other != INF:
            joined.add_bound(i, j, max(c, other))
    return ConstraintSystem(a.arity, joined)


def _widen(old, new):
    """Keep only the bounds of ``new`` that did not grow past ``old``;
    growing bounds go to ±∞.  ``new`` must contain ``old`` (it is a
    hull with ``old`` as one argument), so the result contains both and
    each DBM bound can be widened at most once."""
    zo, zn = old.zone(), new.zone()
    widened = Dbm.unconstrained(old.arity)
    for (i, j, c) in zn.finite_bounds():
        if c <= zo.bound(i, j):
            widened.add_bound(i, j, c)
    return ConstraintSystem(old.arity, widened)


def _project_onto(system, columns):
    """Project a zone onto the given 0-based columns, reordered to the
    order of ``columns``."""
    remaining = list(range(system.arity))
    current = system
    for column in sorted(set(remaining) - set(columns), reverse=True):
        current = current.project_out(column)
        remaining.remove(column)
    mapping = {
        remaining.index(column): position
        for position, column in enumerate(columns)
    }
    return current.remapped(mapping, len(columns))


def _lower(constraint, index_of):
    """AST constraint atom → column-indexed :class:`Comparison`."""

    def lower(term):
        if term.var is None:
            return ColumnTerm(None, term.offset)
        return ColumnTerm(index_of[term.var], term.offset)

    return Comparison(constraint.op, lower(constraint.left), lower(constraint.right))


# -- sideways information passing --------------------------------------------


@dataclass(frozen=True)
class _DemandRule:
    """One SIP edge: a demand on ``head`` propagates through one clause
    to a demand on ``target`` (a restricted positive body atom).

    The data side resolves each bound column of ``target`` from the
    head's demand key (``("const", value)`` or ``("head", key_index)``);
    ``head_constants`` / ``head_equalities`` filter keys the clause
    cannot serve.  The temporal side embeds the head demand zone into
    the clause's full variable space (``head_placement``), conjoins the
    clause constraints (``atoms``), and projects onto the target atom's
    columns (``target_columns``).
    """

    head: str
    target: str
    resolvers: tuple
    head_constants: tuple
    head_equalities: tuple
    var_count: int
    head_placement: tuple  # (head temporal column, variable index) pairs
    atoms: tuple
    target_columns: tuple

    def propagate(self, key, zone):
        """The ``(target key, target zone)`` demanded by ``(key, zone)``
        on the head, or ``None`` when this clause cannot serve it."""
        for key_index, value in self.head_constants:
            if key[key_index] != value:
                return None
        for left, right in self.head_equalities:
            if key[left] != key[right]:
                return None
        target_key = tuple(
            value if kind == "const" else key[value]
            for kind, value in self.resolvers
        )
        embedded = zone.remapped(dict(self.head_placement), self.var_count)
        conjoined = embedded.conjoin_atoms(self.atoms)
        if not conjoined.is_satisfiable():
            return None
        projected = _project_onto(conjoined, self.target_columns)
        if not projected.is_satisfiable():
            return None
        return target_key, projected


def _build_demand_rules(normalized_clauses, restricted, bound_columns):
    """Every SIP edge of the restricted subprogram."""
    rules = []
    for normalized in normalized_clauses:
        head = normalized.head_predicate
        if head not in restricted:
            continue
        head_bound = bound_columns[head]
        key_index_of = {}  # variable name -> key index (first occurrence)
        head_constants = []
        head_equalities = []
        for key_index, column in enumerate(head_bound):
            term = normalized.head_data[column]
            if not term.is_variable():
                head_constants.append((key_index, term.value))
            elif term.name in key_index_of:
                head_equalities.append((key_index_of[term.name], key_index))
            else:
                key_index_of[term.name] = key_index
        variables = normalized.all_temporal_variables()
        index_of = {name: index for index, name in enumerate(variables)}
        head_placement = tuple(
            (column, index_of[name])
            for column, name in enumerate(normalized.head_vars)
        )
        atoms = tuple(
            _lower(constraint, index_of) for constraint in normalized.constraints
        )
        for atom in normalized.body_atoms:
            if atom.predicate not in restricted:
                continue
            resolvers = []
            for column in bound_columns[atom.predicate]:
                term = atom.data_args[column]
                if not term.is_variable():
                    resolvers.append(("const", term.value))
                else:
                    resolvers.append(("head", key_index_of[term.name]))
            rules.append(
                _DemandRule(
                    head=head,
                    target=atom.predicate,
                    resolvers=tuple(resolvers),
                    head_constants=tuple(head_constants),
                    head_equalities=tuple(head_equalities),
                    var_count=len(variables),
                    head_placement=head_placement,
                    atoms=atoms,
                    target_columns=tuple(
                        index_of[term.var] for term in atom.temporal_args
                    ),
                )
            )
    return rules


def _adorn(normalized_clauses, restricted, schemas, goal):
    """The meet-collapse adornment: per restricted predicate, the data
    columns bound in *every* body occurrence (and, for the goal
    predicate, also bound by the goal itself).  Monotone-decreasing
    fixpoint; one demand predicate per restricted predicate."""
    bound = {}
    for predicate in restricted:
        _temporal, data_arity = schemas[predicate]
        bound[predicate] = set(range(data_arity))
    goal_bound = set(goal.bound_data_columns())
    bound[goal.predicate] = set(column for column in goal_bound)
    changed = True
    while changed:
        changed = False
        for normalized in normalized_clauses:
            head = normalized.head_predicate
            if head not in restricted:
                continue
            bindable = set()
            for column, term in enumerate(normalized.head_data):
                if term.is_variable() and column in bound[head]:
                    bindable.add(term.name)
            for atom in normalized.body_atoms:
                if atom.predicate not in restricted:
                    continue
                resolvable = set()
                for column, term in enumerate(atom.data_args):
                    if not term.is_variable() or term.name in bindable:
                        resolvable.add(column)
                met = bound[atom.predicate] & resolvable
                if met != bound[atom.predicate]:
                    bound[atom.predicate] = met
                    changed = True
    return {predicate: tuple(sorted(columns)) for predicate, columns in bound.items()}


# -- the rewrite -------------------------------------------------------------


@dataclass
class MagicRewrite:
    """The rewritten program plus its demand (magic) relations."""

    goal: QueryGoal
    program: Program
    magic_relations: dict
    bound_columns: dict
    reachable: frozenset
    restricted: frozenset
    unrestricted: frozenset
    dropped_clauses: int
    demand_rules: int
    demand_steps: int
    widenings: int

    def augmented_edb(self, edb):
        """A copy of ``edb`` with the demand relations declared and
        filled — the rewritten program reads them as ordinary
        extensional predicates through the columnar kernel."""
        augmented = edb.copy()
        for name in sorted(self.magic_relations):
            relation = self.magic_relations[name]
            augmented.declare(name, relation.temporal_arity, relation.data_arity)
            augmented.set_relation(name, relation)
        return augmented

    def info(self):
        """A JSON-safe summary (CLI reports, service stats)."""
        return {
            "goal": str(self.goal),
            "reachable": sorted(self.reachable),
            "restricted": sorted(self.restricted),
            "unrestricted": sorted(self.unrestricted),
            "dropped_clauses": self.dropped_clauses,
            "demand_rules": self.demand_rules,
            "demand_steps": self.demand_steps,
            "widenings": self.widenings,
            "magic_facts": sum(
                len(relation) for relation in self.magic_relations.values()
            ),
        }


def rewrite_for_goal(
    program,
    goal,
    widen_delay=DEFAULT_WIDEN_DELAY,
    max_demand_steps=DEFAULT_DEMAND_STEPS,
):
    """Rewrite ``program`` for goal-directed evaluation of ``goal``.

    Raises :class:`MagicUnsupportedError` when the rewrite cannot apply
    (unknown goal predicate, demand fixpoint divergence past the hard
    cap, or a rewritten program that fails to stratify); callers fall
    back to the full fixpoint.
    """
    schemas = program.schemas()
    if goal.predicate not in schemas:
        raise MagicUnsupportedError(
            "goal predicate %r does not occur in the program" % goal.predicate
        )
    for predicate in schemas:
        if predicate.startswith(DEMAND_PREFIX):
            raise MagicUnsupportedError(
                "program already uses the demand prefix %r (%s)"
                % (DEMAND_PREFIX, predicate)
            )
    temporal_arity, data_arity = schemas[goal.predicate]
    for column, _value in goal.data:
        if not 0 <= column < data_arity:
            raise MagicUnsupportedError(
                "goal binds data column %d of %r, which has data arity %d"
                % (column, goal.predicate, data_arity)
            )

    idb = program.intensional_predicates()
    reachable = reachable_predicates(program, [goal.predicate])
    # Predicates whose complement is taken anywhere in the cone must be
    # computed exactly: their downward closure stays unguarded.
    negated_roots = set()
    for clause in program.clauses:
        if clause.head.predicate not in reachable:
            continue
        for negated in clause.negated_atoms():
            if negated.atom.predicate in idb:
                negated_roots.add(negated.atom.predicate)
    unrestricted = reachable_predicates(program, sorted(negated_roots))
    restricted = frozenset(reachable - unrestricted)

    normalized_clauses = normalize_program(program)
    bound_columns = _adorn(normalized_clauses, restricted, schemas, goal)
    rules = _build_demand_rules(normalized_clauses, restricted, bound_columns)
    rules_by_head = {}
    for rule in rules:
        rules_by_head.setdefault(rule.head, []).append(rule)

    # -- demand fixpoint with widening ------------------------------------
    demand = {predicate: {} for predicate in restricted}
    merges = {}
    steps = 0
    widenings = 0
    if goal.predicate in restricted:
        goal_key = tuple(
            dict(goal.data)[column] for column in bound_columns[goal.predicate]
        )
        demand[goal.predicate][goal_key] = goal.zone(temporal_arity)
        worklist = [(goal.predicate, goal_key)]
    else:
        worklist = []
    while worklist:
        predicate, key = worklist.pop()
        steps += 1
        if steps > max_demand_steps:
            raise MagicUnsupportedError(
                "demand fixpoint for %s exceeded %d propagation steps"
                % (goal, max_demand_steps)
            )
        zone = demand[predicate][key]
        for rule in rules_by_head.get(predicate, ()):
            outcome = rule.propagate(key, zone)
            if outcome is None:
                continue
            target_key, target_zone = outcome
            existing = demand[rule.target].get(target_key)
            if existing is None:
                demand[rule.target][target_key] = target_zone
                worklist.append((rule.target, target_key))
                continue
            if target_zone.implies(existing):
                continue
            merged = _hull(existing, target_zone)
            merge_key = (rule.target, target_key)
            merges[merge_key] = merges.get(merge_key, 0) + 1
            if merges[merge_key] > widen_delay:
                merged = _widen(existing, merged)
                widenings += 1
            if not merged.implies(existing) or not existing.implies(merged):
                demand[rule.target][target_key] = merged
                worklist.append((rule.target, target_key))

    # -- demand relations --------------------------------------------------
    magic_relations = {}
    for predicate in sorted(restricted):
        p_temporal, _p_data = schemas[predicate]
        tuples = []
        for key in sorted(demand[predicate], key=repr):
            zone = demand[predicate][key]
            tuples.append(
                GeneralizedTuple(
                    tuple(Lrp.constant_carrier() for _ in range(p_temporal)),
                    key,
                    zone,
                )
            )
        magic_relations[magic_predicate(predicate)] = GeneralizedRelation(
            p_temporal, len(bound_columns[predicate]), tuples
        )

    # -- the guarded program ----------------------------------------------
    clauses = []
    dropped = 0
    for normalized in normalized_clauses:
        head = normalized.head_predicate
        if head not in reachable:
            dropped += 1
            continue
        if head not in restricted:
            clauses.append(normalized.original)
            continue
        guard = PredicateAtom(
            magic_predicate(head),
            tuple(TemporalTerm(name) for name in normalized.head_vars),
            tuple(normalized.head_data[column] for column in bound_columns[head]),
        )
        guarded = NormalizedClause(
            head_predicate=normalized.head_predicate,
            head_vars=normalized.head_vars,
            head_data=normalized.head_data,
            body_atoms=(guard,) + normalized.body_atoms,
            constraints=normalized.constraints,
            original=normalized.original,
            negated_atoms=normalized.negated_atoms,
        )
        clauses.append(denormalize(guarded))
    rewritten = Program(tuple(clauses))
    try:
        rewritten.validate()
        stratify(rewritten)
    except SchemaError as error:
        raise MagicUnsupportedError(
            "rewritten program for %s does not stratify: %s" % (goal, error)
        ) from error

    rewrite = MagicRewrite(
        goal=goal,
        program=rewritten,
        magic_relations=magic_relations,
        bound_columns={
            predicate: bound_columns[predicate] for predicate in restricted
        },
        reachable=frozenset(reachable),
        restricted=restricted,
        unrestricted=frozenset(unrestricted),
        dropped_clauses=dropped,
        demand_rules=len(rules),
        demand_steps=steps,
        widenings=widenings,
    )
    if hooks.SINKS:
        hooks.emit(
            "magic.rewrite",
            {
                "goal": str(goal),
                "reachable": sorted(rewrite.reachable),
                "restricted": sorted(rewrite.restricted),
                "demand_rules": rewrite.demand_rules,
                "dropped_clauses": rewrite.dropped_clauses,
                "demand_steps": rewrite.demand_steps,
                "widenings": rewrite.widenings,
            },
        )
        for predicate in sorted(restricted):
            name = magic_predicate(predicate)
            for gt in magic_relations[name].tuples:
                hooks.emit(
                    "magic.seed",
                    {
                        "predicate": predicate,
                        "magic": name,
                        "zone": str(gt.constraints),
                        "data": list(gt.data),
                    },
                )
    return rewrite


def goal_from_formula(formula, idb, window=None):
    """Extract the demand of an FO ``formula`` as a :class:`QueryGoal`.

    Returns ``(goal, None)`` when the formula's reads of intensional
    predicates are covered by a single goal — exactly one atom over an
    IDB predicate, not nested under ``not`` or ``forall`` (those read
    a predicate's complement, which a demand-restricted computation
    does not bound).  The goal binds the atom's constant data columns;
    its zone comes from ``window`` (``(low, high)``) when given, else
    from the atom's temporal arguments when all are constants, else it
    is unbounded (reachability pruning only).

    Returns ``(None, reason)`` otherwise; callers fall back to the
    full fixpoint and record the reason.
    """
    from repro.fo.ast import (
        FoAnd,
        FoAtom,
        FoComparison,
        FoExists,
        FoForAll,
        FoNot,
        FoOr,
        parse_formula,
    )

    if isinstance(formula, str):
        formula = parse_formula(formula)
    demanded = []  # (atom, guarded?) for IDB atoms

    def walk(node, guarded):
        if isinstance(node, FoAtom):
            if node.atom.predicate in idb:
                demanded.append((node.atom, guarded))
        elif isinstance(node, FoComparison):
            pass
        elif isinstance(node, (FoAnd, FoOr)):
            for part in node.parts:
                walk(part, guarded)
        elif isinstance(node, FoNot):
            walk(node.sub, True)
        elif isinstance(node, FoExists):
            walk(node.sub, guarded)
        elif isinstance(node, FoForAll):
            walk(node.sub, True)
        else:
            demanded.append((None, True))

    walk(formula, False)
    if not demanded:
        return None, "formula mentions no intensional predicate"
    if len(demanded) > 1:
        return None, (
            "formula demands %d intensional atoms; a single goal covers one"
            % len(demanded)
        )
    atom, guarded = demanded[0]
    if atom is None or guarded:
        return None, (
            "the intensional atom is read under negation or forall "
            "(its complement is demanded, which a goal does not bound)"
        )
    data = {}
    for column, term in enumerate(atom.data_args):
        if not term.is_variable():
            data[column] = term.value
    if window is not None:
        low, high = window
        return QueryGoal.windowed(atom.predicate, low, high, data), None
    if atom.temporal_args and all(
        term.is_constant() for term in atom.temporal_args
    ):
        instants = [term.offset for term in atom.temporal_args]
        return (
            QueryGoal.windowed(atom.predicate, min(instants), max(instants) + 1, data),
            None,
        )
    return QueryGoal.whole(atom.predicate, data), None


def goal_directed_model(
    program,
    edb,
    goal,
    evaluation="compiled",
    strategy="semi-naive",
    safety="paper",
    max_rounds=500,
    patience=10,
    on_give_up="partial",
    budget=None,
    coverage_cache=True,
    widen_delay=DEFAULT_WIDEN_DELAY,
):
    """Evaluate ``program`` goal-directedly for ``goal``.

    Returns ``(model, info)``: the model is complete for the goal
    predicate *within the demanded region* (other demanded predicates
    are computed at least as far as the goal needs them), and ``info``
    summarizes the rewrite — or records the fallback.  When the rewrite
    cannot apply, the full fixpoint runs instead and both
    ``info["degraded"]`` and ``model.stats.magic_degraded`` carry the
    reason (the "magic → full" rung of the degradation ladder).
    """
    from repro.core.engine import DeductiveEngine

    engine_kwargs = dict(
        strategy=strategy,
        safety=safety,
        max_rounds=max_rounds,
        patience=patience,
        on_give_up=on_give_up,
        evaluation=evaluation,
        coverage_cache=coverage_cache,
    )
    try:
        rewrite = rewrite_for_goal(program, goal, widen_delay=widen_delay)
    except MagicUnsupportedError as error:
        engine = DeductiveEngine(program, edb, **engine_kwargs)
        model = engine.run(budget=budget)
        model.stats.magic_degraded = {"reason": str(error), "goal": str(goal)}
        return model, {
            "goal": str(goal),
            "degraded": True,
            "reason": str(error),
        }
    engine = DeductiveEngine(
        rewrite.program, rewrite.augmented_edb(edb), **engine_kwargs
    )
    model = engine.run(budget=budget)
    info = rewrite.info()
    info["degraded"] = False
    return model, info
