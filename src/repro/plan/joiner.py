"""Greedy conjunction joining for ad-hoc query front-ends.

The FO evaluator (and anything else that produces intermediate
answer sets with named columns) joins conjuncts through this module
instead of folding them left-to-right: parts are ordered greedily —
smallest relation first, then whichever unjoined part shares the most
columns with what is already bound — and each pairwise join runs
through :meth:`GeneralizedRelation.join`, i.e. the fused hash join of
the indexed relation layer rather than a product followed by
selections.
"""

from __future__ import annotations


class NamedRelation:
    """A relation with named temporal and data columns — the unit the
    conjunction joiner operates on."""

    __slots__ = ("relation", "temporal_vars", "data_vars")

    def __init__(self, relation, temporal_vars, data_vars):
        self.relation = relation
        self.temporal_vars = list(temporal_vars)
        self.data_vars = list(data_vars)


def join_pair(left, right):
    """Natural join of two :class:`NamedRelation` on their shared
    column names; the duplicate right-hand columns are dropped."""
    temporal_pairs = [
        (left.temporal_vars.index(name), index)
        for index, name in enumerate(right.temporal_vars)
        if name in left.temporal_vars
    ]
    data_pairs = [
        (left.data_vars.index(name), index)
        for index, name in enumerate(right.data_vars)
        if name in left.data_vars
    ]
    joined = left.relation.join(
        right.relation, temporal_pairs=temporal_pairs, data_pairs=data_pairs
    )
    dropped_temporal = {index for (_, index) in temporal_pairs}
    dropped_data = {index for (_, index) in data_pairs}
    temporal_vars = left.temporal_vars + [
        name
        for index, name in enumerate(right.temporal_vars)
        if index not in dropped_temporal
    ]
    data_vars = left.data_vars + [
        name
        for index, name in enumerate(right.data_vars)
        if index not in dropped_data
    ]
    return NamedRelation(joined, temporal_vars, data_vars)


def _shared_columns(bound_temporal, bound_data, part):
    return sum(1 for name in part.temporal_vars if name in bound_temporal) + sum(
        1 for name in part.data_vars if name in bound_data
    )


def join_all(parts):
    """Greedy multi-way natural join of :class:`NamedRelation` parts.

    Starts from the smallest relation, then repeatedly joins in the
    part sharing the most columns with the bound set (ties: smaller
    relation, then original order).  Intersection is commutative, so
    any order is sound; a connected order keeps intermediates small.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("nothing to join")
    order = list(range(len(parts)))
    start = min(order, key=lambda k: (len(parts[k].relation.tuples), k))
    order.remove(start)
    current = parts[start]
    bound_temporal = set(current.temporal_vars)
    bound_data = set(current.data_vars)
    while order:
        best = max(
            order,
            key=lambda k: (
                _shared_columns(bound_temporal, bound_data, parts[k]),
                -len(parts[k].relation.tuples),
                -k,
            ),
        )
        order.remove(best)
        current = join_pair(current, parts[best])
        bound_temporal.update(current.temporal_vars)
        bound_data.update(current.data_vars)
    return current
