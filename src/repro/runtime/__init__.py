"""The resource-governed evaluation runtime.

Everything that stands between a pathological temporal program and an
unbounded, unrecoverable run:

* :mod:`repro.runtime.budget` — hard resource budgets
  (:class:`EvaluationBudget`) checked cooperatively by every fixpoint
  loop, raising :class:`~repro.util.errors.BudgetExceededError` with
  the partial model attached;
* :mod:`repro.runtime.checkpoint` — round-granular JSON snapshots of
  the fixpoint environment, resumable bit-identically mid-stratum;
* :mod:`repro.runtime.faults` — deterministic fault and delay
  injection (:class:`FaultPlan`) at the instrumented sites, proving
  the recovery paths under test;
* :mod:`repro.runtime.report` — machine-readable run reports backing
  the CLI's ``--json`` mode.
"""

from repro.runtime.budget import BudgetMeter, EvaluationBudget
from repro.runtime.checkpoint import (
    Checkpoint,
    engine_fingerprint,
    load_checkpoint,
    write_checkpoint,
)
from repro.runtime.faults import SITES, FaultPlan, FaultSpec, InjectedFaultError

__all__ = [
    "BudgetMeter",
    "EvaluationBudget",
    "Checkpoint",
    "engine_fingerprint",
    "load_checkpoint",
    "write_checkpoint",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "SITES",
]
