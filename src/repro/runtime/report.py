"""Machine-readable run reports for the CLI's ``--json`` mode.

A report is a plain dict (JSON-safe) describing one CLI invocation:
the outcome class, the process exit code, the evaluation statistics,
and a summary of the computed (possibly partial) model.  Monitoring
and batch consumers parse this instead of scraping the human output.
"""

from __future__ import annotations

from repro.util.sorting import typed_sort_key

OUTCOME_OK = "ok"
OUTCOME_GAVE_UP = "gave-up"
OUTCOME_BUDGET_EXCEEDED = "budget-exceeded"
OUTCOME_ABORTED = "aborted"
OUTCOME_ERROR = "error"


def model_summary(model, window=None):
    """A JSON-safe summary of a deductive :class:`~repro.core.engine.Model`."""
    if model is None:
        return None
    predicates = {}
    for name in model.predicates():
        relation = model.relation(name)
        entry = {
            "generalized_tuples": len(relation),
            "text": str(relation.coalesce()),
        }
        if window is not None:
            low, high = window
            entry["window"] = {
                "low": low,
                "high": high,
                "tuples": sorted(
                    [list(flat) for flat in model.extension(name, low, high)],
                    key=typed_sort_key,
                ),
            }
        predicates[name] = entry
    return {"predicates": predicates}


#: How deep :func:`error_summary` follows exception chains.  Deep
#: enough for the service's worst realistic nesting (degradation-ladder
#: failure → plan-layer crash → injected fault → …), small enough that
#: a cyclic or pathological chain cannot blow up a report.
MAX_CAUSE_DEPTH = 8


def error_summary(error, _depth=0):
    """A JSON-safe description of an exception: its type, message,
    (for budget errors) the limit that tripped, and its full cause
    chain.

    The chain recurses through ``__cause__`` (explicit ``raise … from``)
    and falls back to ``__context__`` (implicit chaining during an
    ``except`` block) when no explicit cause exists and the context is
    not suppressed — the same preference :mod:`traceback` renders — so
    a degradation-ladder failure wrapping a plan-layer crash wrapping
    an injected fault keeps its root cause in ``--json`` reports.
    Recursion stops at :data:`MAX_CAUSE_DEPTH`, marked by a
    ``"truncated"`` flag.
    """
    if error is None:
        return None
    summary = {"type": type(error).__name__, "message": str(error)}
    limit = getattr(error, "limit", None)
    if limit is not None:
        summary["limit"] = limit
    cause = error.__cause__
    if cause is None and not error.__suppress_context__:
        cause = error.__context__
    if cause is not None:
        if _depth + 1 >= MAX_CAUSE_DEPTH:
            summary["cause"] = {
                "type": type(cause).__name__,
                "message": str(cause),
                "truncated": True,
            }
        else:
            summary["cause"] = error_summary(cause, _depth=_depth + 1)
    return summary


def run_report(command, outcome, exit_code, stats=None, model=None, error=None, window=None):
    """Assemble the full report dict for one CLI invocation."""
    return {
        "command": command,
        "outcome": outcome,
        "exit_code": exit_code,
        "error": error_summary(error),
        "stats": None if stats is None else stats.to_dict(),
        "model": model_summary(model, window=window),
    }
