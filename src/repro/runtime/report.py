"""Machine-readable run reports for the CLI's ``--json`` mode.

A report is a plain dict (JSON-safe) describing one CLI invocation:
the outcome class, the process exit code, the evaluation statistics,
and a summary of the computed (possibly partial) model.  Monitoring
and batch consumers parse this instead of scraping the human output.
"""

from __future__ import annotations

OUTCOME_OK = "ok"
OUTCOME_GAVE_UP = "gave-up"
OUTCOME_BUDGET_EXCEEDED = "budget-exceeded"
OUTCOME_ABORTED = "aborted"
OUTCOME_ERROR = "error"


def model_summary(model, window=None):
    """A JSON-safe summary of a deductive :class:`~repro.core.engine.Model`."""
    if model is None:
        return None
    predicates = {}
    for name in model.predicates():
        relation = model.relation(name)
        entry = {
            "generalized_tuples": len(relation),
            "text": str(relation.coalesce()),
        }
        if window is not None:
            low, high = window
            entry["window"] = {
                "low": low,
                "high": high,
                "tuples": sorted(
                    [list(flat) for flat in model.extension(name, low, high)],
                    key=repr,
                ),
            }
        predicates[name] = entry
    return {"predicates": predicates}


def error_summary(error):
    """A JSON-safe description of an exception: its type, message, and
    (for budget errors) the limit that tripped."""
    if error is None:
        return None
    summary = {"type": type(error).__name__, "message": str(error)}
    limit = getattr(error, "limit", None)
    if limit is not None:
        summary["limit"] = limit
    cause = error.__cause__
    if cause is not None:
        summary["cause"] = {"type": type(cause).__name__, "message": str(cause)}
    return summary


def run_report(command, outcome, exit_code, stats=None, model=None, error=None, window=None):
    """Assemble the full report dict for one CLI invocation."""
    return {
        "command": command,
        "outcome": outcome,
        "exit_code": exit_code,
        "error": error_summary(error),
        "stats": None if stats is None else stats.to_dict(),
        "model": model_summary(model, window=window),
    }
