"""Round-granular checkpoints of the bottom-up fixpoint.

A checkpoint freezes everything :class:`~repro.core.engine.DeductiveEngine`
needs to continue a run mid-stratum: the intensional relations, the
last semi-naive delta, the stratum's negation complements, the known
free-signature sets, the round counters, and the statistics so far —
all serialized to JSON through the canonical ``to_json_dict`` forms of
the gdb layer, so a resumed run replays bit-identically (same canonical
relations, same stats modulo timings) to an uninterrupted one.

A fingerprint of the program text, the EDB text, the evaluation
configuration, and the compiled plans is stored (the plan digest is
both folded into the engine fingerprint and kept as a separate
``plan_fingerprint`` field for inspection); resuming against anything
else raises
:class:`~repro.util.errors.CheckpointError` instead of silently
computing garbage.  Writes are atomic (temp file + rename) so a crash
during a write — the ``checkpoint_write`` fault site injects exactly
that — can never leave a truncated checkpoint behind, and each file
carries a sha256 ``digest`` of its own payload that
:func:`load_checkpoint` re-verifies, so bit rot after a clean write is
refused with a typed error instead of resumed from.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.point import Lrp
from repro.util import hooks
from repro.util.errors import CheckpointError
from repro.util.hooks import fault_point

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 2


def engine_fingerprint(program_text, edb_text, strategy, safety, *extra):
    """A stable digest of everything that must match for a resume.

    ``extra`` chunks extend the digest — the engine passes the compiled
    plan fingerprint so a plan-layer change invalidates old checkpoints."""
    digest = hashlib.sha256()
    for chunk in (program_text, edb_text, strategy, safety) + extra:
        digest.update(chunk.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class Checkpoint:
    """One resumable snapshot of the fixpoint state."""

    fingerprint: str
    stratum_index: int
    rounds_in_stratum: int
    last_growth: int
    env: dict                       # predicate -> GeneralizedRelation (IDB only)
    known_signatures: dict          # predicate -> set of (lrps, data)
    stats: dict                     # EvaluationStats.to_dict()
    delta: Optional[dict] = None    # predicate -> [GeneralizedTuple]
    complements: dict = field(default_factory=dict)
    plan_fingerprint: str = ""      # repro.plan.explain.plan_fingerprint

    def to_json_dict(self):
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "plan_fingerprint": self.plan_fingerprint,
            "stratum_index": self.stratum_index,
            "rounds_in_stratum": self.rounds_in_stratum,
            "last_growth": self.last_growth,
            "env": {
                name: relation.to_json_dict() for name, relation in self.env.items()
            },
            "known_signatures": {
                name: [_signature_to_json(s) for s in sorted(signatures, key=repr)]
                for name, signatures in self.known_signatures.items()
            },
            "stats": self.stats,
            "delta": None
            if self.delta is None
            else {
                name: [gt.to_json_dict() for gt in tuples]
                for name, tuples in self.delta.items()
            },
            "complements": {
                name: relation.to_json_dict()
                for name, relation in self.complements.items()
            },
        }

    @classmethod
    def from_json_dict(cls, payload):
        try:
            if payload.get("format") != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    "not a repro checkpoint (format=%r)" % payload.get("format")
                )
            if payload.get("version") != CHECKPOINT_VERSION:
                raise CheckpointError(
                    "unsupported checkpoint version %r" % payload.get("version")
                )
            delta = payload["delta"]
            return cls(
                fingerprint=payload["fingerprint"],
                plan_fingerprint=payload.get("plan_fingerprint", ""),
                stratum_index=payload["stratum_index"],
                rounds_in_stratum=payload["rounds_in_stratum"],
                last_growth=payload["last_growth"],
                env={
                    name: GeneralizedRelation.from_json_dict(relation)
                    for name, relation in payload["env"].items()
                },
                known_signatures={
                    name: {_signature_from_json(s) for s in signatures}
                    for name, signatures in payload["known_signatures"].items()
                },
                stats=payload["stats"],
                delta=None
                if delta is None
                else {
                    name: [GeneralizedTuple.from_json_dict(t) for t in tuples]
                    for name, tuples in delta.items()
                },
                complements={
                    name: GeneralizedRelation.from_json_dict(relation)
                    for name, relation in payload["complements"].items()
                },
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise CheckpointError("malformed checkpoint: %s" % error) from error


def _signature_to_json(signature):
    lrps, data = signature
    return {"lrps": [[lrp.period, lrp.offset] for lrp in lrps], "data": list(data)}


def _signature_from_json(payload):
    return (
        tuple(Lrp(period, offset) for period, offset in payload["lrps"]),
        tuple(payload["data"]),
    )


#: Filename pattern of the temporary files :func:`write_checkpoint`
#: stages writes through (``<path>.tmp.<pid>.<tid>``).
_TMP_SUFFIX_RE = re.compile(r"\.tmp(\.\d+)*$")


def write_checkpoint(path, checkpoint):
    """Atomically and durably persist a checkpoint to ``path`` as JSON.

    The payload is staged to ``<path>.tmp.<pid>.<tid>``, fsynced, and
    moved into place with :func:`os.replace`; the containing directory
    is then fsynced so the rename itself survives a crash.  A crash at
    any point leaves either the previous checkpoint or the new one —
    never a torn file — at ``path``; at worst a leftover ``*.tmp.*``
    file remains, which :func:`load_checkpoint` refuses to load.  The
    staging name includes both pid and thread id so concurrent writers
    of the same path (e.g. an abandoned worker racing its replacement)
    can never unlink or rename each other's staging file.
    """
    fault_point("checkpoint_write")
    started = time.perf_counter() if hooks.SINKS else None
    body = checkpoint.to_json_dict()
    body["digest"] = _payload_digest(body)
    payload = json.dumps(body, indent=None, sort_keys=False)
    tmp_path = "%s.tmp.%d.%d" % (path, os.getpid(), threading.get_ident())
    try:
        with open(tmp_path, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_directory(os.path.dirname(os.path.abspath(path)))
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    if started is not None:
        hooks.emit(
            "checkpoint.write",
            {
                "path": path,
                "bytes": len(payload),
                "round": checkpoint.stats.get("rounds"),
                "stratum": checkpoint.stratum_index,
                "duration_s": time.perf_counter() - started,
            },
        )


def _fsync_directory(directory):
    """Flush a rename to disk; best-effort where directories cannot be
    opened (e.g. Windows)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _payload_digest(body):
    """sha256 of the checkpoint body serialized exactly as it is
    written (digest key excluded).  ``json.load`` preserves key order,
    so re-serializing a loaded body reproduces the written text."""
    text = json.dumps(
        {k: v for k, v in body.items() if k != "digest"},
        indent=None,
        sort_keys=False,
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def load_checkpoint(path):
    """Load and validate a checkpoint written by :func:`write_checkpoint`.

    Every failure becomes a typed :class:`CheckpointError` carrying the
    path (and the byte offset of the damage, when the JSON decoder can
    report one).  Checkpoints written with a ``digest`` header have
    their sha256 payload digest re-verified, so silent single-bit
    corruption is refused rather than resumed from; digest-less
    checkpoints from older versions still load.
    """
    if _TMP_SUFFIX_RE.search(os.path.basename(path)):
        raise CheckpointError(
            "%s is a leftover temporary checkpoint file (a crash interrupted "
            "a checkpoint write); resume from the committed checkpoint "
            "instead" % path
        )
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        raise CheckpointError(
            "cannot read checkpoint: %s" % error, path=path
        ) from error
    except ValueError as error:
        raise CheckpointError(
            "checkpoint is not valid JSON: %s" % error,
            path=path,
            offset=getattr(error, "pos", None),
        ) from error
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint is not a JSON object", path=path)
    digest = payload.pop("digest", None)
    if digest is not None and digest != _payload_digest(payload):
        raise CheckpointError(
            "checkpoint payload does not match its sha256 digest "
            "(the file was corrupted after being written)",
            path=path,
        )
    return Checkpoint.from_json_dict(payload)
