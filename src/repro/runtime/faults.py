"""Deterministic fault injection for the evaluation runtime.

A :class:`FaultPlan` installs itself as the process-wide hook behind
:func:`repro.util.hooks.fault_point` and triggers configured behaviors
— raising an exception or sleeping — at exact hit counts of named
sites.  Determinism is the point: tests can crash the engine at "the
third clause firing" or "the second checkpoint write" and prove that
every such failure surfaces as a typed
:class:`~repro.util.errors.ReproError` carrying a usable partial model,
and that resuming from a checkpoint written before the fault converges
to the same model as an uninterrupted run.

Instrumented sites
------------------
``clause``
    Entry of :meth:`repro.plan.compiler.ClausePlan.evaluate` (and of
    the reference evaluator) — one hit per clause firing.
``dbm_canonicalize``
    :meth:`repro.constraints.dbm.Dbm.close` actually recomputing a
    shortest-path closure (already-closed matrices do not hit).
``coverage``
    Each tuple-level constraint-safety coverage test
    (:func:`repro.core.safety.covered_paper` / ``covered_semantic``).
``checkpoint_write``
    Entry of :func:`repro.runtime.checkpoint.write_checkpoint`.
``round``
    Each T_GP round boundary in :class:`~repro.core.engine.DeductiveEngine`.
``submit``
    Entry of :meth:`repro.service.pool.QueryService.submit` — one hit
    per job submission.
``worker_start``
    A service worker picking up a job from the queue (before any
    evaluation).  Injecting
    :class:`~repro.util.errors.WorkerDiedError` here deterministically
    "kills" whichever worker makes that hit.
``result_return``
    A service worker about to hand a finished attempt's result back to
    the supervisor — a fault here loses the attempt after the work was
    done, exactly the window retry-with-resume is for.
``shard_dispatch``
    Parent-side send of one round slice to one shard worker
    (:meth:`repro.plan.shard.ShardPool.run_round`) — an injected fault
    is handled exactly like pipe loss: the worker is discarded and its
    slice retried on the survivors.
``shard_worker_crash``
    Hit once per worker per round dispatch, *before* the send; a
    triggered fault SIGKILLs that worker — a real process death, so
    the supervision loop exercises its real broken-pipe / EOF
    detection, retry, and respawn paths.
``shard_worker_hang``
    As ``shard_worker_crash``, but the triggered fault wedges the
    worker in a sleep loop instead, exercising the deadline-bounded
    receive (the parent kills the hung worker once the deadline
    expires and retries its slice).
``wal_append``
    :meth:`repro.edb.wal.Wal.append` after framing a record but
    *before* any byte reaches the segment file — a fault here loses
    the whole record, never half of it (torn writes are modeled by
    SIGKILL mid-process instead, see ``"sigkill"`` below).
``wal_fsync``
    :meth:`repro.edb.wal.Wal.sync` before the ``fsync`` call — the
    window where a record is in the OS page cache but not durable.
``wal_rotate``
    :meth:`repro.edb.wal.Wal.rotate` before the new segment is
    created, between sealing the old segment and opening the next.
``maintain_delta``
    Entry of :meth:`repro.edb.maintain.MaterializedModel.apply_delta`
    — before the incremental maintainer touches the model, so a fault
    leaves the previous materialization intact.

Fault classification
--------------------
:class:`TransientFaultError` subclasses :class:`InjectedFaultError`;
the service retry policy (:mod:`repro.service.retry`) retries
transient faults and worker deaths with backoff, and fails fast on
everything else — so retry-vs-fail-fast behavior in tests is a
property of the injected plan, not of timing.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.util import hooks
from repro.util.errors import ReproError, WorkerDiedError

#: The site names the library instruments.
SITES = (
    "clause",
    "dbm_canonicalize",
    "coverage",
    "checkpoint_write",
    "round",
    "submit",
    "worker_start",
    "result_return",
    "shard_dispatch",
    "shard_worker_crash",
    "shard_worker_hang",
    "wal_append",
    "wal_fsync",
    "wal_rotate",
    "maintain_delta",
)


class InjectedFaultError(ReproError):
    """The exception a :class:`FaultSpec` raises by default.

    Injected faults of this exact class model *permanent* failures —
    the service fails such jobs fast (or degrades the backend) rather
    than retrying.
    """

    def __init__(self, site, hit):
        self.site = site
        self.hit = hit
        super().__init__("injected fault at site %r (hit %d)" % (site, hit))


class TransientFaultError(InjectedFaultError):
    """An injected fault that models a *transient* failure.

    The service retry policy treats exactly this class (plus
    :class:`~repro.util.errors.WorkerDiedError`) as retryable, so a
    fault plan chooses deterministically whether an injection is
    retried with backoff+resume or fails the job fast.
    """

    def __init__(self, site, hit):
        super().__init__(site, hit)
        # Rebuild the message to make the transient class visible in logs.
        self.args = (
            "injected transient fault at site %r (hit %d)" % (site, hit),
        )


class ProcessKillFault:
    """Sentinel error for :data:`ERROR_NAMES` ``"sigkill"``: instead
    of raising, the firing spec SIGKILLs the *current process*.

    This is how crash-recovery smokes model a real torn write: the
    process dies with no chance to unwind, leaving whatever bytes the
    kernel had accepted.  Only meaningful under the CLI (a test that
    installed the plan in-process would kill the test runner)."""


#: Names accepted by :meth:`FaultPlan.from_json_dict` for the ``error``
#: field of a spec.
ERROR_NAMES = {
    "injected": None,  # default InjectedFaultError (permanent)
    "transient": TransientFaultError,
    "worker-died": WorkerDiedError,
    "runtime": RuntimeError,
    "sigkill": ProcessKillFault,
}


@dataclass
class FaultSpec:
    """One behavior at one site: at hit number ``at`` (1-based) of
    ``site``, sleep ``delay_seconds`` and/or raise.

    ``error`` may be an exception instance, an exception class, or
    ``None``; with ``raises=True`` and ``error=None`` an
    :class:`InjectedFaultError` is raised.  ``repeat`` triggers on
    every hit at or after ``at``; ``every=N`` instead triggers
    periodically — on hit ``at``, ``at+N``, ``at+2N``, … — which is how
    a plan models sparse transient faults over a long run.
    """

    site: str
    at: int = 1
    raises: bool = True
    error: Optional[BaseException] = None
    delay_seconds: float = 0.0
    repeat: bool = False
    every: Optional[int] = None

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(
                "unknown fault site %r (expected one of %s)"
                % (self.site, ", ".join(SITES))
            )
        if self.at < 1:
            raise ValueError("hit counts are 1-based; got at=%d" % self.at)
        if self.every is not None and self.every < 1:
            raise ValueError("every must be a positive period; got %r" % self.every)

    def triggers_on(self, hit):
        """True when the spec fires on the given 1-based hit count."""
        if self.every is not None:
            return hit >= self.at and (hit - self.at) % self.every == 0
        return hit == self.at or (self.repeat and hit > self.at)

    def fire(self, hit):
        """Execute the behavior (sleep, then raise if configured)."""
        if self.delay_seconds > 0:
            time.sleep(self.delay_seconds)
        if self.raises:
            error = self.error
            if error is None:
                raise InjectedFaultError(self.site, hit)
            if error is ProcessKillFault:
                os.kill(os.getpid(), signal.SIGKILL)
            if isinstance(error, type):
                if issubclass(error, InjectedFaultError):
                    raise error(self.site, hit)
                raise error("injected fault at site %r (hit %d)" % (self.site, hit))
            raise error


@dataclass
class FaultPlan:
    """A deterministic schedule of faults and delays over named sites.

    Hit counting is thread-safe (service workers hit sites like
    ``clause`` concurrently); the *total* order of hits across threads
    is whatever the scheduler produces, so concurrent tests should use
    specs that do not depend on which thread makes a given hit.

    >>> plan = FaultPlan.inject("coverage", at=2)
    >>> with plan.installed():
    ...     pass  # evaluation under the plan
    >>> plan.hits
    {}
    """

    specs: list = field(default_factory=list)

    @classmethod
    def inject(cls, site, at=1, error=None, repeat=False, every=None):
        """A plan raising at the ``at``-th hit of ``site``."""
        return cls([FaultSpec(site, at=at, error=error, repeat=repeat, every=every)])

    @classmethod
    def delay(cls, site, at=1, seconds=0.0, repeat=False):
        """A plan sleeping ``seconds`` at the ``at``-th hit of ``site``
        without raising."""
        return cls(
            [FaultSpec(site, at=at, raises=False, delay_seconds=seconds, repeat=repeat)]
        )

    @classmethod
    def from_json_dict(cls, payload):
        """Build a plan from a JSON description (the CLI ``--fault-plan``).

        ``payload`` is a list of spec objects (or a dict with a
        ``"specs"`` list); each spec carries ``site`` plus any of
        ``at``, ``repeat``, ``every``, ``delay_seconds``, ``raises``,
        and ``error`` — the error being one of the names in
        :data:`ERROR_NAMES` (``"injected"``, ``"transient"``,
        ``"worker-died"``, ``"runtime"``).
        """
        if isinstance(payload, dict):
            payload = payload.get("specs", [])
        if not isinstance(payload, list):
            raise ValueError("fault plan must be a list of spec objects")
        specs = []
        for entry in payload:
            if not isinstance(entry, dict) or "site" not in entry:
                raise ValueError("fault spec must be an object with a 'site'")
            name = entry.get("error", "injected")
            if name not in ERROR_NAMES:
                raise ValueError(
                    "unknown fault error %r (expected one of %s)"
                    % (name, ", ".join(sorted(ERROR_NAMES)))
                )
            specs.append(
                FaultSpec(
                    entry["site"],
                    at=entry.get("at", 1),
                    raises=entry.get("raises", True),
                    error=ERROR_NAMES[name],
                    delay_seconds=entry.get("delay_seconds", 0.0),
                    repeat=entry.get("repeat", False),
                    every=entry.get("every"),
                )
            )
        return cls(specs)

    def __post_init__(self):
        self.hits = {}
        self._lock = threading.Lock()

    def and_inject(self, site, at=1, error=None, repeat=False, every=None):
        """This plan plus one more fault spec (builder style)."""
        self.specs.append(
            FaultSpec(site, at=at, error=error, repeat=repeat, every=every)
        )
        return self

    def and_delay(self, site, at=1, seconds=0.0, repeat=False):
        """This plan plus one more delay spec (builder style)."""
        self.specs.append(
            FaultSpec(site, at=at, raises=False, delay_seconds=seconds, repeat=repeat)
        )
        return self

    # -- the hook ---------------------------------------------------------

    def __call__(self, site):
        with self._lock:
            hit = self.hits.get(site, 0) + 1
            self.hits[site] = hit
        for spec in self.specs:
            if spec.site == site and spec.triggers_on(hit):
                spec.fire(hit)

    def installed(self):
        """Context manager installing this plan as the process hook.

        Counters reset on entry so a plan can be reused; nesting is
        rejected to keep determinism simple.
        """
        return _Installed(self)


class _Installed:
    def __init__(self, plan):
        self.plan = plan

    def __enter__(self):
        if hooks.FAULT_HOOK is not None:
            raise RuntimeError("another fault plan is already installed")
        self.plan.hits = {}
        hooks.FAULT_HOOK = self.plan
        return self.plan

    def __exit__(self, *exc_info):
        hooks.FAULT_HOOK = None
        return False
