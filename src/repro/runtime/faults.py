"""Deterministic fault injection for the evaluation runtime.

A :class:`FaultPlan` installs itself as the process-wide hook behind
:func:`repro.util.hooks.fault_point` and triggers configured behaviors
— raising an exception or sleeping — at exact hit counts of named
sites.  Determinism is the point: tests can crash the engine at "the
third clause firing" or "the second checkpoint write" and prove that
every such failure surfaces as a typed
:class:`~repro.util.errors.ReproError` carrying a usable partial model,
and that resuming from a checkpoint written before the fault converges
to the same model as an uninterrupted run.

Instrumented sites
------------------
``clause``
    Entry of :meth:`repro.plan.compiler.ClausePlan.evaluate` (and of
    the reference evaluator) — one hit per clause firing.
``dbm_canonicalize``
    :meth:`repro.constraints.dbm.Dbm.close` actually recomputing a
    shortest-path closure (already-closed matrices do not hit).
``coverage``
    Each tuple-level constraint-safety coverage test
    (:func:`repro.core.safety.covered_paper` / ``covered_semantic``).
``checkpoint_write``
    Entry of :func:`repro.runtime.checkpoint.write_checkpoint`.
``round``
    Each T_GP round boundary in :class:`~repro.core.engine.DeductiveEngine`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.util import hooks
from repro.util.errors import ReproError

#: The site names the library instruments.
SITES = ("clause", "dbm_canonicalize", "coverage", "checkpoint_write", "round")


class InjectedFaultError(ReproError):
    """The exception a :class:`FaultSpec` raises by default."""

    def __init__(self, site, hit):
        self.site = site
        self.hit = hit
        super().__init__("injected fault at site %r (hit %d)" % (site, hit))


@dataclass
class FaultSpec:
    """One behavior at one site: at hit number ``at`` (1-based) of
    ``site``, sleep ``delay_seconds`` and/or raise.

    ``error`` may be an exception instance, an exception class, or
    ``None``; with ``raises=True`` and ``error=None`` an
    :class:`InjectedFaultError` is raised.  ``repeat`` triggers on
    every hit at or after ``at`` instead of only once.
    """

    site: str
    at: int = 1
    raises: bool = True
    error: Optional[BaseException] = None
    delay_seconds: float = 0.0
    repeat: bool = False

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(
                "unknown fault site %r (expected one of %s)"
                % (self.site, ", ".join(SITES))
            )
        if self.at < 1:
            raise ValueError("hit counts are 1-based; got at=%d" % self.at)

    def triggers_on(self, hit):
        """True when the spec fires on the given 1-based hit count."""
        return hit == self.at or (self.repeat and hit > self.at)

    def fire(self, hit):
        """Execute the behavior (sleep, then raise if configured)."""
        if self.delay_seconds > 0:
            time.sleep(self.delay_seconds)
        if self.raises:
            error = self.error
            if error is None:
                raise InjectedFaultError(self.site, hit)
            if isinstance(error, type):
                raise error("injected fault at site %r (hit %d)" % (self.site, hit))
            raise error


@dataclass
class FaultPlan:
    """A deterministic schedule of faults and delays over named sites.

    >>> plan = FaultPlan.inject("coverage", at=2)
    >>> with plan.installed():
    ...     pass  # evaluation under the plan
    >>> plan.hits
    {}
    """

    specs: list = field(default_factory=list)

    @classmethod
    def inject(cls, site, at=1, error=None, repeat=False):
        """A plan raising at the ``at``-th hit of ``site``."""
        return cls([FaultSpec(site, at=at, error=error, repeat=repeat)])

    @classmethod
    def delay(cls, site, at=1, seconds=0.0, repeat=False):
        """A plan sleeping ``seconds`` at the ``at``-th hit of ``site``
        without raising."""
        return cls(
            [FaultSpec(site, at=at, raises=False, delay_seconds=seconds, repeat=repeat)]
        )

    def __post_init__(self):
        self.hits = {}

    def and_inject(self, site, at=1, error=None, repeat=False):
        """This plan plus one more fault spec (builder style)."""
        self.specs.append(FaultSpec(site, at=at, error=error, repeat=repeat))
        return self

    def and_delay(self, site, at=1, seconds=0.0, repeat=False):
        """This plan plus one more delay spec (builder style)."""
        self.specs.append(
            FaultSpec(site, at=at, raises=False, delay_seconds=seconds, repeat=repeat)
        )
        return self

    # -- the hook ---------------------------------------------------------

    def __call__(self, site):
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for spec in self.specs:
            if spec.site == site and spec.triggers_on(hit):
                spec.fire(hit)

    def installed(self):
        """Context manager installing this plan as the process hook.

        Counters reset on entry so a plan can be reused; nesting is
        rejected to keep determinism simple.
        """
        return _Installed(self)


class _Installed:
    def __init__(self, plan):
        self.plan = plan

    def __enter__(self):
        if hooks.FAULT_HOOK is not None:
            raise RuntimeError("another fault plan is already installed")
        self.plan.hits = {}
        hooks.FAULT_HOOK = self.plan
        return self.plan

    def __exit__(self, *exc_info):
        hooks.FAULT_HOOK = None
        return False
