"""Hard resource budgets for the fixpoint loops.

The paper's own termination story is partial: Theorem 4.2 guarantees
free-extension safety is reached, but constraint safety "may never
hold", and Section 4.3 recommends giving up after a few iterations.
The give-up policy (patience on the free-signature set) is one budget;
this module supplies the rest — wall-clock deadlines and caps on
rounds, accepted tuples, and derived-tuple work — checked cooperatively
at every round boundary and every clause firing, so a pathological
program can never hold the process hostage.

An :class:`EvaluationBudget` is immutable configuration; calling
:meth:`~EvaluationBudget.start` produces a :class:`BudgetMeter` that
accumulates charges for one run and raises
:class:`~repro.util.errors.BudgetExceededError` the moment a limit
trips.  The engine catches the error at the top of its loop, attaches
the partial model, and re-raises — callers always get a typed error
with a queryable partial result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.util import hooks
from repro.util.errors import BudgetExceededError


@dataclass(frozen=True)
class EvaluationBudget:
    """Limits for one evaluation run; ``None`` disables a dimension.

    ``deadline_seconds``
        Wall-clock ceiling for the whole run, checked at round
        boundaries and before every clause firing.
    ``max_rounds``
        Cap on fixpoint rounds (T_GP applications across all strata,
        or time slices / fixpoint passes for the Datalog1S evaluators).
    ``max_tuples``
        Cap on tuples *accepted* into the interpretation.
    ``max_derived``
        Cap on total derived-tuple work, counting every tuple a clause
        produces before coverage filtering — the measure of effort on
        programs that keep re-deriving covered tuples.

    >>> EvaluationBudget(max_rounds=10).limited()
    True
    >>> EvaluationBudget().limited()
    False
    """

    deadline_seconds: Optional[float] = None
    max_rounds: Optional[int] = None
    max_tuples: Optional[int] = None
    max_derived: Optional[int] = None

    def __post_init__(self):
        for name in ("deadline_seconds", "max_rounds", "max_tuples", "max_derived"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError("%s must be non-negative, got %r" % (name, value))

    def limited(self):
        """True when at least one dimension is constrained."""
        return any(
            value is not None
            for value in (
                self.deadline_seconds,
                self.max_rounds,
                self.max_tuples,
                self.max_derived,
            )
        )

    def start(self, clock=None):
        """A fresh :class:`BudgetMeter` charging against this budget."""
        return BudgetMeter(self, clock=clock)


class BudgetMeter:
    """Mutable per-run accountant for an :class:`EvaluationBudget`.

    The fixpoint loops call the ``charge_*`` methods as work happens;
    any method may raise :class:`BudgetExceededError` (without a
    partial model — the engine attaches it where the environment is in
    scope).  ``clock`` is injectable for tests.
    """

    def __init__(self, budget, clock=None):
        self.budget = budget
        self._clock = clock or time.monotonic
        self.started_at = self._clock()
        self.rounds = 0
        self.accepted = 0
        self.derived = 0

    def elapsed(self):
        """Wall-clock seconds since the meter started."""
        return self._clock() - self.started_at

    def check_deadline(self, site="evaluation"):
        """Raise when the wall-clock deadline has passed."""
        deadline = self.budget.deadline_seconds
        if deadline is not None and self.elapsed() > deadline:
            raise BudgetExceededError(
                "wall-clock deadline of %gs exceeded at %s (%.3fs elapsed)"
                % (deadline, site, self.elapsed()),
                limit="deadline_seconds",
            )

    def _emit_charge(self, dimension, amount, total, limit):
        if hooks.SINKS:
            hooks.emit(
                "budget.charge",
                {
                    "dimension": dimension,
                    "amount": amount,
                    "total": total,
                    "limit": limit,
                },
            )

    def charge_round(self):
        """Account for one fixpoint round starting."""
        self.rounds += 1
        limit = self.budget.max_rounds
        self._emit_charge("rounds", 1, self.rounds, limit)
        if limit is not None and self.rounds > limit:
            raise BudgetExceededError(
                "round budget of %d exceeded" % limit, limit="max_rounds"
            )
        self.check_deadline("round boundary")

    def charge_derived(self, count=1):
        """Account for ``count`` tuples derived by clause firings."""
        self.derived += count
        limit = self.budget.max_derived
        self._emit_charge("derived", count, self.derived, limit)
        if limit is not None and self.derived > limit:
            raise BudgetExceededError(
                "derived-tuple work budget of %d exceeded (%d derived)"
                % (limit, self.derived),
                limit="max_derived",
            )

    def charge_accepted(self, count=1):
        """Account for ``count`` tuples accepted into the model."""
        self.accepted += count
        limit = self.budget.max_tuples
        self._emit_charge("accepted", count, self.accepted, limit)
        if limit is not None and self.accepted > limit:
            raise BudgetExceededError(
                "accepted-tuple budget of %d exceeded (%d accepted)"
                % (limit, self.accepted),
                limit="max_tuples",
            )

    def tick_clause(self):
        """Cheap per-clause-firing check (deadline only)."""
        self.check_deadline("clause firing")

    def tick_stratum(self):
        """Deadline-only check at a stratum boundary — the engine's
        coarse governor hook between the per-stratum shard broadcasts.
        Emits no ``budget.charge`` event, so parallel and sequential
        runs keep byte-identical event streams."""
        self.check_deadline("stratum boundary")

    def snapshot(self):
        """The meter's counters as a plain dict (for run reports)."""
        return {
            "rounds": self.rounds,
            "accepted": self.accepted,
            "derived": self.derived,
            "elapsed_seconds": self.elapsed(),
        }
