"""Generalized relations and their algebra (paper Section 2.1, [KSW90]).

A generalized relation is a finite set of generalized tuples of fixed
temporal and data arity; it finitely represents a possibly infinite
set of ground tuples.  The algebra provided here is the one the paper
relies on for bottom-up evaluation (Section 4.3): intersection, join
(as product + selection + projection), and projection — all PTIME on
the representation — plus union, difference, complement and column
shifts, under which the class of representable relations is closed.
"""

from __future__ import annotations

import itertools

from repro.constraints.dbm import Dbm, INF
from repro.constraints.system import ConstraintSystem
from repro.gdb import kernel
from repro.gdb.store import ColumnStore
from repro.gdb.tuple import GeneralizedTuple, signature_id
from repro.lrp.point import Lrp
from repro.util.errors import SchemaError


class GeneralizedRelation:
    """A finite set of :class:`GeneralizedTuple` of uniform schema.

    The class is a value object: mutating methods return new relations.

    >>> from repro.gdb import GeneralizedRelation, GeneralizedTuple
    >>> from repro.lrp import Lrp
    >>> from repro.constraints import ConstraintSystem
    >>> rel = GeneralizedRelation(2, 2)
    >>> rel = rel.with_tuple(GeneralizedTuple(
    ...     (Lrp(40, 5), Lrp(40, 25)), ("Liege", "Brussels"),
    ...     ConstraintSystem.parse("T1 >= 0 & T2 = T1 + 60", 2)))
    >>> rel.contains_point((45, 105), ("Liege", "Brussels"))
    True
    """

    __slots__ = (
        "temporal_arity",
        "data_arity",
        "tuples",
        "_data_indexes",
        "_sig_index",
        "_coverage_cache",
        "_store",
        "coverage_generation",
    )

    def __init__(self, temporal_arity, data_arity, tuples=()):
        self.temporal_arity = temporal_arity
        self.data_arity = data_arity
        self.tuples = tuple(tuples)
        self._data_indexes = None
        self._sig_index = None
        self._coverage_cache = None
        self._store = None
        self.coverage_generation = 0
        for gt in self.tuples:
            self._check(gt)

    @classmethod
    def _trusted(cls, temporal_arity, data_arity, tuples):
        """Internal constructor skipping the per-tuple schema check —
        for callers (plan executor, :meth:`with_tuples`) that already
        guarantee the schema."""
        relation = cls.__new__(cls)
        relation.temporal_arity = temporal_arity
        relation.data_arity = data_arity
        relation.tuples = tuple(tuples)
        relation._data_indexes = None
        relation._sig_index = None
        relation._coverage_cache = None
        relation._store = None
        relation.coverage_generation = 0
        return relation

    # -- columnar backing store -------------------------------------------

    def _kernel_store(self):
        """The shared :class:`ColumnStore` when this view still covers
        its full row prefix; None when a sibling growth moved past it
        (older views then fall back to private per-instance caches)."""
        store = self._store
        if store is not None and len(store) == len(self.tuples):
            return store
        return None

    def _ensure_store(self):
        """This view's store, built (or rebuilt after a prefix
        mismatch) from the current tuples on first need.  The
        per-instance coverage cache, if any, migrates into it."""
        store = self._kernel_store()
        if store is None:
            store = ColumnStore(
                self.tuples,
                generation=self.coverage_generation,
                coverage=self._coverage_cache,
            )
            self._store = store
            self._coverage_cache = None
        return store

    def _check(self, gt):
        if gt.temporal_arity != self.temporal_arity or gt.data_arity != self.data_arity:
            raise SchemaError(
                "tuple %s does not match schema [%d; %d]"
                % (gt, self.temporal_arity, self.data_arity)
            )

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls, temporal_arity, data_arity=0):
        """The empty relation of the given schema."""
        return cls(temporal_arity, data_arity)

    @classmethod
    def universe(cls, temporal_arity, data_values=()):
        """The relation ``ℤ^m × {data_values}`` (one unconstrained tuple
        per data vector; for data arity 0 this is all of ℤ^m)."""
        carriers = tuple(Lrp.constant_carrier() for _ in range(temporal_arity))
        vectors = list(data_values) if data_values else [()]
        tuples = [GeneralizedTuple(carriers, vector) for vector in vectors]
        data_arity = len(tuples[0].data)
        return cls(temporal_arity, data_arity, tuples)

    def with_tuple(self, gt):
        """This relation plus one more tuple."""
        return self.with_tuples((gt,))

    def with_tuples(self, gts):
        """This relation plus the given tuples.

        Only the new tuples are schema-checked (the existing ones were
        checked when this relation was built), so growing a relation by
        a delta is O(len(delta)), not O(len(relation)).

        The coverage cache (see :meth:`coverage_cache`) is the one
        cache that survives the "mutation": inserts only ever *add*
        tuples, so a positive coverage verdict stays valid forever and
        a negative one only goes stale for the free signatures the new
        tuples carry.  The grown relation therefore inherits every
        cached verdict except the negatives of touched signatures, and
        its generation counter is bumped so observers can see the
        insert happened.
        """
        gts = tuple(gts)
        for gt in gts:
            self._check(gt)
        if kernel.ENABLED:
            # Columnar path: hand the shared store to the grown view.
            # The append drops stale negative coverage verdicts in
            # place (no O(n) cache copy) and bumps the one generation
            # counter both views' bookkeeping mirrors.
            store = self._ensure_store()
            store.append(gts)
            grown = GeneralizedRelation._trusted(
                self.temporal_arity, self.data_arity, self.tuples + gts
            )
            grown._store = store
            grown.coverage_generation = store.generation
            return grown
        grown = GeneralizedRelation._trusted(
            self.temporal_arity, self.data_arity, self.tuples + gts
        )
        grown.coverage_generation = self.coverage_generation + 1
        cache = self._coverage_cache
        if cache:
            touched = {gt.free_signature() for gt in gts}
            inherited = {}
            for signature, verdicts in cache.items():
                if signature in touched:
                    kept = {key: True for key, value in verdicts.items() if value}
                    if kept:
                        inherited[signature] = kept
                else:
                    inherited[signature] = dict(verdicts)
            grown._coverage_cache = inherited
        return grown

    # -- structure ------------------------------------------------------------

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def is_empty(self):
        """Exact: True when the relation denotes no ground tuple."""
        return all(gt.is_empty() for gt in self.tuples)

    def contains_point(self, times, data=()):
        """Membership of a ground tuple."""
        return any(gt.contains_point(times, data) for gt in self.tuples)

    def extension(self, low, high):
        """All ground tuples whose temporal components lie in the
        window ``[low, high)``, as a set of flat tuples
        ``times + data``.  This is the brute-force oracle used for
        cross-validation throughout the test suite."""
        result = set()
        for gt in self.tuples:
            pools = [lrp.enumerate(low, high) for lrp in gt.lrps]
            for times in itertools.product(*pools):
                if gt.constraints.satisfied_by(times):
                    result.add(tuple(times) + gt.data)
        return result

    def data_values(self, column):
        """The set of constants appearing in a data column (the active
        domain of that column)."""
        return set(self.data_index(column))

    # -- indexes ------------------------------------------------------------
    #
    # Relations are value objects, so the lazily built indexes below can
    # never go stale: "mutation" always produces a fresh instance whose
    # caches start empty.  This is the invalidation-on-mutation the
    # round-level caching relies on.

    def data_index(self, column):
        """Hash index on a data column: ``{value: (tuple positions…)}``
        in tuple order.  Served incrementally from the shared column
        store while this view covers its full row prefix; otherwise
        built lazily per instance and cached for the relation's
        lifetime."""
        if kernel.ENABLED:
            store = self._kernel_store()
            if store is None and self._data_indexes is None and self.tuples:
                store = self._ensure_store()
            if store is not None:
                return store.data_index(column)
        if self._data_indexes is None:
            self._data_indexes = {}
        index = self._data_indexes.get(column)
        if index is None:
            index = {}
            for position, gt in enumerate(self.tuples):
                index.setdefault(gt.data[column], []).append(position)
            self._data_indexes[column] = index
        return index

    def signature_index(self):
        """Index on the free-extension (lrp + data) signature:
        ``{signature: [tuples…]}`` in tuple order.  Consulted by the
        coverage tests of the engine's safety bookkeeping — one hash
        lookup instead of a full scan per derived tuple."""
        if self._sig_index is None:
            index = {}
            for gt in self.tuples:
                index.setdefault(gt.free_signature(), []).append(gt)
            self._sig_index = index
        return self._sig_index

    def tuples_with_signature(self, signature):
        """The tuples whose free extension matches ``signature``.

        With the kernel enabled the lookup goes through the store's
        incremental id-keyed index, so growth re-indexes only the new
        rows instead of rebuilding from scratch."""
        if kernel.ENABLED:
            store = self._kernel_store()
            if store is None and self._sig_index is None and self.tuples:
                store = self._ensure_store()
            if store is not None:
                return store.tuples_with_signature_id(signature_id(signature))
        return self.signature_index().get(signature, [])

    def tuples_with_signature_id(self, sid):
        """The tuples whose free signature interned to ``sid`` (store
        fast path; falls back through the signature object)."""
        if kernel.ENABLED:
            store = self._kernel_store()
            if store is None and self._sig_index is None and self.tuples:
                store = self._ensure_store()
            if store is not None:
                return store.tuples_with_signature_id(sid)
        from repro.gdb.tuple import signature_of_id

        return self.signature_index().get(signature_of_id(sid), [])

    def coverage_cache(self):
        """The cross-round coverage memo:
        ``{free signature: {constraint canonical key: covered?}}``.

        Written by the engine's coverage test (see
        :class:`repro.core.safety.CoverageChecker`): a verdict recorded
        here is valid for this exact relation value.  Unlike the lazy
        indexes above it is *carried across* :meth:`with_tuples` —
        inserts are monotone, so positive verdicts survive and only the
        negatives of the inserted tuples' signatures are dropped.  That
        carry-over is what lets unchanged signatures skip
        ``implied_by_union`` entirely from round to round.
        """
        if kernel.ENABLED:
            return self._ensure_store().coverage
        cache = self._coverage_cache
        if cache is None:
            cache = self._coverage_cache = {}
        return cache

    # -- algebra ------------------------------------------------------------------

    def _same_schema(self, other):
        if (
            other.temporal_arity != self.temporal_arity
            or other.data_arity != self.data_arity
        ):
            raise SchemaError("relation schemas differ")

    def union(self, other):
        """Set union (same schema)."""
        self._same_schema(other)
        return GeneralizedRelation(
            self.temporal_arity, self.data_arity, self.tuples + other.tuples
        )

    def intersect(self, other):
        """Set intersection: per-column lrp intersection (CRT) plus
        constraint conjunction — PTIME per tuple pair ([KSW90])."""
        self._same_schema(other)
        result = []
        for a in self.tuples:
            for b in other.tuples:
                if a.data != b.data:
                    continue
                lrps = []
                empty = False
                for la, lb in zip(a.lrps, b.lrps):
                    meet = la.intersect(lb)
                    if meet is None:
                        empty = True
                        break
                    lrps.append(meet)
                if empty:
                    continue
                constraints = a.constraints.conjoin(b.constraints)
                if not constraints.is_satisfiable():
                    continue
                merged = GeneralizedTuple(
                    tuple(lrps), a.data, constraints
                ).propagate_equalities()
                if merged is not None:
                    result.append(merged)
        return GeneralizedRelation(self.temporal_arity, self.data_arity, result)

    def select(self, atoms):
        """Selection by a conjunction of constraint atoms
        (:class:`~repro.constraints.atoms.Comparison` over the temporal
        columns)."""
        result = []
        for gt in self.tuples:
            refined = gt.conjoined(atoms)
            if refined is not None:
                result.append(refined)
        return GeneralizedRelation(self.temporal_arity, self.data_arity, result)

    def select_data_constant(self, column, value):
        """Selection ``data[column] = value`` (via the data hash index)."""
        kept = [self.tuples[k] for k in self.data_index(column).get(value, ())]
        return GeneralizedRelation._trusted(self.temporal_arity, self.data_arity, kept)

    def select_data_equal(self, column_a, column_b):
        """Selection ``data[a] = data[b]``."""
        kept = [gt for gt in self.tuples if gt.data[column_a] == gt.data[column_b]]
        return GeneralizedRelation(self.temporal_arity, self.data_arity, kept)

    def project(self, keep_temporal, keep_data, force_aligned=False):
        """Projection onto the listed temporal and data columns (order
        significant; exact, see :meth:`GeneralizedTuple.project`)."""
        result = []
        for gt in self.tuples:
            result.extend(
                gt.project(keep_temporal, keep_data, force_aligned=force_aligned)
            )
        return GeneralizedRelation(len(keep_temporal), len(keep_data), result)

    def join(self, other, temporal_pairs=(), data_pairs=()):
        """Natural join: equality on the given column pairs (left
        index, right index — both 0-based within their relation), the
        right-hand join columns projected away.

        Executed as a fused hash join rather than the literal
        product-select-project: matching data tuples are found through
        the right side's data hash index, and the temporal equalities
        are conjoined into each candidate pair's zone in a single
        closure (empty pairs never materialize).

        >>> left = GeneralizedRelation.universe(1)
        >>> right = GeneralizedRelation.universe(1)
        >>> left.join(right, temporal_pairs=[(0, 0)]).temporal_arity
        1
        """
        from repro.constraints.atoms import Comparison, TemporalTerm

        atoms = [
            Comparison(
                "=",
                TemporalTerm(left),
                TemporalTerm(self.temporal_arity + right),
            )
            for (left, right) in temporal_pairs
        ]
        drop_temporal = {self.temporal_arity + right for (_, right) in temporal_pairs}
        drop_data = {self.data_arity + right for (_, right) in data_pairs}
        keep_temporal = [
            k
            for k in range(self.temporal_arity + other.temporal_arity)
            if k not in drop_temporal
        ]
        keep_data = [
            k
            for k in range(self.data_arity + other.data_arity)
            if k not in drop_data
        ]
        if data_pairs:
            left_cols = [left for (left, _) in data_pairs]
            if len(data_pairs) == 1:
                index = other.data_index(data_pairs[0][1])
                buckets = {value: [other.tuples[k] for k in positions]
                           for value, positions in index.items()}
            else:
                buckets = {}
                right_cols = [right for (_, right) in data_pairs]
                for gt in other.tuples:
                    key = tuple(gt.data[c] for c in right_cols)
                    buckets.setdefault(key, []).append(gt)

            def candidates(a):
                key = tuple(a.data[c] for c in left_cols)
                return buckets.get(key[0] if len(key) == 1 else key, ())
        else:
            def candidates(a):
                return other.tuples

        result = []
        for a in self.tuples:
            for b in candidates(a):
                joined = a.joined(b, atoms)
                if joined is None:
                    continue
                result.extend(joined.project(keep_temporal, keep_data))
        return GeneralizedRelation._trusted(
            len(keep_temporal), len(keep_data), result
        )

    def product(self, other):
        """Cartesian product (columns concatenated)."""
        tuples = [a.product(b) for a in self.tuples for b in other.tuples]
        return GeneralizedRelation(
            self.temporal_arity + other.temporal_arity,
            self.data_arity + other.data_arity,
            tuples,
        )

    def shift(self, column, delta):
        """Advance a temporal column by ``delta`` (the ``+1``/``-1``
        functions of the deductive language, iterated)."""
        tuples = [gt.shift_column(column, delta) for gt in self.tuples]
        return GeneralizedRelation(self.temporal_arity, self.data_arity, tuples)

    def permuted(self, order):
        """Reorder temporal columns."""
        tuples = [gt.permuted(order) for gt in self.tuples]
        return GeneralizedRelation(len(order), self.data_arity, tuples)

    def difference(self, other):
        """Exact set difference (same schema)."""
        self._same_schema(other)
        result = []
        for gt in self.tuples:
            result.extend(gt.subtract(other.tuples))
        return GeneralizedRelation(self.temporal_arity, self.data_arity, result)

    def complement(self, data_domains=None):
        """Exact complement of the temporal content.

        For data arity 0 this is ``ℤ^m`` minus the relation.  With data
        columns a finite domain per column must be supplied (or is
        taken as the active domain); the complement is then relative to
        ``ℤ^m × domains`` — the usual active-domain semantics for the
        uninterpreted sort.
        """
        if self.data_arity == 0:
            vectors = [()]
        else:
            if data_domains is None:
                data_domains = [
                    sorted(self.data_values(c), key=repr)
                    for c in range(self.data_arity)
                ]
            vectors = list(itertools.product(*data_domains))
        carriers = tuple(Lrp.constant_carrier() for _ in range(self.temporal_arity))
        result = []
        for vector in vectors:
            universe = GeneralizedTuple(carriers, vector)
            matching = [gt for gt in self.tuples if gt.data == vector]
            result.extend(universe.subtract(matching))
        return GeneralizedRelation(self.temporal_arity, self.data_arity, result)

    # -- comparison ------------------------------------------------------------------

    def contains(self, other):
        """Exact extension containment ``other ⊆ self``."""
        self._same_schema(other)
        return other.difference(self).is_empty()

    def equivalent(self, other):
        """Exact extension equality."""
        return self.contains(other) and other.contains(self)

    # -- serialization ------------------------------------------------------------------

    def to_json_dict(self):
        """A JSON-safe dict round-tripping through :meth:`from_json_dict`.

        Tuple order is preserved, so a relation restored from a
        checkpoint iterates identically to the original — the property
        the resume machinery relies on for bit-identical replay.
        """
        return {
            "temporal_arity": self.temporal_arity,
            "data_arity": self.data_arity,
            "tuples": [gt.to_json_dict() for gt in self.tuples],
        }

    @classmethod
    def from_json_dict(cls, payload):
        """Rebuild a relation serialized by :meth:`to_json_dict`.

        Constraint systems repeat heavily across a relation's tuples,
        so each distinct serialized system is decoded (and its zone
        canonicalized) once and shared — the payload format itself is
        unchanged.
        """
        systems = {}
        tuples = []
        for entry in payload["tuples"]:
            serialized = entry.get("constraints")
            if serialized is None:
                constraints = None
            else:
                key = (
                    serialized["arity"],
                    tuple(tuple(bound) for bound in serialized["bounds"]),
                )
                constraints = systems.get(key)
                if constraints is None:
                    constraints = systems[key] = ConstraintSystem.from_json_dict(
                        serialized
                    )
            lrps = tuple(Lrp(period, offset) for period, offset in entry["lrps"])
            tuples.append(GeneralizedTuple(lrps, tuple(entry["data"]), constraints))
        return cls(payload["temporal_arity"], payload["data_arity"], tuples)

    # -- normalization ------------------------------------------------------------------

    def normalize(self, prune_empty=True, prune_subsumed=False):
        """Remove duplicate (and optionally empty / subsumed) tuples.

        ``prune_subsumed`` performs the exact pairwise containment test
        and is quadratic; it is off by default because the bottom-up
        engine has its own safety bookkeeping.
        """
        seen = set()
        kept = []
        use_row_keys = kernel.ENABLED
        for gt in self.tuples:
            # row_key is the interned (sid, cid) pair — an integer
            # compare bijective with canonical_key.
            key = gt.row_key() if use_row_keys else gt.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            if prune_empty and gt.is_empty():
                continue
            kept.append(gt)
        if prune_subsumed:
            changed = True
            while changed:
                changed = False
                for index, candidate in enumerate(kept):
                    others = kept[:index] + kept[index + 1 :]
                    if any(o.contains_tuple(candidate) for o in others):
                        kept.pop(index)
                        changed = True
                        break
        return GeneralizedRelation(self.temporal_arity, self.data_arity, kept)

    def coalesce(self):
        """Heuristically merge tuples to shrink the representation.

        Two exact rules are applied to fixpoint:

        * *zone merge* — same lrps and data, and the convex hull of the
          two zones adds no new points;
        * *lrp merge* — same data and constraints, lrps equal except in
          one column where the two residue classes unite into a single
          coarser class.
        """
        tuples = list(self.normalize().tuples)
        changed = True
        while changed:
            changed = False
            for i in range(len(tuples)):
                for j in range(i + 1, len(tuples)):
                    merged = _try_merge(tuples[i], tuples[j])
                    if merged is not None:
                        tuples[i] = merged
                        tuples.pop(j)
                        changed = True
                        break
                if changed:
                    break
        return GeneralizedRelation(self.temporal_arity, self.data_arity, tuples)

    def __str__(self):
        header = "[%d; %d]" % (self.temporal_arity, self.data_arity)
        if not self.tuples:
            return "%s {}" % header
        body = "\n".join("  %s" % gt for gt in self.tuples)
        return "%s {\n%s\n}" % (header, body)

    def __repr__(self):
        return "GeneralizedRelation(%d, %d, %d tuples)" % (
            self.temporal_arity,
            self.data_arity,
            len(self.tuples),
        )


def _try_merge(a, b):
    """Attempt an exact merge of two tuples; None when not applicable."""
    if a.data != b.data:
        return None
    if a.lrps == b.lrps:
        hull = _zone_hull(a.constraints, b.constraints)
        residue = hull.minus(a.constraints)
        residue = [
            piece
            for system in residue
            for piece in system.minus(b.constraints)
        ]
        if not residue:
            return GeneralizedTuple(a.lrps, a.data, hull)
        return None
    if a.constraints == b.constraints:
        differing = [
            k for k, (la, lb) in enumerate(zip(a.lrps, b.lrps)) if la != lb
        ]
        if len(differing) == 1:
            k = differing[0]
            la, lb = a.lrps[k], b.lrps[k]
            if la.period == lb.period and la.period % 2 == 0:
                half = la.period // 2
                if (la.offset - lb.offset) % la.period == half:
                    merged = Lrp(half, la.offset)
                    lrps = list(a.lrps)
                    lrps[k] = merged
                    return GeneralizedTuple(tuple(lrps), a.data, a.constraints)
    return None


def _zone_hull(a, b):
    """The smallest zone containing two constraint systems (entrywise
    max of the closed DBMs)."""
    if not a.is_satisfiable():
        return b
    if not b.is_satisfiable():
        return a
    za, zb = a.zone(), b.zone()
    za.close()
    zb.close()
    hull = Dbm.unconstrained(za.size)
    for (i, j, ca) in za.finite_bounds():
        cb = zb.bound(i, j)
        if cb != INF:
            hull.add_bound(i, j, max(ca, cb))
    return ConstraintSystem(a.arity, hull)
