"""Named generalized relations with schemas.

A :class:`GeneralizedDatabase` is the extensional layer the deductive
language of Section 4 evaluates over: a mapping from predicate names
to :class:`~repro.gdb.relation.GeneralizedRelation`, each with a
declared temporal and data arity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gdb.relation import GeneralizedRelation
from repro.util.errors import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """The declared shape of a relation: name, temporal arity, data arity."""

    name: str
    temporal_arity: int
    data_arity: int

    def __str__(self):
        return "%s[%d; %d]" % (self.name, self.temporal_arity, self.data_arity)


class GeneralizedDatabase:
    """A mutable collection of named generalized relations.

    >>> db = GeneralizedDatabase()
    >>> db.declare("train", 2, 2)
    RelationSchema(name='train', temporal_arity=2, data_arity=2)
    >>> db.schema("train").temporal_arity
    2
    """

    def __init__(self):
        self._schemas = {}
        self._relations = {}

    def declare(self, name, temporal_arity, data_arity=0):
        """Declare a relation; idempotent when the schema agrees."""
        schema = RelationSchema(name, temporal_arity, data_arity)
        existing = self._schemas.get(name)
        if existing is not None:
            if existing != schema:
                raise SchemaError(
                    "relation %r redeclared with different schema: %s vs %s"
                    % (name, existing, schema)
                )
            return existing
        self._schemas[name] = schema
        self._relations[name] = GeneralizedRelation.empty(temporal_arity, data_arity)
        return schema

    def names(self):
        """The declared relation names, in declaration order."""
        return list(self._schemas)

    def schema(self, name):
        """The schema of a declared relation."""
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError("unknown relation %r" % name) from None

    def relation(self, name):
        """The current contents of a declared relation."""
        self.schema(name)
        return self._relations[name]

    def set_relation(self, name, relation):
        """Replace the contents of a declared relation."""
        schema = self.schema(name)
        if (
            relation.temporal_arity != schema.temporal_arity
            or relation.data_arity != schema.data_arity
        ):
            raise SchemaError(
                "relation %s has schema [%d; %d], got [%d; %d]"
                % (
                    name,
                    schema.temporal_arity,
                    schema.data_arity,
                    relation.temporal_arity,
                    relation.data_arity,
                )
            )
        self._relations[name] = relation

    def add_tuple(self, name, gt):
        """Append one generalized tuple to a declared relation."""
        self.set_relation(name, self.relation(name).with_tuple(gt))

    def copy(self):
        """A shallow copy (relations are immutable, so this is safe)."""
        clone = GeneralizedDatabase()
        clone._schemas = dict(self._schemas)
        clone._relations = dict(self._relations)
        return clone

    def __contains__(self, name):
        return name in self._schemas

    def __str__(self):
        chunks = []
        for name, schema in self._schemas.items():
            rel = self._relations[name]
            body = "\n".join("  %s;" % gt for gt in rel)
            chunks.append(
                "relation %s {\n%s\n}" % (schema, body) if len(rel) else
                "relation %s {}" % schema
            )
        return "\n\n".join(chunks)
