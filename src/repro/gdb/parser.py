"""Text format for generalized databases.

The grammar mirrors the tables of the paper (Examples 2.1 and 4.1)::

    relation train[2; 2] {
      (40n+5, 40n+65; "Liege", "Brussels") where T1 >= 0 & T2 = T1 + 60;
    }

    relation course[2; 1] {
      (168n+8, 168n+10; "database") where T2 = T1 + 2;
    }

* Temporal entries are lrp literals ``a n + b`` (``n``, ``5n``,
  ``n+3``, ``168n+8``) or plain integers, which — following the
  paper's constant-elimination rule — become the lrp ``n`` with the
  constraint ``Ti = c``.
* Data entries after the ``;`` are quoted strings, integers, or bare
  identifiers (symbolic constants).
* The optional ``where`` clause is a conjunction of gap-order atoms
  over ``T1 … Tm`` separated by ``,``, ``&`` or ``and``.
"""

from __future__ import annotations

from repro.constraints.atoms import Comparison, TemporalTerm, parse_comparison
from repro.constraints.system import ConstraintSystem
from repro.gdb.database import GeneralizedDatabase
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.point import Lrp
from repro.util.errors import ParseError
from repro.util.lexing import Lexer, TokenKind


def _parse_lrp_entry(lexer):
    """Parse one temporal entry; returns ``(lrp, pinned_constant)``
    where ``pinned_constant`` is not None for plain integers."""
    token = lexer.peek()
    negative = False
    if token.kind is TokenKind.MINUS:
        lexer.next()
        negative = True
        token = lexer.peek()
    if token.kind is TokenKind.NUMBER:
        lexer.next()
        value = int(token.value)
        # "168n+8" lexes as NUMBER IDENT; a lone NUMBER is a constant.
        follower = lexer.peek()
        if not negative and follower.kind is TokenKind.IDENT and follower.value == "n":
            lexer.next()
            period = value
            offset = 0
            if lexer.peek().kind is TokenKind.PLUS:
                lexer.next()
                offset = int(lexer.expect(TokenKind.NUMBER).value)
            elif lexer.peek().kind is TokenKind.MINUS:
                lexer.next()
                offset = -int(lexer.expect(TokenKind.NUMBER).value)
            return Lrp(period, offset), None
        constant = -value if negative else value
        return Lrp.constant_carrier(), constant
    if token.kind is TokenKind.IDENT and token.value == "n":
        lexer.next()
        offset = 0
        if lexer.peek().kind is TokenKind.PLUS:
            lexer.next()
            offset = int(lexer.expect(TokenKind.NUMBER).value)
        elif lexer.peek().kind is TokenKind.MINUS:
            lexer.next()
            offset = -int(lexer.expect(TokenKind.NUMBER).value)
        return Lrp(1, offset), None
    raise ParseError(
        "expected an lrp literal or integer, found %s" % token,
        token.line,
        token.column,
    )


def _parse_data_entry(lexer):
    token = lexer.next()
    if token.kind is TokenKind.STRING:
        return token.value
    if token.kind is TokenKind.NUMBER:
        return int(token.value)
    if token.kind is TokenKind.MINUS:
        number = lexer.expect(TokenKind.NUMBER)
        return -int(number.value)
    if token.kind is TokenKind.IDENT:
        return token.value
    raise ParseError(
        "expected a data constant, found %s" % token, token.line, token.column
    )


def _parse_tuple_body(lexer, temporal_arity, data_arity):
    lexer.expect(TokenKind.LPAREN)
    lrps = []
    pinned = []
    for index in range(temporal_arity):
        if index:
            lexer.expect(TokenKind.COMMA)
        lrp, constant = _parse_lrp_entry(lexer)
        lrps.append(lrp)
        if constant is not None:
            pinned.append((index, constant))
    data = []
    if data_arity:
        lexer.expect(TokenKind.SEMICOLON)
        for index in range(data_arity):
            if index:
                lexer.expect(TokenKind.COMMA)
            data.append(_parse_data_entry(lexer))
    lexer.expect(TokenKind.RPAREN)
    atoms = [
        Comparison("=", TemporalTerm(index), TemporalTerm(None, constant))
        for (index, constant) in pinned
    ]
    if lexer.accept_keyword("where"):
        names = {"T%d" % (k + 1): k for k in range(temporal_arity)}
        while True:
            atoms.append(parse_comparison(lexer, names))
            if lexer.accept(TokenKind.COMMA) or lexer.accept(TokenKind.AMP):
                continue
            if lexer.accept_keyword("and"):
                continue
            break
    constraints = ConstraintSystem.from_atoms(temporal_arity, atoms)
    return GeneralizedTuple(tuple(lrps), tuple(data), constraints)


def parse_generalized_tuple(text, temporal_arity, data_arity=0):
    """Parse a single tuple literal such as
    ``'(168n+8, 168n+10; "database") where T2 = T1 + 2'``."""
    lexer = Lexer(text)
    gt = _parse_tuple_body(lexer, temporal_arity, data_arity)
    if not lexer.at_end():
        lexer.error("unexpected trailing input after tuple")
    return gt


def parse_database(text):
    """Parse a database description (see module docstring)."""
    lexer = Lexer(text)
    db = GeneralizedDatabase()
    while not lexer.at_end():
        lexer.expect_keyword("relation")
        name = lexer.expect(TokenKind.IDENT).value
        lexer.expect(TokenKind.LBRACKET)
        temporal_arity = int(lexer.expect(TokenKind.NUMBER).value)
        lexer.expect(TokenKind.SEMICOLON)
        data_arity = int(lexer.expect(TokenKind.NUMBER).value)
        lexer.expect(TokenKind.RBRACKET)
        db.declare(name, temporal_arity, data_arity)
        lexer.expect(TokenKind.LBRACE)
        while lexer.peek().kind is not TokenKind.RBRACE:
            gt = _parse_tuple_body(lexer, temporal_arity, data_arity)
            db.add_tuple(name, gt)
            lexer.accept(TokenKind.SEMICOLON)
        lexer.expect(TokenKind.RBRACE)
    return db
