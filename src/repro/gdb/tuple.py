"""Ground generalized tuples (paper Section 2.1).

A ground generalized tuple of temporal arity ``m`` and data arity
``l`` is ``(a_1 n_1 + b_1, …, a_m n_m + b_m, d_1, …, d_l)`` together
with a finite set of gap-order constraints over the temporal columns.
It finitely represents the — usually infinite — set of ground tuples

    {(t_1, …, t_m, d_1, …, d_l) : t_i ∈ a_i n + b_i,
                                  constraints(t_1, …, t_m)}.

Exactness with congruences
--------------------------
The constraint part alone is a zone (handled exactly by the DBM
machinery), but the lrps add congruence conditions that interact with
*bounded* difference constraints: ``T1 ≡ 0 (mod 4), T2 ≡ 2 (mod 4),
T1 <= T2 <= T1 + 1`` is empty although its zone is not.  The
**aligned disjunct form** resolves this exactly: align all columns to
the common period ``L = lcm(a_i)`` and fix a residue vector mod ``L``;
substituting ``T_i = L·m_i + r_i`` turns every gap-order bound into a
pure difference bound on the multipliers ``m_i``, i.e. a plain zone.
Every tuple is a finite disjoint union of such
:class:`AlignedTuple` disjuncts, on which membership, emptiness,
projection, difference and containment are all exact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.constraints.dbm import Dbm, INF
from repro.constraints.system import ConstraintSystem
from repro.gdb import kernel
from repro.lrp.congruence import lcm_all
from repro.lrp.point import Lrp


def _floor_div(a, b):
    """Floor division that tolerates an infinite numerator."""
    if a == INF:
        return INF
    return a // b


# -- process-level id interning ---------------------------------------------
#
# The columnar kernel keys its template caches and dedup maps by small
# ids instead of whole structural keys: ``lvid`` names an lrp vector,
# ``sid`` a free signature ``(lrps, data)``, and ``cid`` (assigned by
# the constraint table in repro.constraints.dbm) a canonical zone.
# Ids are dense ints in interning order — process-local, never
# serialized.  Past the cap the structural key itself is used as the
# id: it is hashable and equality-correct, just slower to compare.

_ID_CAP = 1 << 20
_ID_LOCK = threading.Lock()
_LRP_IDS = {}       # lrp vector -> lvid
_SIG_IDS = {}       # (lrps, data) -> sid
_SIGNATURES = []    # sid -> (lrps, data)


def _intern_lrp_vector(lrps):
    lvid = _LRP_IDS.get(lrps)
    if lvid is not None:
        return lvid
    with _ID_LOCK:
        lvid = _LRP_IDS.get(lrps)
        if lvid is not None:
            return lvid
        if len(_LRP_IDS) >= _ID_CAP:
            return lrps
        lvid = len(_LRP_IDS)
        _LRP_IDS[lrps] = lvid
        return lvid


def _intern_signature(signature):
    sid = _SIG_IDS.get(signature)
    if sid is not None:
        return sid
    with _ID_LOCK:
        sid = _SIG_IDS.get(signature)
        if sid is not None:
            return sid
        if len(_SIGNATURES) >= _ID_CAP:
            return signature
        sid = len(_SIGNATURES)
        _SIGNATURES.append(signature)
        _SIG_IDS[signature] = sid
        return sid


def signature_of_id(sid):
    """The free signature ``(lrps, data)`` an interned ``sid`` names.

    Past-cap ids *are* the signature and pass through unchanged.
    """
    if isinstance(sid, int):
        return _SIGNATURES[sid]
    return sid


def signature_id(signature):
    """The interned id of a free signature (interning it if new)."""
    return _intern_signature(signature)


def intern_id_stats():
    """Sizes of the tuple-layer interning tables (for tests)."""
    return {
        "lrp_vectors": len(_LRP_IDS),
        "signatures": len(_SIGNATURES),
        "cap": _ID_CAP,
    }


@dataclass(frozen=True)
class AlignedTuple:
    """A generalized tuple whose columns share one period ``L`` and
    have a *single* residue each: ``T_i = L·m_i + residues[i]`` with
    the multiplier vector ``m`` ranging over ``zone``.

    This is the exact computational normal form; see the module
    docstring.  ``zone`` is a :class:`Dbm` over ``len(residues)``
    multiplier variables and is treated as immutable.
    """

    period: int
    residues: tuple
    data: tuple
    zone: Dbm

    def temporal_arity(self):
        """Number of temporal columns."""
        return len(self.residues)

    def is_empty(self):
        """True when the disjunct denotes no ground tuple."""
        return not self.zone.is_satisfiable()

    def contains_times(self, times):
        """True when the ground time vector belongs to this disjunct."""
        multipliers = []
        for t, r in zip(times, self.residues):
            if (t - r) % self.period != 0:
                return False
            multipliers.append((t - r) // self.period)
        return self.zone.satisfied_by(multipliers)

    def to_generalized(self):
        """Convert back to a :class:`GeneralizedTuple`.

        A multiplier bound ``m_i - m_j <= b`` translates exactly to
        ``T_i - T_j <= L·b + r_i - r_j`` because the difference
        ``T_i - T_j`` is confined to the lattice ``L·ℤ + (r_i - r_j)``.
        """
        arity = len(self.residues)
        lrps = tuple(Lrp(self.period, r) for r in self.residues)
        zone = Dbm.unconstrained(arity)
        for (i, j, c) in self.zone.generating_bounds():
            ri = 0 if i == 0 else self.residues[i - 1]
            rj = 0 if j == 0 else self.residues[j - 1]
            zone.add_bound(i, j, self.period * c + ri - rj)
        return GeneralizedTuple(lrps, self.data, ConstraintSystem(arity, zone))

    def sample(self):
        """One ground tuple ``(times, data)`` of the disjunct, or None."""
        multipliers = self.zone.sample()
        if multipliers is None:
            return None
        times = tuple(
            self.period * m + r for m, r in zip(multipliers, self.residues)
        )
        return times, self.data


class GeneralizedTuple:
    """A ground generalized tuple: lrps, data constants, constraints.

    Instances are immutable and hashable.  The *free extension*
    (Section 4.3) is the tuple with its constraints dropped; its
    signature — the lrp vector plus the data vector — is what the
    free-extension safety test of Theorem 4.2 tracks.

    >>> from repro.lrp import Lrp
    >>> from repro.constraints import ConstraintSystem
    >>> train = GeneralizedTuple(
    ...     (Lrp(40, 5), Lrp(40, 25)),
    ...     ("Liege", "Brussels"),
    ...     ConstraintSystem.parse("T1 >= 0 & T2 = T1 + 60", 2),
    ... )
    >>> train.contains_point((5, 65), ("Liege", "Brussels"))
    True
    """

    __slots__ = (
        "lrps",
        "data",
        "constraints",
        "_hash",
        "_free_signature",
        "_kernel_ids",
        "_empty",
    )

    def __init__(self, lrps, data=(), constraints=None):
        self.lrps = tuple(lrps)
        self.data = tuple(data)
        if constraints is None:
            constraints = ConstraintSystem.top(len(self.lrps))
        if constraints.arity != len(self.lrps):
            raise ValueError(
                "constraint arity %d does not match temporal arity %d"
                % (constraints.arity, len(self.lrps))
            )
        self.constraints = constraints
        self._hash = None
        self._free_signature = None
        self._kernel_ids = None
        self._empty = None

    # -- basic structure ---------------------------------------------------

    @property
    def temporal_arity(self):
        """Number of temporal columns."""
        return len(self.lrps)

    @property
    def data_arity(self):
        """Number of data columns."""
        return len(self.data)

    def free_extension(self):
        """The tuple freed from its constraints (Section 4.3)."""
        return GeneralizedTuple(self.lrps, self.data)

    def free_signature(self):
        """Hashable signature of the free extension: (lrps, data).

        Both the coverage tests and the relation signature index look
        this up for every derived tuple, so the pair (and therefore the
        hash of its shared element tuples) is built once and memoized —
        the tuple is immutable, the signature can never change.
        """
        signature = self._free_signature
        if signature is None:
            signature = self._free_signature = (self.lrps, self.data)
        return signature

    def kernel_ids(self):
        """The tuple's interned id triple ``(lvid, sid, cid)``.

        ``lvid`` names the lrp vector, ``sid`` the free signature, and
        ``cid`` the canonical constraint zone (see the module-level
        interning tables and
        :data:`repro.constraints.dbm.CONSTRAINT_TABLE`).  The columnar
        kernel keys its template caches and dedup maps by these; the
        triple is memoized on the instance.
        """
        ids = self._kernel_ids
        if ids is None:
            lvid = _intern_lrp_vector(self.lrps)
            sid = _intern_signature(self.free_signature())
            ids = self._kernel_ids = (lvid, sid, self.constraints.constraint_id())
        return ids

    def row_key(self):
        """Integer dedup key ``(sid, cid)``, bijective with
        :meth:`canonical_key`: equal signature ids force equal arity,
        under which equal constraint ids decide zone equality."""
        ids = self.kernel_ids()
        return (ids[1], ids[2])

    def contains_point(self, times, data=()):
        """True when the ground tuple ``(times, data)`` belongs to the
        represented set."""
        if len(times) != self.temporal_arity or tuple(data) != self.data:
            return False
        if any(t not in lrp for t, lrp in zip(times, self.lrps)):
            return False
        return self.constraints.satisfied_by(tuple(times))

    # -- congruence-aware exactness ------------------------------------------

    def aligned(self, period=None):
        """The aligned disjunct form: a list of :class:`AlignedTuple`
        with common ``period`` (default: the lcm of the column periods)
        whose disjoint union equals this tuple.  Only non-empty
        disjuncts are returned.

        The residue search is a backtracking enumeration pruned by the
        pairwise difference intervals of the (closed) zone, so joins of
        equality-linked columns do not explode.
        """
        arity = self.temporal_arity
        if period is None:
            period = lcm_all(lrp.period for lrp in self.lrps)
        else:
            if any(period % lrp.period for lrp in self.lrps):
                raise ValueError("alignment period must be a common multiple")
        zone = self.constraints.zone()
        if not zone.is_satisfiable():
            return []
        if arity == 0:
            return [AlignedTuple(period, (), self.data, Dbm.unconstrained(0))]
        candidate_residues = [lrp.residues_modulo(period) for lrp in self.lrps]
        intervals = {}
        for i in range(arity):
            for j in range(i):
                intervals[(i, j)] = zone.difference_interval(i + 1, j + 1)
        result = []
        chosen = [0] * arity

        def compatible(i, r):
            for j in range(i):
                lo, hi = intervals[(i, j)]
                if lo == -INF or hi == INF:
                    continue
                if hi - lo + 1 >= period:
                    continue
                want = (r - chosen[j]) % period
                # Is there d in [lo, hi] with d ≡ want (mod period)?
                first = lo + (want - lo) % period
                if first > hi:
                    return False
            return True

        def multiplier_zone():
            mz = Dbm.unconstrained(arity)
            for (i, j, c) in zone.finite_bounds():
                ri = 0 if i == 0 else chosen[i - 1]
                rj = 0 if j == 0 else chosen[j - 1]
                mz.add_bound(i, j, _floor_div(c - ri + rj, period))
            return mz

        def recurse(i):
            if i == arity:
                mz = multiplier_zone()
                if mz.is_satisfiable():
                    result.append(
                        AlignedTuple(period, tuple(chosen), self.data, mz)
                    )
                return
            for r in candidate_residues[i]:
                if compatible(i, r):
                    chosen[i] = r
                    recurse(i + 1)

        recurse(0)
        return result

    def is_empty(self):
        """Exact emptiness, taking congruences into account.

        With the kernel enabled the verdict is memoized (the tuple is
        immutable) and tuples with at most one temporal column take an
        exact closed form: a one-variable zone is an interval, so the
        tuple is empty iff the interval is finite and contains no point
        of the column's residue class.
        """
        if not kernel.ENABLED:
            return self._is_empty_uncached()
        empty = self._empty
        if empty is None:
            empty = self._empty = self._is_empty_uncached()
        return empty

    def _is_empty_uncached(self):
        if not self.constraints.is_satisfiable():
            return True
        if kernel.ENABLED and self.temporal_arity <= 1:
            if self.temporal_arity == 0:
                return False
            lo, hi = self.constraints.column_interval(0)
            if lo == -INF or hi == INF:
                return False
            lrp = self.lrps[0]
            return lo + ((lrp.offset - lo) % lrp.period) > hi
        return not self.aligned()

    def sample(self):
        """One ground tuple ``(times, data)``, or None when empty."""
        for disjunct in self.aligned():
            found = disjunct.sample()
            if found is not None:
                return found
        return None

    # -- refinement -----------------------------------------------------------

    def conjoined(self, atoms):
        """Conjoin extra constraint atoms; returns the refined tuple or
        None when the zone alone becomes unsatisfiable.

        Equalities pinned by the (closed) zone are propagated into the
        lrps via CRT, so e.g. selecting ``T2 = T1 + 60`` on columns of
        periods 40 and 40 refines both columns to period 40 lrps that
        actually meet; incompatible congruences yield None.
        """
        refined = self.constraints.conjoin_atoms(atoms)
        if not refined.is_satisfiable():
            return None
        return GeneralizedTuple(self.lrps, self.data, refined).propagate_equalities()

    def propagate_equalities(self):
        """Refine lrps through every equality the zone pins down.

        Returns the refined tuple, or None when some pinned pair has
        incompatible congruences (the tuple is empty).
        """
        lrps = list(self.lrps)
        arity = self.temporal_arity
        changed = True
        while changed:
            changed = False
            for i in range(arity):
                for j in range(i):
                    lo, hi = self.constraints.difference_interval(i, j)
                    if lo != hi or lo == -INF:
                        continue
                    # T_i = T_j + lo: both columns see each other's class.
                    meet = lrps[i].intersect(lrps[j].shift(lo))
                    if meet is None:
                        return None
                    if meet != lrps[i]:
                        lrps[i] = meet
                        changed = True
                    other = meet.shift(-lo)
                    if other != lrps[j]:
                        lrps[j] = other
                        changed = True
            # Columns pinned to a constant value must contain it.
            for i in range(arity):
                lo, hi = self.constraints.column_interval(i)
                if lo == hi and lo != -INF:
                    if lo not in lrps[i]:
                        return None
        lrps = tuple(lrps)
        if kernel.ENABLED and lrps == self.lrps:
            # Nothing was refined: keep the original instance (and its
            # memoized hash / signature / kernel ids).
            return self
        return GeneralizedTuple(lrps, self.data, self.constraints)

    # -- transformations -------------------------------------------------------

    def shift_column(self, column, delta):
        """Advance temporal column ``column`` (0-based) by ``delta``.

        Exact and cheap: the lrp offset moves and the zone is sheared.
        """
        lrps = list(self.lrps)
        lrps[column] = lrps[column].shift(delta)
        if kernel.ENABLED and self.constraints.is_trivial():
            # Shearing an unconstrained zone leaves it unconstrained:
            # only the lrp offset moves, the system is shared as-is.
            return GeneralizedTuple(tuple(lrps), self.data, self.constraints)
        return GeneralizedTuple(
            tuple(lrps), self.data, self.constraints.shift_column(column, delta)
        )

    def permuted(self, order):
        """Reorder temporal columns: new column ``k`` is old ``order[k]``."""
        if kernel.ENABLED and list(order) == list(range(self.temporal_arity)):
            return self
        mapping = {old: new for new, old in enumerate(order)}
        lrps = tuple(self.lrps[old] for old in order)
        constraints = self.constraints.remapped(mapping, len(order))
        return GeneralizedTuple(lrps, self.data, constraints)

    def with_data(self, data):
        """The same temporal content with different data columns."""
        return GeneralizedTuple(self.lrps, tuple(data), self.constraints)

    def product(self, other):
        """Concatenate two tuples (temporal and data columns)."""
        return GeneralizedTuple(
            self.lrps + other.lrps,
            self.data + other.data,
            self.constraints.joined(other.constraints),
        )

    def joined(self, other, atoms=()):
        """Product with extra constraint atoms (indexed in the combined
        column space) conjoined in one pass; returns the refined tuple
        or None when the combined zone is unsatisfiable.  This is the
        fused join step of the compiled clause plans: one zone closure
        instead of the three a product-then-select sequence costs."""
        constraints = self.constraints.joined(other.constraints, atoms)
        if not constraints.is_satisfiable():
            return None
        return GeneralizedTuple(
            self.lrps + other.lrps, self.data + other.data, constraints
        ).propagate_equalities()

    def extended(self, count, atoms=()):
        """Append ``count`` unconstrained carrier columns and conjoin
        extra atoms; returns the refined tuple or None when empty-by-zone."""
        constraints = self.constraints.joined(ConstraintSystem.top(count), atoms)
        if not constraints.is_satisfiable():
            return None
        lrps = self.lrps + tuple(Lrp.constant_carrier() for _ in range(count))
        return GeneralizedTuple(lrps, self.data, constraints).propagate_equalities()

    def project(self, keep_temporal, keep_data, force_aligned=False):
        """Project onto the given 0-based column lists (order matters).

        Returns a list of :class:`GeneralizedTuple` whose union is the
        exact projection.  Fast exact paths avoid alignment when every
        dropped column is congruence-free (period 1), unconstrained, or
        equality-linked to a kept column; otherwise the projection is
        computed on aligned disjuncts (still exact, possibly finer
        periods).  ``force_aligned`` disables the fast paths — used by
        the E12 ablation to measure what they are worth.
        """
        data = tuple(self.data[k] for k in keep_data)
        drop = [k for k in range(self.temporal_arity) if k not in keep_temporal]
        if kernel.ENABLED and not force_aligned and self.constraints.is_trivial():
            # Unconstrained zone: every column is independent, so the
            # projection is plain column selection (dropped columns
            # quantify away freely) under a fresh trivial zone.
            lrps = tuple(self.lrps[k] for k in keep_temporal)
            constraints = (
                self.constraints
                if len(keep_temporal) == self.temporal_arity
                else ConstraintSystem.top(len(keep_temporal))
            )
            return [GeneralizedTuple(lrps, data, constraints)]
        base = self.propagate_equalities()
        if base is None:
            return []
        if not base.constraints.is_satisfiable():
            return []

        if not force_aligned:
            simple = base._try_simple_projection(drop, keep_temporal)
            if simple is not None:
                return [simple.with_data(data)]

        # General case: aligned projection.
        results = []
        for disjunct in base.aligned():
            zone = disjunct.zone
            residues = list(disjunct.residues)
            # Project multipliers out from the highest index down so
            # positions stay valid.
            for k in sorted(drop, reverse=True):
                zone = zone.project_out(k + 1)
                residues.pop(k)
            # Reorder according to keep_temporal.
            order = sorted(range(len(keep_temporal)))
            remaining_cols = [c for c in range(self.temporal_arity) if c not in drop]
            position = {col: idx for idx, col in enumerate(remaining_cols)}
            perm_order = [position[col] for col in keep_temporal]
            new_residues = tuple(residues[p] for p in perm_order)
            if perm_order != order:
                mapping = {p + 1: n + 1 for n, p in enumerate(perm_order)}
                zone = zone.renamed(mapping)
            projected = AlignedTuple(disjunct.period, new_residues, data, zone)
            if not projected.is_empty():
                results.append(projected.to_generalized())
        return results

    def _try_simple_projection(self, drop, keep_temporal):
        """Drop columns without alignment when congruence-safe.

        Preconditions: equalities already propagated, zone satisfiable.
        Returns the projected tuple, or None when alignment is needed.
        """
        tuple_now = self
        remaining = list(range(self.temporal_arity))
        for column in sorted(drop, reverse=True):
            lrp = tuple_now.lrps[column]
            idx = remaining.index(column)
            safe = lrp.period == 1
            if not safe:
                # Equality-linked to a surviving column?  Propagation
                # already folded the congruence into the partner, so
                # plain zone projection is exact.
                for other_idx, other_col in enumerate(remaining):
                    if other_col == column or other_col in drop:
                        continue
                    lo, hi = tuple_now.constraints.difference_interval(idx, other_idx)
                    if lo == hi and lo != -INF:
                        safe = True
                        break
            if not safe:
                # Unconstrained column (no finite bound touches it)?
                zone = tuple_now.constraints.zone()
                touched = any(
                    (i == idx + 1 or j == idx + 1) and c != INF
                    for (i, j, c) in zone.finite_bounds()
                )
                safe = not touched
            if not safe:
                return None
            lrps = tuple(
                l for pos, l in enumerate(tuple_now.lrps) if pos != idx
            )
            constraints = tuple_now.constraints.project_out(idx)
            tuple_now = GeneralizedTuple(lrps, tuple_now.data, constraints)
            remaining.pop(idx)
        # Reorder the survivors to match keep_temporal.
        position = {col: idx for idx, col in enumerate(remaining)}
        order = [position[col] for col in keep_temporal]
        return tuple_now.permuted(order)

    # -- comparison -------------------------------------------------------------

    def contains_tuple(self, other):
        """Exact extension containment: ``other ⊆ self``.

        Requires equal data.  Works disjunct-by-disjunct on a common
        alignment: a point fixes its residue vector, so a disjunct of
        ``other`` must be covered by the union of same-residue zones of
        ``self``.
        """
        if other.data != self.data or other.temporal_arity != self.temporal_arity:
            return False
        period = lcm_all(
            [lrp.period for lrp in self.lrps] + [lrp.period for lrp in other.lrps]
        )
        mine = {}
        for disjunct in self.aligned(period):
            mine.setdefault(disjunct.residues, []).append(disjunct.zone)
        for disjunct in other.aligned(period):
            zones = mine.get(disjunct.residues, [])
            if not disjunct.zone.is_subset_of_union(zones):
                return False
        return True

    def subtract(self, others):
        """The exact difference ``self \\ (union of others)`` as a list
        of GeneralizedTuples.  ``others`` must have the same arities;
        tuples with different data are ignored (they remove nothing).
        """
        relevant = [o for o in others if o.data == self.data]
        if not relevant:
            return [] if self.is_empty() else [self]
        period = lcm_all(
            [lrp.period for lrp in self.lrps]
            + [lrp.period for o in relevant for lrp in o.lrps]
        )
        theirs = {}
        for other in relevant:
            for disjunct in other.aligned(period):
                theirs.setdefault(disjunct.residues, []).append(disjunct.zone)
        results = []
        for disjunct in self.aligned(period):
            remaining = [disjunct.zone]
            for zone in theirs.get(disjunct.residues, []):
                next_remaining = []
                for piece in remaining:
                    next_remaining.extend(piece.difference(zone))
                remaining = next_remaining
                if not remaining:
                    break
            for piece in remaining:
                aligned = AlignedTuple(period, disjunct.residues, self.data, piece)
                results.append(aligned.to_generalized())
        return results

    # -- serialization ------------------------------------------------------------

    def to_json_dict(self):
        """A JSON-safe dict round-tripping through :meth:`from_json_dict`.

        Data constants must be JSON scalars (the surface languages only
        produce strings and integers).  The constraint system is stored
        canonically, so the round trip preserves :meth:`canonical_key`
        bit-exactly.
        """
        payload = {
            "lrps": [[lrp.period, lrp.offset] for lrp in self.lrps],
            "data": list(self.data),
        }
        if not self.constraints.is_trivial():
            payload["constraints"] = self.constraints.to_json_dict()
        return payload

    @classmethod
    def from_json_dict(cls, payload):
        """Rebuild a tuple serialized by :meth:`to_json_dict`."""
        lrps = tuple(Lrp(period, offset) for period, offset in payload["lrps"])
        constraints = None
        if "constraints" in payload:
            constraints = ConstraintSystem.from_json_dict(payload["constraints"])
        return cls(lrps, tuple(payload["data"]), constraints)

    # -- identity -----------------------------------------------------------------

    def canonical_key(self):
        """Hashable canonical form (syntactic: lrps + data + closed zone)."""
        return (self.lrps, self.data, self.constraints.canonical_key())

    def __eq__(self, other):
        if not isinstance(other, GeneralizedTuple):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self.canonical_key())
        return self._hash

    def __str__(self):
        temporal = ", ".join(str(lrp) for lrp in self.lrps)
        if self.data:
            data = ", ".join(
                '"%s"' % d if isinstance(d, str) else str(d) for d in self.data
            )
            body = "(%s; %s)" % (temporal, data)
        else:
            body = "(%s)" % temporal
        if self.constraints.is_trivial():
            return body
        return "%s where %s" % (body, self.constraints)

    def __repr__(self):
        return "GeneralizedTuple%s" % str(self)
