"""Descriptive statistics of generalized relations.

Reporting helpers used by the CLI and the experiment harness: how many
tuples a relation holds, the period structure of its columns, the
density of its temporal content, and whether columns are bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.dbm import INF
from repro.lrp.congruence import lcm_all


@dataclass(frozen=True)
class RelationStatistics:
    """A summary of one generalized relation."""

    tuple_count: int
    signature_count: int
    data_vectors: int
    column_periods: tuple
    common_period: int
    densities: tuple
    bounded_columns: tuple

    def __str__(self):
        return (
            "%d tuples, %d free signatures, %d data vectors; "
            "column periods %s (lcm %d); density per column %s; "
            "bounded columns %s"
            % (
                self.tuple_count,
                self.signature_count,
                self.data_vectors,
                list(self.column_periods),
                self.common_period,
                ["%.3f" % d for d in self.densities],
                list(self.bounded_columns),
            )
        )


def analyze(relation):
    """Compute :class:`RelationStatistics` for a relation.

    * ``column_periods`` — per column, the lcm of the lrp periods
      appearing in that column;
    * ``common_period`` — the lcm over all columns (the alignment
      period of Theorem 4.2's bound discussion);
    * ``densities`` — per column, the fraction of residues mod the
      column period carrying at least one tuple (an upper bound on the
      natural density of that column's projection);
    * ``bounded_columns`` — per column, whether every tuple bounds the
      column to a finite interval.
    """
    m = relation.temporal_arity
    signatures = {gt.free_signature() for gt in relation.tuples}
    data_vectors = {gt.data for gt in relation.tuples}
    column_periods = []
    densities = []
    bounded = []
    for column in range(m):
        periods = [gt.lrps[column].period for gt in relation.tuples]
        period = lcm_all(periods or [1])
        column_periods.append(period)
        residues = set()
        for gt in relation.tuples:
            residues.update(gt.lrps[column].residues_modulo(period))
        densities.append(len(residues) / period if relation.tuples else 0.0)
        column_bounded = bool(relation.tuples)
        for gt in relation.tuples:
            lo, hi = gt.constraints.column_interval(column)
            if lo == -INF or hi == INF:
                column_bounded = False
                break
        bounded.append(column_bounded)
    return RelationStatistics(
        tuple_count=len(relation.tuples),
        signature_count=len(signatures),
        data_vectors=len(data_vectors),
        column_periods=tuple(column_periods),
        common_period=lcm_all(column_periods or [1]),
        densities=tuple(densities),
        bounded_columns=tuple(bounded),
    )
