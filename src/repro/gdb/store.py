"""The columnar backing store of a growing generalized relation.

A :class:`~repro.gdb.relation.GeneralizedRelation` is a value object:
"mutation" returns a fresh instance.  Before the columnar kernel that
meant every per-relation cache (data indexes, the free-signature
index) restarted cold after each ``with_tuples``, and the cross-round
coverage cache survived only through an O(n) copy.  The engine grows
its IDB relations every round, so those rebuilds dominated the
sequential profile.

:class:`ColumnStore` fixes this by factoring the *storage* out of the
value object: one store holds the append-only row sequence shared by a
whole chain of ``with_tuples`` growths, and every index over it is
incremental — a watermark records how many rows are already indexed,
and a lookup only folds in the suffix.  Row identity is positional
(``row_ids`` are positions in :attr:`rows`), tuples dedup by
``(sid, cid)`` integer pairs (see ``GeneralizedTuple.row_key``), and
the Theorem-4.3 coverage verdicts live directly on the store, keyed by
interned ids, so growth drops the stale negatives in place instead of
copying the cache.

Consistency rule: a relation view may serve answers from the store
only while it covers the store's **full row prefix** (same length).
The moment a sibling growth appends more rows, older views fall back
to private per-instance indexes — the store never serves a superset of
a view.

The module also defines the column-batch wire codec used by the shard
pool: a batch of tuples ships as parallel ``rows`` arrays plus a
*constraint dictionary* (each distinct zone serialized once, rows
referencing it by local index), instead of one JSON object per tuple.
"""

from __future__ import annotations

import pickle

from repro.constraints.system import ConstraintSystem
from repro.gdb.tuple import GeneralizedTuple, signature_id
from repro.lrp.point import Lrp


class ColumnStore:
    """Append-only shared storage for one chain of relation growths.

    ``generation`` counts appends; it is the single counter that
    drives both the coverage-cache bookkeeping and the relation-level
    ``coverage_generation`` mirror (pre-kernel these were separate and
    could drift).
    """

    __slots__ = (
        "rows",
        "generation",
        "coverage",
        "_sig_index",
        "_sig_watermark",
        "_data_indexes",
        "_data_watermarks",
    )

    def __init__(self, rows=(), generation=0, coverage=None):
        self.rows = list(rows)
        self.generation = generation
        #: Theorem-4.3 verdicts: ``{sid: {cid: covered?}}`` (interned
        #: ids; structural keys appear only past the intern caps).
        self.coverage = {} if coverage is None else coverage
        self._sig_index = {}        # sid -> [tuples…] in row order
        self._sig_watermark = 0
        self._data_indexes = {}     # column -> {value: [row positions…]}
        self._data_watermarks = {}  # column -> rows already indexed

    def __len__(self):
        return len(self.rows)

    def append(self, gts):
        """Append tuples (one growth step: ``generation`` bumps by 1).

        Coverage verdicts for the appended tuples' free signatures go
        stale on the negative side only — the new row may be exactly
        what covers a previously uncovered tuple — so negatives of
        touched signatures are dropped in place while positives (which
        are monotone under insertion) survive.
        """
        self.rows.extend(gts)
        self.generation += 1
        if self.coverage:
            touched = set()
            for gt in gts:
                signature = gt.free_signature()
                touched.add(signature)
                touched.add(signature_id(signature))
            for key in touched:
                verdicts = self.coverage.get(key)
                if verdicts is None:
                    continue
                kept = {k: True for k, value in verdicts.items() if value}
                if kept:
                    self.coverage[key] = kept
                else:
                    del self.coverage[key]

    # -- incremental indexes ---------------------------------------------

    def signature_index(self):
        """``{sid: [tuples…]}`` over all rows, extended incrementally."""
        rows = self.rows
        if self._sig_watermark < len(rows):
            index = self._sig_index
            for gt in rows[self._sig_watermark:]:
                index.setdefault(gt.kernel_ids()[1], []).append(gt)
            self._sig_watermark = len(rows)
        return self._sig_index

    def tuples_with_signature_id(self, sid):
        """The rows whose free signature interned to ``sid``."""
        return self.signature_index().get(sid, [])

    def data_index(self, column):
        """``{value: [row positions…]}`` for one data column."""
        rows = self.rows
        index = self._data_indexes.get(column)
        if index is None:
            index = self._data_indexes[column] = {}
            self._data_watermarks[column] = 0
        start = self._data_watermarks[column]
        if start < len(rows):
            for position in range(start, len(rows)):
                index.setdefault(rows[position].data[column], []).append(position)
            self._data_watermarks[column] = len(rows)
        return index


# -- column-batch wire codec -------------------------------------------------
#
# The shard pool used to ship every tuple as its own checkpoint-style
# JSON object, re-serializing the same constraint system once per
# tuple.  A round's delta is dominated by a handful of distinct zones,
# so the batch form stores each distinct zone once in a dictionary and
# encodes a tuple as [lrp pairs, data, zone index] — measurably fewer
# bytes on the pipe (benchmarks/kernel_bench.py records the ratio).
# This is a *wire* format for shard messages only; checkpoints keep
# the per-tuple canonical form.


def encode_tuple_batch(tuples):
    """Encode tuples as ``{"constraints": [...], "rows": [...]}``.

    Order-preserving.  ``constraints`` holds each distinct constraint
    system's canonical JSON dict once (first-appearance order, keyed by
    constraint id during encoding); a row's third field indexes into
    it, with -1 for a trivial (``true``) constraint.
    """
    dictionary = []
    slots = {}
    rows = []
    for gt in tuples:
        if gt.constraints.is_trivial():
            slot = -1
        else:
            cid = gt.constraints.constraint_id()
            slot = slots.get(cid)
            if slot is None:
                slot = slots[cid] = len(dictionary)
                dictionary.append(gt.constraints.to_json_dict())
        rows.append(
            [[[lrp.period, lrp.offset] for lrp in gt.lrps], list(gt.data), slot]
        )
    return {"constraints": dictionary, "rows": rows}


#: Decode-side constraint interning: the engine re-broadcasts the same
#: handful of zones round after round (a delta's tuples mostly reuse
#: the zones of the tuples they were derived from), so decoding keys
#: each canonical JSON form to the already-canonicalized system and
#: skips the DBM canonicalization entirely on a hit.  Keys are the
#: ``repr`` of the canonical dict — :meth:`ConstraintSystem.to_json_dict`
#: is deterministic and both pickle and the pipe transport preserve
#: dict order, so equal zones always produce equal keys.  The cache is
#: per-process and capped; systems are immutable value objects, so
#: sharing one instance across batches (and rounds) is semantics-free.
_ZONE_INTERN_CAP = 1 << 14
_zone_intern = {}


def _decode_constraints(entry):
    key = repr(entry)
    system = _zone_intern.get(key)
    if system is None:
        system = ConstraintSystem.from_json_dict(entry)
        if len(_zone_intern) >= _ZONE_INTERN_CAP:
            _zone_intern.clear()
        _zone_intern[key] = system
    return system


def decode_tuple_batch(payload):
    """Decode :func:`encode_tuple_batch` output, order-preserving.

    Each distinct constraint system is decoded (and canonicalized)
    once — via the process-level intern cache — and shared across the
    rows referencing it.
    """
    systems = [_decode_constraints(entry) for entry in payload["constraints"]]
    tuples = []
    for lrp_pairs, data, slot in payload["rows"]:
        lrps = tuple(Lrp(period, offset) for period, offset in lrp_pairs)
        constraints = systems[slot] if slot >= 0 else None
        tuples.append(GeneralizedTuple(lrps, tuple(data), constraints))
    return tuples


def decode_tuple_batch_rows(payload, positions):
    """Decode only the rows of ``payload`` at the given positions, in
    the order given — the accept-reference path of the shard protocol:
    a worker resolving another worker's accepted rows touches just
    those rows' zones, not the whole batch."""
    rows = payload["rows"]
    dictionary = payload["constraints"]
    systems = {}
    tuples = []
    for position in positions:
        lrp_pairs, data, slot = rows[position]
        constraints = None
        if slot >= 0:
            constraints = systems.get(slot)
            if constraints is None:
                constraints = systems[slot] = _decode_constraints(
                    dictionary[slot]
                )
        lrps = tuple(Lrp(period, offset) for period, offset in lrp_pairs)
        tuples.append(GeneralizedTuple(lrps, tuple(data), constraints))
    return tuples


def dump_payload(obj):
    """Serialize a shard payload (nested batch structures) to bytes.

    One pickling, highest protocol — the bytes land either in a
    shared-memory segment (written once, read by every worker) or on a
    pipe via ``send_bytes`` (so the parent can count wire bytes
    exactly instead of trusting ``Connection.send``'s hidden pickling).
    """
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(buffer):
    """Deserialize :func:`dump_payload` bytes.

    Accepts any buffer — in particular a ``memoryview`` over a
    shared-memory segment, which :func:`pickle.loads` consumes without
    first copying the segment into a private ``bytes`` object.
    """
    return pickle.loads(buffer)


def encode_relation_batch(relation):
    """A relation as schema + column batch (shard wire form)."""
    return {
        "temporal_arity": relation.temporal_arity,
        "data_arity": relation.data_arity,
        "batch": encode_tuple_batch(relation.tuples),
    }


def decode_relation_batch(payload):
    """Rebuild a relation encoded by :func:`encode_relation_batch`."""
    from repro.gdb.relation import GeneralizedRelation

    return GeneralizedRelation(
        payload["temporal_arity"],
        payload["data_arity"],
        decode_tuple_batch(payload["batch"]),
    )
