"""Generalized databases with linear repeating points (paper Section 2.1).

This package implements the temporal database model of Kabanza,
Stévenne and Wolper ([KSW90] in the paper) that the deductive language
of Section 4 evaluates over:

* :mod:`repro.gdb.tuple` — ground generalized tuples: a vector of
  lrps, a vector of data constants, and a gap-order constraint system;
  plus the *aligned disjunct* normal form that makes every operation
  exact in the presence of congruences.
* :mod:`repro.gdb.relation` — generalized relations and the full
  algebra: selection, projection, product/join, union, intersection,
  difference, complement, column shift — each closed on finitely
  representable relations, as [KSW90] requires.
* :mod:`repro.gdb.database` — named relations with schemas, and the
  text format used by examples and tests.
"""

from repro.gdb.tuple import AlignedTuple, GeneralizedTuple
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.database import GeneralizedDatabase, RelationSchema
from repro.gdb.parser import parse_database, parse_generalized_tuple

__all__ = [
    "GeneralizedTuple",
    "AlignedTuple",
    "GeneralizedRelation",
    "GeneralizedDatabase",
    "RelationSchema",
    "parse_database",
    "parse_generalized_tuple",
]
