"""The columnar batch kernel: interned ids, template caches, batch ops.

The plan layer's operators used to transform generalized tuples one at
a time: every join pair paid a zone rebuild plus a Floyd–Warshall
closure, every projection re-derived the same temporal template for
every tuple that shared an lrp vector and a constraint zone.  This
module batches those transformations and memoizes their *temporal
templates*: the temporal part of a join / selection / extension /
projection result depends only on the operands' lrp vectors and
interned constraint ids (the data columns just concatenate or
project), so one computed result serves every operand pair with the
same ids.

Identity of the cache keys rests on the interning layers:

- :data:`repro.constraints.dbm.CONSTRAINT_TABLE` assigns each
  canonical zone a dense ``cid``;
- :mod:`repro.gdb.tuple` interns lrp vectors (``lvid``) and free
  signatures (``sid``) and exposes them via
  ``GeneralizedTuple.kernel_ids()``.

Each compiled plan step draws a process-unique ``token`` from
:func:`next_token`; cache keys are ``(token, ids…)`` so a step's
pushed-down constraint atoms are part of the key implicitly (two steps
never share a token).

:data:`ENABLED` is the ablation switch: with the kernel disabled every
batch helper degrades to the exact per-tuple loop it replaced, and the
tuple-layer fast paths (memoized emptiness, identity permutation,
unchanged-equality-propagation) turn off too — this approximates the
pre-kernel evaluator and is what ``benchmarks/kernel_bench.py``
records as the *before* measurement.

The kernel deliberately imports nothing from the gdb modules: results
are rebuilt via ``type(operand)(…)``, so :mod:`repro.gdb.tuple` can
import the flag without a cycle.
"""

from __future__ import annotations

import threading

#: Master switch for the batch kernel and the tuple-layer fast paths.
#: Flip via :class:`configured` (tests, benchmarks) rather than by
#: assignment.
ENABLED = True

#: Combined cap across each template cache; past it, batch helpers
#: keep computing per-tuple without caching new templates.
CACHE_CAP = 1 << 17

_UNSET = object()

_JOIN_CACHE = {}      # (token, a_lvid, a_cid, b_lvid, b_cid) -> None | (lrps, cs)
_SELECT_CACHE = {}    # (token, lvid, cid) -> None | (lrps, cs)
_EXTEND_CACHE = {}    # (token, lvid, cid) -> None | (lrps, cs)
_PROJECT_CACHE = {}   # (token, lvid, cid) -> [(lrps, cs), ...]

_TOKEN_LOCK = threading.Lock()
_NEXT_TOKEN = 0


def next_token():
    """A process-unique id for one compiled plan step's cache keyspace."""
    global _NEXT_TOKEN
    with _TOKEN_LOCK:
        token = _NEXT_TOKEN
        _NEXT_TOKEN += 1
    return token


class configured:
    """Context manager flipping :data:`ENABLED` (ablation / tests)."""

    def __init__(self, enabled):
        self.enabled = enabled
        self._saved = None

    def __enter__(self):
        global ENABLED
        self._saved = ENABLED
        ENABLED = self.enabled
        return self

    def __exit__(self, *exc_info):
        global ENABLED
        ENABLED = self._saved
        return False


def cache_stats():
    """Sizes of the kernel template caches (for tests/benchmarks)."""
    return {
        "join": len(_JOIN_CACHE),
        "select": len(_SELECT_CACHE),
        "extend": len(_EXTEND_CACHE),
        "project": len(_PROJECT_CACHE),
        "cap": CACHE_CAP,
    }


# -- batch operations --------------------------------------------------------
#
# Every helper takes an optional ``stats`` dict and bumps ``size`` (tuples
# seen) and ``hits`` (template-cache hits) in place; the plan operators
# fold those counters into ``kernel.batch`` observability events.  All
# helpers preserve input order exactly and represent a dropped
# (unsatisfiable) result as None in the aligned output list, matching
# the per-tuple code they replace.


def join_batch(pairs, atoms, token, stats=None):
    """Batched fused join: ``a.joined(b, atoms)`` per pair.

    Returns a list aligned with ``pairs`` (None where the combined zone
    is unsatisfiable).  The temporal template — the result's lrps and
    constraints — is memoized per ``(token, operand ids)``.
    """
    out = []
    hits = 0
    if not ENABLED:
        for a, b in pairs:
            out.append(a.joined(b, atoms))
    else:
        for a, b in pairs:
            alv, _, acid = a.kernel_ids()
            blv, _, bcid = b.kernel_ids()
            key = (token, alv, acid, blv, bcid)
            cached = _JOIN_CACHE.get(key, _UNSET)
            if cached is _UNSET:
                result = a.joined(b, atoms)
                if len(_JOIN_CACHE) < CACHE_CAP:
                    _JOIN_CACHE[key] = (
                        None if result is None else (result.lrps, result.constraints)
                    )
                out.append(result)
            else:
                hits += 1
                if cached is None:
                    out.append(None)
                else:
                    lrps, constraints = cached
                    out.append(type(a)(lrps, a.data + b.data, constraints))
    if stats is not None:
        stats["size"] = stats.get("size", 0) + len(pairs)
        stats["hits"] = stats.get("hits", 0) + hits
    return out


def select_batch(tuples, atoms, token, stats=None):
    """Batched selection: ``gt.conjoined(atoms)`` per tuple."""
    out = []
    hits = 0
    if not ENABLED:
        for gt in tuples:
            out.append(gt.conjoined(atoms))
    else:
        for gt in tuples:
            lvid, _, cid = gt.kernel_ids()
            key = (token, lvid, cid)
            cached = _SELECT_CACHE.get(key, _UNSET)
            if cached is _UNSET:
                result = gt.conjoined(atoms)
                if len(_SELECT_CACHE) < CACHE_CAP:
                    _SELECT_CACHE[key] = (
                        None if result is None else (result.lrps, result.constraints)
                    )
                out.append(result)
            else:
                hits += 1
                if cached is None:
                    out.append(None)
                else:
                    lrps, constraints = cached
                    out.append(type(gt)(lrps, gt.data, constraints))
    if stats is not None:
        stats["size"] = stats.get("size", 0) + len(tuples)
        stats["hits"] = stats.get("hits", 0) + hits
    return out


def extend_batch(tuples, count, atoms, token, stats=None):
    """Batched carrier extension: ``gt.extended(count, atoms)`` per tuple."""
    out = []
    hits = 0
    if not ENABLED:
        for gt in tuples:
            out.append(gt.extended(count, atoms))
    else:
        for gt in tuples:
            lvid, _, cid = gt.kernel_ids()
            key = (token, lvid, cid)
            cached = _EXTEND_CACHE.get(key, _UNSET)
            if cached is _UNSET:
                result = gt.extended(count, atoms)
                if len(_EXTEND_CACHE) < CACHE_CAP:
                    _EXTEND_CACHE[key] = (
                        None if result is None else (result.lrps, result.constraints)
                    )
                out.append(result)
            else:
                hits += 1
                if cached is None:
                    out.append(None)
                else:
                    lrps, constraints = cached
                    out.append(type(gt)(lrps, gt.data, constraints))
    if stats is not None:
        stats["size"] = stats.get("size", 0) + len(tuples)
        stats["hits"] = stats.get("hits", 0) + hits
    return out


def project_batch(tuples, keep_temporal, keep_data, shifts, token, stats=None):
    """Batched projection (+ post-projection column shifts).

    For each input tuple, yields the list ``gt.project(keep_temporal,
    keep_data)`` with each result's columns shifted per ``shifts``
    (pairs ``(column, delta)``).  Returns a list of result lists
    aligned with ``tuples``.  The post-shift temporal templates are
    memoized — data columns are re-projected per tuple, which is a
    plain Python slice.
    """
    out = []
    hits = 0

    def projected(gt):
        results = gt.project(keep_temporal, keep_data)
        if shifts:
            for column, delta in shifts:
                results = [r.shift_column(column, delta) for r in results]
        return results

    if not ENABLED:
        for gt in tuples:
            out.append(projected(gt))
    else:
        for gt in tuples:
            lvid, _, cid = gt.kernel_ids()
            key = (token, lvid, cid)
            cached = _PROJECT_CACHE.get(key, _UNSET)
            if cached is _UNSET:
                results = projected(gt)
                if len(_PROJECT_CACHE) < CACHE_CAP:
                    _PROJECT_CACHE[key] = [
                        (r.lrps, r.constraints) for r in results
                    ]
                out.append(results)
            else:
                hits += 1
                data = tuple(gt.data[k] for k in keep_data)
                out.append(
                    [type(gt)(lrps, data, constraints) for lrps, constraints in cached]
                )
    if stats is not None:
        stats["size"] = stats.get("size", 0) + len(tuples)
        stats["hits"] = stats.get("hits", 0) + hits
    return out
