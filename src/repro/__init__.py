"""repro — temporal constraint databases with linear repeating points.

A faithful, from-scratch reproduction of

    Marianne Baudinet, Marc Niézette, Pierre Wolper,
    "On the Representation of Infinite Temporal Data and Queries",
    PODS 1991.

The package provides:

* ``repro.lrp`` — linear repeating points and (eventually) periodic
  sets, the arithmetic substrate (paper §2.1 / §3.1);
* ``repro.constraints`` — gap-order constraints as exact integer
  zones (difference-bound matrices);
* ``repro.gdb`` — generalized databases and their relational algebra
  (Kabanza–Stévenne–Wolper style, paper §2.1);
* ``repro.core`` — the paper's contribution: a deductive language
  with any number of temporal arguments, evaluated bottom-up on
  generalized tuples with the free-extension / constraint safety
  termination criteria of §4.3;
* ``repro.datalog1s`` — the Chomicki–Imieliński one-temporal-argument
  Datalog (§2.2) with closed-form eventually-periodic minimal models;
* ``repro.templog`` — Templog (§2.3), its TL1 reduction, and the
  translation to Datalog1S;
* ``repro.omega`` — the ω-automata machinery used to check the
  expressiveness statements of §3;
* ``repro.fo`` — the first-order query language of generalized
  databases, with negation.
"""

__version__ = "1.0.0"

from repro.lrp import EventuallyPeriodicSet, Lrp, ZPeriodicSet
from repro.constraints import ConstraintSystem

__all__ = [
    "Lrp",
    "ZPeriodicSet",
    "EventuallyPeriodicSet",
    "ConstraintSystem",
    "__version__",
]
