"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain in-process store — no background
threads, no sockets — whose contents render to the Prometheus text
exposition format (:meth:`MetricsRegistry.render`) or to a JSON-safe
dict (:meth:`MetricsRegistry.to_dict`).  The service embeds one
(latency histograms per outcome, queue-wait, execution time); anything
else that wants counters can create its own.

Metrics are *families* keyed by name; a family with labels hands out
one child per label-set via :meth:`~Metric.labels`, exactly the
client-library idiom::

    registry = MetricsRegistry()
    jobs = registry.counter("repro_jobs_total", "Terminal jobs.",
                            labelnames=("state",))
    jobs.labels(state="ok").inc()

    latency = registry.histogram(
        "repro_job_seconds", "End-to-end job latency.",
        buckets=(0.01, 0.1, 1, 10))
    latency.observe(0.25)
    with latency.time():
        do_work()

The registry's clock is injectable so histogram timing is
deterministic under test.  All mutation is lock-protected; reads take
consistent snapshots.
"""

from __future__ import annotations

import threading
import time

#: Default latency buckets (seconds): spans sub-millisecond plan
#: operators through multi-second service jobs.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _format_value(value):
    """Prometheus-style number rendering (integers without the .0)."""
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(labels):
    if not labels:
        return ""
    body = ",".join(
        '%s="%s"' % (key, str(value).replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in labels
    )
    return "{%s}" % body


class _Child:
    """One time series: a metric family narrowed to one label-set."""

    __slots__ = ("family", "label_values")

    def __init__(self, family, label_values):
        self.family = family
        self.label_values = label_values


class Counter(_Child):
    """A monotonically increasing value."""

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters can only increase")
        with self.family.registry._lock:
            self.family._values[self.label_values] = (
                self.family._values.get(self.label_values, 0) + amount
            )

    @property
    def value(self):
        with self.family.registry._lock:
            return self.family._values.get(self.label_values, 0)


class Gauge(_Child):
    """A value that can go up and down."""

    def set(self, value):
        with self.family.registry._lock:
            self.family._values[self.label_values] = value

    def inc(self, amount=1):
        with self.family.registry._lock:
            self.family._values[self.label_values] = (
                self.family._values.get(self.label_values, 0) + amount
            )

    def dec(self, amount=1):
        self.inc(-amount)

    @property
    def value(self):
        with self.family.registry._lock:
            return self.family._values.get(self.label_values, 0)


class Histogram(_Child):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is >= v
    at render time (buckets store per-bucket counts internally and
    cumulate when rendered), plus ``_sum`` and ``_count``.
    """

    def observe(self, value):
        family = self.family
        with family.registry._lock:
            counts, total, count = family._values.get(
                self.label_values, (None, 0.0, 0)
            )
            if counts is None:
                counts = [0] * (len(family.buckets) + 1)
            index = len(family.buckets)
            for position, bound in enumerate(family.buckets):
                if value <= bound:
                    index = position
                    break
            counts[index] += 1
            family._values[self.label_values] = (counts, total + value, count + 1)

    def time(self):
        """Context manager observing the elapsed wall-clock of its
        body, read from the registry's (injectable) clock."""
        return _Timer(self)

    @property
    def count(self):
        with self.family.registry._lock:
            entry = self.family._values.get(self.label_values)
            return 0 if entry is None else entry[2]

    @property
    def sum(self):
        with self.family.registry._lock:
            entry = self.family._values.get(self.label_values)
            return 0.0 if entry is None else entry[1]

    def bucket_counts(self):
        """Cumulative counts per bucket bound (plus the +Inf bucket),
        as ``[(bound, cumulative_count), …]``."""
        family = self.family
        with family.registry._lock:
            entry = family._values.get(self.label_values)
            counts = (
                [0] * (len(family.buckets) + 1) if entry is None else list(entry[0])
            )
        bounds = list(family.buckets) + [float("inf")]
        cumulative, out = 0, []
        for bound, count in zip(bounds, counts):
            cumulative += count
            out.append((bound, cumulative))
        return out


class _Timer:
    __slots__ = ("histogram", "_started")

    def __init__(self, histogram):
        self.histogram = histogram

    def __enter__(self):
        self._started = self.histogram.family.registry.now()
        return self

    def __exit__(self, *exc_info):
        elapsed = self.histogram.family.registry.now() - self._started
        self.histogram.observe(max(0.0, elapsed))
        return False


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Metric:
    """One metric family: a name, a help string, and its children."""

    def __init__(self, registry, name, help_text, kind, labelnames=(), buckets=None):
        self.registry = registry
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(buckets)) if buckets is not None else ()
        self._values = {}
        self._children = {}
        if not self.labelnames:
            # Unlabelled families expose the single child's API directly.
            self._default = self._child(())

    def labels(self, **labelvalues):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                "metric %r takes labels %s, got %s"
                % (self.name, self.labelnames, tuple(sorted(labelvalues)))
            )
        values = tuple(str(labelvalues[name]) for name in self.labelnames)
        return self._child(values)

    def _child(self, values):
        child = self._children.get(values)
        if child is None:
            child = _CHILD_TYPES[self.kind](self, values)
            self._children[values] = child
        return child

    # Unlabelled convenience: metric.inc() / observe() / set() …
    def __getattr__(self, attr):
        default = self.__dict__.get("_default")
        if default is not None:
            return getattr(default, attr)
        raise AttributeError(
            "%r has no attribute %r (labelled family: call .labels() first)"
            % (self.name, attr)
        )


class MetricsRegistry:
    """The process-local metric store.

    ``clock`` is injectable (defaults to :func:`time.monotonic`) and is
    what :meth:`Histogram.time` reads — tests drive it by hand.
    """

    def __init__(self, clock=None):
        self._clock = clock or time.monotonic
        self._lock = threading.RLock()
        self._metrics = {}

    def now(self):
        return self._clock()

    def _register(self, name, help_text, kind, labelnames, buckets=None):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        "metric %r already registered as a %s with labels %s"
                        % (name, existing.kind, existing.labelnames)
                    )
                return existing
            metric = Metric(self, name, help_text, kind, labelnames, buckets)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help_text="", labelnames=()):
        return self._register(name, help_text, "counter", labelnames)

    def gauge(self, name, help_text="", labelnames=()):
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(self, name, help_text="", labelnames=(), buckets=None):
        return self._register(
            name, help_text, "histogram", labelnames,
            buckets=DEFAULT_BUCKETS if buckets is None else buckets,
        )

    # -- export -----------------------------------------------------------

    def render(self):
        """The Prometheus text exposition of every metric."""
        lines = []
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
            for metric in metrics:
                if metric.help:
                    lines.append("# HELP %s %s" % (metric.name, metric.help))
                lines.append("# TYPE %s %s" % (metric.name, metric.kind))
                for values in sorted(metric._values):
                    labels = list(zip(metric.labelnames, values))
                    if metric.kind in ("counter", "gauge"):
                        lines.append(
                            "%s%s %s"
                            % (
                                metric.name,
                                _format_labels(labels),
                                _format_value(metric._values[values]),
                            )
                        )
                        continue
                    counts, total, count = metric._values[values]
                    cumulative = 0
                    bounds = list(metric.buckets) + [float("inf")]
                    for bound, bucket_count in zip(bounds, counts):
                        cumulative += bucket_count
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        lines.append(
                            "%s_bucket%s %d"
                            % (
                                metric.name,
                                _format_labels(labels + [("le", le)]),
                                cumulative,
                            )
                        )
                    lines.append(
                        "%s_sum%s %s"
                        % (metric.name, _format_labels(labels), _format_value(total))
                    )
                    lines.append(
                        "%s_count%s %d"
                        % (metric.name, _format_labels(labels), count)
                    )
        return "\n".join(lines) + "\n"

    def to_dict(self):
        """A JSON-safe snapshot: {name: {kind, help, series: [...]}}."""
        out = {}
        with self._lock:
            for metric in self._metrics.values():
                series = []
                for values in sorted(metric._values):
                    labels = dict(zip(metric.labelnames, values))
                    if metric.kind in ("counter", "gauge"):
                        series.append({"labels": labels, "value": metric._values[values]})
                    else:
                        counts, total, count = metric._values[values]
                        series.append(
                            {
                                "labels": labels,
                                "buckets": [
                                    [
                                        "+Inf" if b == float("inf") else b,
                                        c,
                                    ]
                                    for b, c in zip(
                                        list(metric.buckets) + [float("inf")], counts
                                    )
                                ],
                                "sum": total,
                                "count": count,
                            }
                        )
                out[metric.name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "series": series,
                }
        return out
