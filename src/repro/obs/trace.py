"""Span-style trace recording over the event bus.

A :class:`TraceRecorder` subscribes to :mod:`repro.util.hooks` and
turns every ``(kind, fields)`` event into one trace record — a
JSON-safe dict with a monotonic sequence number and a timestamp —
optionally streamed to a JSONL file as it happens (the CLI's
``--trace FILE``).  Records are *flat spans*: events that describe a
completed unit of work carry their own ``duration_s``, so a trace
reader never has to pair begin/end lines (round events do carry a
``phase`` so the nesting of rounds inside strata is recoverable).

:class:`ProfileCollector` is the aggregating sibling: it folds
``plan.operator`` events into per-operator totals (invocations, input
and output cardinalities, wall time), keyed by clause and step — the
data behind ``repro explain --profile`` and the plan benchmark's
operator table.  Events from shard workers arrive pre-aggregated
(``aggregated: True`` with a ``count`` of folded invocations — see
:meth:`repro.plan.shard.ShardPool.flush_worker_stats`); the collector
credits their totals so parallel profiles report the worker-side work
instead of under-counting it.
"""

from __future__ import annotations

import json
import threading
import time


class TraceRecorder:
    """Record bus events in memory and optionally to a JSONL stream.

    Parameters
    ----------
    path:
        When given, every record is appended to this file as one JSON
        line, flushed per event (traces must survive a crash — that is
        half their point).
    clock:
        Injectable timestamp source (defaults to
        :func:`time.monotonic`); timestamps are relative seconds, not
        wall-clock dates, matching the engine's own timing fields.
    keep:
        Keep records in :attr:`events` (default True).  Long service
        runs streaming to a file can turn this off to bound memory.
    """

    def __init__(self, path=None, clock=None, keep=True):
        self._clock = clock or time.monotonic
        self._keep = keep
        self._lock = threading.Lock()
        self._sequence = 0
        self.events = []
        self._handle = open(path, "w") if path is not None else None

    def __call__(self, kind, fields):
        record = {"seq": None, "ts": self._clock(), "kind": kind}
        record.update(fields)
        with self._lock:
            self._sequence += 1
            record["seq"] = self._sequence
            if self._keep:
                self.events.append(record)
            if self._handle is not None:
                json.dump(record, self._handle, default=str)
                self._handle.write("\n")
                self._handle.flush()

    def of_kind(self, kind):
        """The recorded events of one kind, in order."""
        with self._lock:
            return [event for event in self.events if event["kind"] == kind]

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class ProfileCollector:
    """Aggregate ``plan.operator`` events into per-operator totals.

    Keyed by ``(clause, variant, step)``; each entry accumulates
    invocation count, input/output cardinalities, and wall time.  The
    engine's round events are tracked so per-round totals (the numbers
    that must sum to ``derived_tuples_per_round``) are available too.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.operators = {}
        self.rounds = {}
        self._current_round = None

    def __call__(self, kind, fields):
        if kind == "engine.round":
            if fields.get("phase") == "begin":
                with self._lock:
                    self._current_round = fields.get("round")
            return
        if kind != "plan.operator":
            return
        key = (
            fields.get("clause"),
            fields.get("variant"),
            fields.get("step"),
        )
        with self._lock:
            entry = self.operators.get(key)
            if entry is None:
                entry = self.operators[key] = {
                    "clause": fields.get("clause"),
                    "variant": fields.get("variant"),
                    "step": fields.get("step"),
                    "op": fields.get("op"),
                    "predicate": fields.get("predicate"),
                    "invocations": 0,
                    "input_tuples": 0,
                    "output_tuples": 0,
                    "seconds": 0.0,
                }
            entry["invocations"] += fields.get("count", 1)
            entry["input_tuples"] += fields.get("in", 0)
            entry["output_tuples"] += fields.get("out", 0)
            entry["seconds"] += fields.get("duration_s", 0.0)
            if fields.get("aggregated"):
                # Worker-side totals flushed at a stratum boundary:
                # they span many rounds, so they cannot be attributed
                # to whichever round is current.
                return
            if fields.get("op") == "projection" and self._current_round is not None:
                bucket = self.rounds.setdefault(
                    self._current_round, {"derived_tuples": 0}
                )
                bucket["derived_tuples"] += fields.get("out", 0)

    def table(self):
        """Per-operator rows sorted by accumulated wall time, hottest
        first — JSON-safe, ready for reports."""
        with self._lock:
            rows = [dict(entry) for entry in self.operators.values()]
        rows.sort(key=lambda row: -row["seconds"])
        for row in rows:
            row["seconds"] = round(row["seconds"], 6)
        return rows

    def derived_per_round(self):
        """``{round: derived tuple total}`` summed over the projection
        operators that fired in that round — the cross-check against
        ``EvaluationStats.derived_tuples_per_round``."""
        with self._lock:
            return {
                number: bucket["derived_tuples"]
                for number, bucket in self.rounds.items()
            }
