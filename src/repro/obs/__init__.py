"""Observability: process-local metrics and span-style tracing.

The evaluation layers announce what they do on the event bus of
:mod:`repro.util.hooks` (round boundaries, plan operator invocations
with cardinalities, checkpoint writes, budget charges, service job
lifecycles); this package supplies the consumers:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket latency histograms with an injectable clock, rendering
  to the Prometheus text exposition format;
* :class:`~repro.obs.trace.TraceRecorder` — one JSON record per event,
  optionally streamed to a JSONL file (the CLI's ``--trace``);
* :class:`~repro.obs.trace.ProfileCollector` — per-operator
  aggregation (invocations, cardinalities, wall time) behind
  ``repro explain --profile``.

Nothing here runs unless installed; with no subscriber on the bus the
instrumented sites cost one global read each.
"""

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import ProfileCollector, TraceRecorder

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "ProfileCollector",
    "TraceRecorder",
]
