"""Command-line interface: ``python -m repro <command> …``.

Four subcommands mirror the library's four front ends, plus one
introspection command:

``run``
    Evaluate a deductive program (Section 4 language) bottom-up over a
    generalized database and print the closed-form IDB.

``explain``
    Print the compiled clause plans (join order, pushed-down
    selections and constraints, carriers, fused projection) the
    engine would execute, together with the plan fingerprint stamped
    into checkpoints.

``query``
    Evaluate a first-order query (the [KSW90] language) against a
    generalized database.

``datalog1s``
    Compute the eventually periodic minimal model of a
    Chomicki–Imieliński program.

``templog``
    Reduce a Templog program to TL1, translate it to Datalog1S, and
    print its minimal model.

Exit codes are stable for machine consumers:

====  =====================================================
0     success (complete model / answers)
1     other library or internal error
2     usage error: bad arguments, unreadable file, parse error
3     gave up / partial model (paper's Section-4.3 policy)
4     resource budget exceeded
====  =====================================================

``--json`` dumps a machine-readable run report instead of the human
output; budget (``--deadline``, ``--max-rounds``, ``--max-tuples``,
``--max-derived``) and checkpoint (``--checkpoint``,
``--checkpoint-every``, ``--resume-from``) flags govern the evaluation
runtime (see :mod:`repro.runtime`).

Examples::

    python -m repro run program.dtl --edb schedule.gdb --window 0 200
    python -m repro run program.dtl --edb schedule.gdb --deadline 5 --json
    python -m repro run program.dtl --edb s.gdb --checkpoint ck.json \\
        --checkpoint-every 10
    python -m repro query schedule.gdb 'exists u (train(t, u; "Liege", C))'
    python -m repro datalog1s trains.d1s
    python -m repro templog monitor.tlg
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import DeductiveEngine, parse_program
from repro.datalog1s import minimal_model, parse_datalog1s
from repro.fo import evaluate_query
from repro.gdb import parse_database
from repro.runtime.budget import EvaluationBudget
from repro.runtime.report import run_report
from repro.templog import parse_templog, templog_minimal_model
from repro.util.errors import (
    BudgetExceededError,
    EvaluationAbortedError,
    GiveUpError,
    ParseError,
    ReproError,
)

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3
EXIT_BUDGET = 4


class _UsageError(Exception):
    """A user-input problem reported as one line with exit code 2."""


def _read(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        reason = error.strerror or str(error)
        raise _UsageError("cannot read %s: %s" % (path, reason)) from error


def _add_window(parser):
    parser.add_argument(
        "--window",
        nargs=2,
        type=int,
        metavar=("LOW", "HIGH"),
        help="also enumerate ground answers within [LOW, HIGH)",
    )


def _add_json(parser):
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable run report instead of human output",
    )


def _add_budget(parser, full=True):
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget for the evaluation",
    )
    parser.add_argument(
        "--max-rounds",
        type=int,
        metavar="N",
        help="budget on fixpoint rounds",
    )
    if full:
        parser.add_argument(
            "--max-tuples",
            type=int,
            metavar="N",
            help="budget on tuples accepted into the model",
        )
        parser.add_argument(
            "--max-derived",
            type=int,
            metavar="N",
            help="budget on total derived-tuple work",
        )


def _budget_from_args(args):
    try:
        budget = EvaluationBudget(
            deadline_seconds=args.deadline,
            max_rounds=args.max_rounds,
            max_tuples=getattr(args, "max_tuples", None),
            max_derived=getattr(args, "max_derived", None),
        )
    except ValueError as error:
        raise _UsageError(str(error)) from error
    return budget if budget.limited() else None


def _emit_json(report, out):
    json.dump(report, out, indent=2, sort_keys=False)
    print(file=out)


def _cmd_run(args, out):
    program = parse_program(_read(args.program))
    edb = parse_database(_read(args.edb))
    engine = DeductiveEngine(
        program,
        edb,
        strategy=args.strategy,
        patience=args.patience,
        on_give_up="partial" if args.partial else "raise",
    )
    if args.checkpoint_every is not None:
        if args.checkpoint_every < 1:
            raise _UsageError("--checkpoint-every must be a positive round count")
        if args.checkpoint is None:
            raise _UsageError("--checkpoint-every requires --checkpoint PATH")
    outcome, code, model, error = "ok", EXIT_OK, None, None
    try:
        model = engine.run(
            budget=_budget_from_args(args),
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint,
            resume_from=args.resume_from,
        )
        if model.stats.gave_up:
            outcome, code = "gave-up", EXIT_PARTIAL
    except GiveUpError as err:
        outcome, code, model, error = "gave-up", EXIT_PARTIAL, err.partial_model, err
    except BudgetExceededError as err:
        outcome, code, model, error = (
            "budget-exceeded",
            EXIT_BUDGET,
            err.partial_model,
            err,
        )
    except EvaluationAbortedError as err:
        outcome, code, model, error = "aborted", EXIT_ERROR, err.partial_model, err

    window = tuple(args.window) if args.window else None
    if args.json:
        _emit_json(
            run_report(
                "run",
                outcome,
                code,
                stats=model.stats if model is not None else None,
                model=model,
                error=error,
                window=window,
            ),
            out,
        )
        return code

    if error is not None:
        print("%s: %s" % (outcome, error), file=sys.stderr)
    if model is None:
        return code

    stats = model.stats
    print(
        "%% %d strata, %d rounds, constraint safe: %s%s"
        % (
            stats.strata,
            stats.rounds,
            stats.constraint_safe,
            " (gave up)" if stats.gave_up else "",
        ),
        file=out,
    )
    predicates = [args.predicate] if args.predicate else model.predicates()
    for name in predicates:
        relation = model.relation(name).coalesce()
        print("%s %s" % (name, relation), file=out)
        if args.stats:
            from repro.gdb.analysis import analyze

            print("%% stats: %s" % analyze(model.relation(name)), file=out)
        if window:
            low, high = window
            for flat in sorted(model.extension(name, low, high), key=repr):
                print("  %s" % (flat,), file=out)
    if args.verify and outcome == "ok":
        from repro.core.verify import verify_model

        report = verify_model(program, edb, model, window=window or (0, 200))
        print("%% %s" % report, file=out)
        if not report.ok():
            return EXIT_ERROR
    return code


def _cmd_explain(args, out):
    from repro.core.evaluation import ProgramEvaluator
    from repro.plan.explain import format_program_plans, plan_fingerprint

    program = parse_program(_read(args.program))
    edb = parse_database(_read(args.edb))
    evaluator = ProgramEvaluator(program, edb)
    rendering = format_program_plans(evaluator.plans)
    fingerprint = plan_fingerprint(evaluator.plans)
    if args.json:
        _emit_json(
            {
                "command": "explain",
                "outcome": "ok",
                "exit_code": EXIT_OK,
                "plan_fingerprint": fingerprint,
                "plans": rendering,
            },
            out,
        )
        return EXIT_OK
    print(rendering, file=out)
    print("%% plan fingerprint: %s" % fingerprint, file=out)
    return EXIT_OK


def _cmd_query(args, out):
    edb = parse_database(_read(args.database))
    answers = evaluate_query(edb, args.formula)
    header = ", ".join(answers.temporal_vars + answers.data_vars) or "(closed)"
    if args.json:
        report = {
            "command": "query",
            "outcome": "ok",
            "exit_code": EXIT_OK,
            "answers_over": header,
            "relation": str(answers.relation),
        }
        if not answers.temporal_vars and not answers.data_vars:
            report["truth_value"] = answers.is_true()
        if args.window:
            low, high = args.window
            report["window"] = {
                "low": low,
                "high": high,
                "tuples": sorted(
                    [list(flat) for flat in answers.extension(low, high)], key=repr
                ),
            }
        _emit_json(report, out)
        return EXIT_OK
    print("%% answers over: %s" % header, file=out)
    print(str(answers.relation), file=out)
    if not answers.temporal_vars and not answers.data_vars:
        print("%% truth value: %s" % answers.is_true(), file=out)
    if args.window:
        low, high = args.window
        for flat in sorted(answers.extension(low, high), key=repr):
            print("  %s" % (flat,), file=out)
    return EXIT_OK


def _periodic_model_command(command, parse, evaluate):
    """Shared handler shape of the ``datalog1s``/``templog`` commands."""

    def handler(args, out):
        program = parse(_read(args.program))
        outcome, code, model, error = "ok", EXIT_OK, None, None
        try:
            model = evaluate(program, budget=_budget_from_args(args))
        except BudgetExceededError as err:
            outcome, code, model, error = (
                "budget-exceeded",
                EXIT_BUDGET,
                err.partial_model,
                err,
            )
        if args.json:
            _emit_json(
                {
                    "command": command,
                    "outcome": outcome,
                    "exit_code": code,
                    "error": None if error is None else str(error),
                    "model": None if model is None else str(model),
                },
                out,
            )
            return code
        if error is not None:
            print("%s: %s" % (outcome, error), file=sys.stderr)
        if model is not None:
            print(str(model), file=out)
        return code

    return handler


_cmd_datalog1s = _periodic_model_command(
    "datalog1s",
    parse_datalog1s,
    lambda program, budget: minimal_model(program, budget=budget),
)

_cmd_templog = _periodic_model_command(
    "templog",
    parse_templog,
    lambda program, budget: templog_minimal_model(program, budget=budget),
)


def build_parser():
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal constraint databases with linear repeating "
        "points (Baudinet, Niézette & Wolper, PODS 1991).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate a deductive program")
    run.add_argument("program", help="deductive program file")
    run.add_argument("--edb", required=True, help="generalized database file")
    run.add_argument("--predicate", help="print only this IDB predicate")
    run.add_argument(
        "--strategy", choices=("naive", "semi-naive"), default="semi-naive"
    )
    run.add_argument("--patience", type=int, default=10)
    run.add_argument(
        "--partial",
        action="store_true",
        help="print the partial model instead of failing on give-up "
        "(the exit code still reports 3)",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print relation statistics for each predicate",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="independently verify the model (stability + ground window)",
    )
    run.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="checkpoint file to write (with --checkpoint-every)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="write a resumable checkpoint every N rounds",
    )
    run.add_argument(
        "--resume-from",
        metavar="PATH",
        help="resume evaluation from a checkpoint file",
    )
    _add_budget(run)
    _add_json(run)
    _add_window(run)
    run.set_defaults(handler=_cmd_run)

    explain = commands.add_parser(
        "explain",
        help="print the compiled clause plans of a deductive program",
    )
    explain.add_argument("program", help="deductive program file")
    explain.add_argument("--edb", required=True, help="generalized database file")
    _add_json(explain)
    explain.set_defaults(handler=_cmd_explain)

    query = commands.add_parser("query", help="evaluate an FO query")
    query.add_argument("database", help="generalized database file")
    query.add_argument("formula", help="first-order query text")
    _add_json(query)
    _add_window(query)
    query.set_defaults(handler=_cmd_query)

    d1s = commands.add_parser(
        "datalog1s", help="closed-form Datalog1S minimal model"
    )
    d1s.add_argument("program", help="Datalog1S program file")
    _add_budget(d1s, full=False)
    _add_json(d1s)
    d1s.set_defaults(handler=_cmd_datalog1s)

    tlg = commands.add_parser("templog", help="Templog minimal model")
    tlg.add_argument("program", help="Templog program file")
    _add_budget(tlg, full=False)
    _add_json(tlg)
    tlg.set_defaults(handler=_cmd_templog)

    return parser


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except _UsageError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    except ParseError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    except BudgetExceededError as error:
        print("budget exceeded: %s" % error, file=sys.stderr)
        return EXIT_BUDGET
    except GiveUpError as error:
        print("give-up: %s" % error, file=sys.stderr)
        return EXIT_PARTIAL
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
