"""Command-line interface: ``python -m repro <command> …``.

Four subcommands mirror the library's four front ends, plus
introspection and service commands:

``run``
    Evaluate a deductive program (Section 4 language) bottom-up over a
    generalized database and print the closed-form IDB.

``explain``
    Print the compiled clause plans (join order, pushed-down
    selections and constraints, carriers, fused projection) the
    engine would execute, together with the plan fingerprint stamped
    into checkpoints.

``query``
    Evaluate a first-order query (the [KSW90] language) against a
    generalized database.

``datalog1s``
    Compute the eventually periodic minimal model of a
    Chomicki–Imieliński program.

``templog``
    Reduce a Templog program to TL1, translate it to Datalog1S, and
    print its minimal model.

``batch``
    Run a file of jobs (JSON array or JSONL) on the resilient query
    service (:mod:`repro.service`) — supervised worker pool, bounded
    admission queue, deadlines, retry+resume, circuit breaker,
    degradation ladder — and report one terminal result per job.

``serve``
    The same service as a line-oriented loop: read one JSON job per
    input line, emit one JSON result line per job; a ``health`` line
    answers with the service health snapshot and a ``metrics`` line
    with a Prometheus-style text exposition of the service metrics.
    ``SIGTERM``/``SIGINT`` trigger a graceful shutdown: the loop stops
    reading, drains every pending job (each still gets its result
    line), flushes, and exits 0.

``txn``
    Transactions against a durable, bi-temporal EDB store
    (:mod:`repro.edb`): ``txn apply STORE OPS.json`` commits batches of
    assert/retract/declare operations through the write-ahead log
    (``--maintain PROGRAM`` keeps a materialized model incrementally
    up to date after each commit; ``--checkpoint`` snapshots and
    prunes the log afterwards), ``txn log`` lists committed
    transactions, ``txn checkpoint`` compacts the store.

``asof``
    Time travel: ``asof STORE --tx N`` prints the EDB exactly as it
    stood after transaction ``N`` (visibility ``tx <= N`` and not yet
    retracted), and ``--program FILE`` runs a full fixpoint over that
    snapshot — the from-scratch twin of ``txn apply --maintain``.

Observability: ``run``/``query``/``datalog1s``/``templog`` accept
``--trace FILE`` (JSONL span trace of the evaluation), ``explain``
accepts ``--profile`` (per-operator time and cardinalities from a
real run), and ``batch --json`` reports the service metrics registry.

Exit codes are stable for machine consumers:

====  =====================================================
0     success (complete model / answers; every batch job ok)
1     other library or internal error / any batch job failed
2     usage error: bad arguments, unreadable file, parse error
3     gave up / partial model (paper's Section-4.3 policy);
      for ``batch``: some jobs partial, none failed
4     resource budget exceeded (e.g. ``--deadline-seconds``);
      the partial model is still reported under ``--json``
====  =====================================================

``--json`` dumps a machine-readable run report instead of the human
output; budget (``--deadline-seconds``/``--deadline``,
``--max-rounds``, ``--max-tuples``, ``--max-derived``) and checkpoint
(``--checkpoint``, ``--checkpoint-every``, ``--resume-from``) flags
govern the evaluation runtime (see :mod:`repro.runtime`).

Examples::

    python -m repro run program.dtl --edb schedule.gdb --window 0 200
    python -m repro run program.dtl --edb schedule.gdb --deadline-seconds 5 --json
    python -m repro run program.dtl --edb s.gdb --checkpoint ck.json \\
        --checkpoint-every 10
    python -m repro query schedule.gdb 'exists u (train(t, u; "Liege", C))'
    python -m repro datalog1s trains.d1s
    python -m repro templog monitor.tlg
    python -m repro batch jobs.json --workers 4 --json
    python -m repro serve --input jobs.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core import DeductiveEngine, parse_program
from repro.datalog1s import minimal_model, parse_datalog1s
from repro.fo import evaluate_query
from repro.gdb import parse_database
from repro.runtime.budget import EvaluationBudget
from repro.runtime.report import run_report
from repro.templog import parse_templog, templog_minimal_model
from repro.util.errors import (
    BudgetExceededError,
    EvaluationAbortedError,
    GiveUpError,
    ParseError,
    ReproError,
)
from repro.util.sorting import typed_sort_key

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3
EXIT_BUDGET = 4


class _UsageError(Exception):
    """A user-input problem reported as one line with exit code 2."""


def _parallel_arg(value):
    """``--parallel`` accepts a positive process count or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a process count or 'auto', got %r" % value
        ) from None


def _read(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        reason = error.strerror or str(error)
        raise _UsageError("cannot read %s: %s" % (path, reason)) from error


def _add_window(parser):
    parser.add_argument(
        "--window",
        nargs=2,
        type=int,
        metavar=("LOW", "HIGH"),
        help="also enumerate ground answers within [LOW, HIGH)",
    )


def _add_json(parser):
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable run report instead of human output",
    )


def _add_deadline(parser):
    parser.add_argument(
        "--deadline-seconds",
        "--deadline",
        dest="deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget for the evaluation (exit code 4 when "
        "exceeded; any partial model is still reported under --json)",
    )


def _add_budget(parser, full=True):
    _add_deadline(parser)
    parser.add_argument(
        "--max-rounds",
        type=int,
        metavar="N",
        help="budget on fixpoint rounds",
    )
    if full:
        parser.add_argument(
            "--max-tuples",
            type=int,
            metavar="N",
            help="budget on tuples accepted into the model",
        )
        parser.add_argument(
            "--max-derived",
            type=int,
            metavar="N",
            help="budget on total derived-tuple work",
        )


def _budget_from_args(args):
    try:
        budget = EvaluationBudget(
            deadline_seconds=args.deadline,
            max_rounds=getattr(args, "max_rounds", None),
            max_tuples=getattr(args, "max_tuples", None),
            max_derived=getattr(args, "max_derived", None),
        )
    except ValueError as error:
        raise _UsageError(str(error)) from error
    return budget if budget.limited() else None


def _add_trace(parser):
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL span trace of the evaluation (engine rounds, "
        "plan operators, checkpoint writes, budget charges) to FILE",
    )


def _tracing(args):
    """Context manager subscribing a :class:`TraceRecorder` writing to
    ``args.trace`` for the duration of the evaluation; a no-op when the
    flag is absent."""
    import contextlib

    path = getattr(args, "trace", None)
    if not path:
        return contextlib.nullcontext()
    from repro.obs import TraceRecorder
    from repro.util import hooks

    @contextlib.contextmanager
    def _subscribed():
        recorder = TraceRecorder(path=path, keep=False)
        try:
            with hooks.subscribed(recorder):
                yield recorder
        finally:
            recorder.close()

    return _subscribed()


def _emit_json(report, out):
    json.dump(report, out, indent=2, sort_keys=False)
    print(file=out)


def _emit_json_line(report, out):
    """One-object-per-line JSON for the ``serve`` streaming protocol."""
    json.dump(report, out, indent=None, sort_keys=False)
    print(file=out)
    out.flush()


def _cmd_run(args, out):
    program = parse_program(_read(args.program))
    edb = parse_database(_read(args.edb))
    if args.parallel != "auto" and args.parallel < 1:
        raise _UsageError("--parallel must be a positive process count or 'auto'")
    if args.shard_recv_deadline is not None and args.shard_recv_deadline <= 0:
        raise _UsageError("--shard-recv-deadline must be positive")
    if args.shard_max_restarts is not None and args.shard_max_restarts < 0:
        raise _UsageError("--shard-max-restarts must be >= 0")
    engine = DeductiveEngine(
        program,
        edb,
        strategy=args.strategy,
        patience=args.patience,
        on_give_up="partial" if args.partial else "raise",
        parallelism=args.parallel,
        coverage_cache=not args.no_coverage_cache,
        shard_recv_deadline=args.shard_recv_deadline,
        shard_max_restarts=args.shard_max_restarts,
        shard_fallback=not args.no_shard_fallback,
    )
    if args.checkpoint_every is not None:
        if args.checkpoint_every < 1:
            raise _UsageError("--checkpoint-every must be a positive round count")
        if args.checkpoint is None:
            raise _UsageError("--checkpoint-every requires --checkpoint PATH")
    plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    outcome, code, model, error = "ok", EXIT_OK, None, None
    with _installed_or_noop(plan), _tracing(args):
        try:
            model = engine.run(
                budget=_budget_from_args(args),
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=args.checkpoint,
                resume_from=args.resume_from,
            )
            if model.stats.gave_up:
                outcome, code = "gave-up", EXIT_PARTIAL
        except GiveUpError as err:
            outcome, code, model, error = (
                "gave-up",
                EXIT_PARTIAL,
                err.partial_model,
                err,
            )
        except BudgetExceededError as err:
            outcome, code, model, error = (
                "budget-exceeded",
                EXIT_BUDGET,
                err.partial_model,
                err,
            )
        except EvaluationAbortedError as err:
            outcome, code, model, error = (
                "aborted",
                EXIT_ERROR,
                err.partial_model,
                err,
            )

    window = tuple(args.window) if args.window else None
    if args.json:
        _emit_json(
            run_report(
                "run",
                outcome,
                code,
                stats=model.stats if model is not None else None,
                model=model,
                error=error,
                window=window,
            ),
            out,
        )
        return code

    if error is not None:
        print("%s: %s" % (outcome, error), file=sys.stderr)
    if model is None:
        return code

    stats = model.stats
    if stats.shard_degraded is not None:
        print(
            "%% shard pool lost, finished sequentially: %s"
            % stats.shard_degraded.get("reason", "unknown"),
            file=sys.stderr,
        )
    print(
        "%% %d strata, %d rounds, constraint safe: %s%s"
        % (
            stats.strata,
            stats.rounds,
            stats.constraint_safe,
            " (gave up)" if stats.gave_up else "",
        ),
        file=out,
    )
    predicates = [args.predicate] if args.predicate else model.predicates()
    for name in predicates:
        relation = model.relation(name).coalesce()
        print("%s %s" % (name, relation), file=out)
        if args.stats:
            from repro.gdb.analysis import analyze

            print("%% stats: %s" % analyze(model.relation(name)), file=out)
        if window:
            low, high = window
            for flat in sorted(model.extension(name, low, high), key=typed_sort_key):
                print("  %s" % (flat,), file=out)
    if args.verify and outcome == "ok":
        from repro.core.verify import verify_model

        report = verify_model(program, edb, model, window=window or (0, 200))
        print("%% %s" % report, file=out)
        if not report.ok():
            return EXIT_ERROR
    return code


def _profile_run(program, edb, strategy):
    """Execute the program once with a :class:`ProfileCollector`
    subscribed; the per-operator aggregates (time + cardinalities)
    drive ``explain --profile``."""
    from repro.obs import ProfileCollector
    from repro.util import hooks

    collector = ProfileCollector()
    engine = DeductiveEngine(program, edb, strategy=strategy, on_give_up="partial")
    with hooks.subscribed(collector):
        model = engine.run()
    return collector, model


def _profile_payload(collector, model):
    return {
        "operators": collector.table(),
        "derived_per_round": {
            str(round_no): count
            for round_no, count in sorted(collector.derived_per_round().items())
        },
        "stats": model.stats.to_dict(),
    }


def _print_profile(collector, model, out):
    stats = model.stats
    print(
        "%% profile: %d rounds, %.3fs, derived per round: %s"
        % (
            stats.rounds,
            stats.elapsed_seconds,
            [collector.derived_per_round().get(r, 0) for r in range(1, stats.rounds + 1)],
        ),
        file=out,
    )
    header = "%-10s %-9s %4s %5s %8s %8s %9s  %s" % (
        "op",
        "variant",
        "step",
        "calls",
        "in",
        "out",
        "seconds",
        "clause",
    )
    print(header, file=out)
    for row in collector.table():
        clause = row["clause"] or "?"
        if len(clause) > 48:
            clause = clause[:45] + "..."
        print(
            "%-10s %-9s %4d %5d %8d %8d %9.6f  %s"
            % (
                row["op"] + ("(%s)" % row["predicate"] if row["predicate"] else ""),
                row["variant"],
                row["step"],
                row["invocations"],
                row["input_tuples"],
                row["output_tuples"],
                row["seconds"],
                clause,
            ),
            file=out,
        )


def _cmd_explain(args, out):
    from repro.core.evaluation import ProgramEvaluator
    from repro.plan.explain import format_program_plans, plan_fingerprint

    program = parse_program(_read(args.program))
    edb = parse_database(_read(args.edb))
    evaluator = ProgramEvaluator(program, edb)
    rendering = format_program_plans(evaluator.plans)
    fingerprint = plan_fingerprint(evaluator.plans)
    profile = None
    if args.profile:
        collector, model = _profile_run(program, edb, args.strategy)
        profile = (collector, model)
    if args.json:
        report = {
            "command": "explain",
            "outcome": "ok",
            "exit_code": EXIT_OK,
            "plan_fingerprint": fingerprint,
            "plans": rendering,
        }
        if profile is not None:
            report["profile"] = _profile_payload(*profile)
        _emit_json(report, out)
        return EXIT_OK
    print(rendering, file=out)
    print("%% plan fingerprint: %s" % fingerprint, file=out)
    if profile is not None:
        _print_profile(*profile, out)
    return EXIT_OK


def _cmd_query(args, out):
    edb = parse_database(_read(args.database))
    if args.goal_directed and not args.program:
        raise _UsageError("--goal-directed requires --program")
    magic_info = None
    try:
        with _tracing(args):
            budget = _budget_from_args(args)
            if args.program:
                from repro.plan.magic import goal_from_formula

                program = parse_program(_read(args.program))
                engine = DeductiveEngine(program, edb, on_give_up="partial")
                if args.goal_directed:
                    window = tuple(args.window) if args.window else None
                    goal, reason = goal_from_formula(
                        args.formula,
                        program.intensional_predicates(),
                        window=window,
                    )
                    if goal is None:
                        model = engine.run(budget=budget)
                        model.stats.magic_degraded = {"reason": reason}
                        magic_info = {"degraded": True, "reason": reason}
                    else:
                        model, magic_info = engine.run_goal_directed(
                            goal, budget=budget
                        )
                else:
                    model = engine.run(budget=budget)
                answers = model.query(args.formula)
            else:
                answers = evaluate_query(edb, args.formula, budget=budget)
    except BudgetExceededError as err:
        if args.json:
            _emit_json(
                run_report("query", "budget-exceeded", EXIT_BUDGET, error=err),
                out,
            )
        else:
            print("budget-exceeded: %s" % err, file=sys.stderr)
        return EXIT_BUDGET
    header = ", ".join(answers.temporal_vars + answers.data_vars) or "(closed)"
    if args.json:
        report = {
            "command": "query",
            "outcome": "ok",
            "exit_code": EXIT_OK,
            "answers_over": header,
            "relation": str(answers.relation),
        }
        if magic_info is not None:
            report["magic"] = magic_info
        if not answers.temporal_vars and not answers.data_vars:
            report["truth_value"] = answers.is_true()
        if args.window:
            low, high = args.window
            report["window"] = {
                "low": low,
                "high": high,
                "tuples": sorted(
                    [list(flat) for flat in answers.extension(low, high)], key=typed_sort_key
                ),
            }
        _emit_json(report, out)
        return EXIT_OK
    print("%% answers over: %s" % header, file=out)
    if magic_info is not None:
        if magic_info.get("degraded"):
            print(
                "%% goal-directed: degraded to full fixpoint (%s)"
                % magic_info["reason"],
                file=out,
            )
        else:
            print(
                "%% goal-directed: %s (dropped %d clauses, %d magic facts)"
                % (
                    magic_info["goal"],
                    magic_info["dropped_clauses"],
                    magic_info["magic_facts"],
                ),
                file=out,
            )
    print(str(answers.relation), file=out)
    if not answers.temporal_vars and not answers.data_vars:
        print("%% truth value: %s" % answers.is_true(), file=out)
    if args.window:
        low, high = args.window
        for flat in sorted(answers.extension(low, high), key=typed_sort_key):
            print("  %s" % (flat,), file=out)
    return EXIT_OK


def _periodic_model_command(command, parse, evaluate):
    """Shared handler shape of the ``datalog1s``/``templog`` commands."""

    def handler(args, out):
        program = parse(_read(args.program))
        outcome, code, model, error = "ok", EXIT_OK, None, None
        with _tracing(args):
            try:
                model = evaluate(program, budget=_budget_from_args(args))
            except BudgetExceededError as err:
                outcome, code, model, error = (
                    "budget-exceeded",
                    EXIT_BUDGET,
                    err.partial_model,
                    err,
                )
        if args.json:
            _emit_json(
                {
                    "command": command,
                    "outcome": outcome,
                    "exit_code": code,
                    "error": None if error is None else str(error),
                    "model": None if model is None else str(model),
                },
                out,
            )
            return code
        if error is not None:
            print("%s: %s" % (outcome, error), file=sys.stderr)
        if model is not None:
            print(str(model), file=out)
        return code

    return handler


_cmd_datalog1s = _periodic_model_command(
    "datalog1s",
    parse_datalog1s,
    lambda program, budget: minimal_model(program, budget=budget),
)

_cmd_templog = _periodic_model_command(
    "templog",
    parse_templog,
    lambda program, budget: templog_minimal_model(program, budget=budget),
)


# -- service commands -----------------------------------------------------


def _load_job_specs(text, base_dir="."):
    """Parse a jobs file: a JSON array of job objects, or JSONL.

    ``program`` / ``edb`` / ``query`` may be given inline, or via
    ``program_file`` / ``edb_file`` / ``query_file`` paths resolved
    relative to the jobs file.
    """
    from repro.service import JobSpec

    text = text.strip()
    if not text:
        raise _UsageError("jobs file is empty")
    if text.startswith("["):
        try:
            payloads = json.loads(text)
        except ValueError as error:
            raise _UsageError("jobs file is not valid JSON: %s" % error) from error
    else:
        payloads = []
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payloads.append(json.loads(line))
            except ValueError as error:
                raise _UsageError(
                    "jobs line %d is not valid JSON: %s" % (number, error)
                ) from error
    specs = []
    for index, payload in enumerate(payloads, start=1):
        if not isinstance(payload, dict):
            raise _UsageError("job %d is not a JSON object" % index)
        try:
            specs.append(
                JobSpec.from_json_dict(
                    _resolve_job_files(payload, base_dir),
                    default_id="job-%d" % index,
                )
            )
        except ValueError as error:
            raise _UsageError("job %d: %s" % (index, error)) from error
    return specs


def _resolve_job_files(payload, base_dir="."):
    """Inline ``program_file`` / ``edb_file`` / ``query_file``
    references of a job object (paths relative to ``base_dir``)."""
    payload = dict(payload)
    for key in ("program", "edb", "query"):
        path = payload.pop("%s_file" % key, None)
        if path is not None and key not in payload:
            payload[key] = _read(os.path.join(base_dir, path))
    return payload


def _load_fault_plan(path):
    from repro.runtime.faults import FaultPlan

    try:
        payload = json.loads(_read(path))
    except ValueError as error:
        raise _UsageError(
            "fault plan %s is not valid JSON: %s" % (path, error)
        ) from error
    try:
        return FaultPlan.from_json_dict(payload)
    except ValueError as error:
        raise _UsageError("fault plan %s: %s" % (path, error)) from error


def _build_service(args):
    from repro.service import CircuitBreaker, QueryService, RetryPolicy

    return QueryService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        retry=RetryPolicy(max_attempts=args.max_attempts, seed=args.retry_seed),
        breaker=CircuitBreaker(
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown,
        ),
        default_deadline=args.deadline,
        work_dir=args.work_dir,
        max_parallelism=args.max_parallelism,
    )


def _batch_exit_code(results):
    states = {result.state for result in results}
    if states & {"failed", "rejected"}:
        return EXIT_ERROR
    if "partial" in states:
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_batch(args, out):
    specs = _load_job_specs(
        _read(args.jobs), base_dir=os.path.dirname(os.path.abspath(args.jobs))
    )
    plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    with _installed_or_noop(plan):
        with _build_service(args) as service:
            results = service.run_batch(specs, timeout=args.batch_timeout)
            stats = service.stats()
            health = service.health()
            metrics = service.metrics.to_dict()
    code = _batch_exit_code(results)
    if args.json:
        _emit_json(
            {
                "command": "batch",
                "outcome": "ok" if code == EXIT_OK else "degraded",
                "exit_code": code,
                "jobs": [result.to_json_dict() for result in results],
                "service": stats,
                "health": health,
                "metrics": metrics,
            },
            out,
        )
        return code
    for result in results:
        line = "%s: %s (%s; attempts=%d, backend=%s" % (
            result.job_id,
            result.state,
            result.outcome,
            result.attempts,
            result.backend,
        )
        if result.degradation:
            line += ", degraded=%s" % "+".join(result.degradation)
        if result.resumed:
            line += ", resumed"
        print(line + ")", file=out)
    jobs = stats["jobs"]
    print(
        "%% %d jobs: %d ok, %d partial, %d failed, %d rejected; "
        "%d retries, %d worker restarts; health: %s"
        % (
            len(results),
            jobs["ok"],
            jobs["partial"],
            jobs["failed"],
            jobs["rejected"],
            jobs["retries"],
            stats["workers"]["restarts"],
            health["status"],
        ),
        file=out,
    )
    return code


def _installed_or_noop(plan):
    import contextlib

    return plan.installed() if plan is not None else contextlib.nullcontext()


def _emit_metrics(service, out):
    """The ``metrics`` op of the serve protocol: raw Prometheus-style
    text exposition (not a JSON line — scrapers consume it verbatim)."""
    out.write(service.metrics_text())
    out.flush()


class _GracefulShutdown(Exception):
    """Raised by the ``serve`` signal handlers to unwind the read loop
    so the service drains and closes instead of dying mid-write."""


def _cmd_serve(args, out):
    import signal

    plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    if args.input is not None:
        stream = open(args.input)
        base_dir = os.path.dirname(os.path.abspath(args.input))
    else:
        stream = sys.stdin
        base_dir = "."
    from repro.service import JobSpec
    from repro.util.errors import ServiceError

    pending = []
    states = set()
    stopped = {"signal": None}

    def flush(block=False):
        while pending:
            handle = pending[0]
            if not block and not handle.done():
                return
            result = handle.result()
            states.add(result.state)
            _emit_json_line(result.to_json_dict(), out)
            pending.pop(0)

    def _on_signal(signum, frame):
        stopped["signal"] = signum
        raise _GracefulShutdown()

    previous_handlers = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous_handlers[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):
            # Not the main thread (tests drive main() directly): the
            # loop still works, just without signal-triggered shutdown.
            pass

    with _installed_or_noop(plan), _tracing(args):
        with _build_service(args) as service:
            try:
                for number, line in enumerate(stream, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    if line in ("health", '"health"') or line == '{"op": "health"}':
                        _emit_json_line(service.health(), out)
                        continue
                    if line in ("metrics", '"metrics"') or line == '{"op": "metrics"}':
                        _emit_metrics(service, out)
                        continue
                    try:
                        payload = json.loads(line)
                        if isinstance(payload, dict) and payload.get("op") == "health":
                            _emit_json_line(service.health(), out)
                            continue
                        if isinstance(payload, dict) and payload.get("op") == "metrics":
                            _emit_metrics(service, out)
                            continue
                        spec = JobSpec.from_json_dict(
                            _resolve_job_files(payload, base_dir),
                            default_id="job-%d" % number,
                        )
                        pending.append(service.submit(spec))
                    except (ValueError, ServiceError, _UsageError) as error:
                        _emit_json_line(
                            {
                                "job_id": "job-%d" % number,
                                "state": "rejected",
                                "outcome": "error",
                                "error": {
                                    "type": type(error).__name__,
                                    "message": str(error),
                                },
                            },
                            out,
                        )
                        states.add("rejected")
                    flush()
                flush(block=True)
            except _GracefulShutdown:
                # Drain: every already-submitted job finishes and its
                # result line is written before the service closes
                # (flushing metrics) and _tracing closes the recorder.
                drained = len(pending)
                try:
                    flush(block=True)
                except _GracefulShutdown:
                    pass  # second signal: stop waiting, close now
                print(
                    "%% received signal %s, drained %d pending job(s), "
                    "shutting down" % (stopped["signal"], drained),
                    file=sys.stderr,
                )
            finally:
                for signum, handler in previous_handlers.items():
                    try:
                        signal.signal(signum, handler)
                    except (ValueError, OSError):
                        pass
                if stream is not sys.stdin:
                    stream.close()
    if stopped["signal"] is not None:
        return EXIT_OK
    if states & {"failed", "rejected"}:
        return EXIT_ERROR
    if "partial" in states:
        return EXIT_PARTIAL
    return EXIT_OK


def _open_store(args):
    from repro.edb import EdbStore

    kwargs = {}
    if getattr(args, "segment_bytes", None):
        if args.segment_bytes < 64:
            raise _UsageError("--segment-bytes must be at least 64")
        kwargs["segment_bytes"] = args.segment_bytes
    return EdbStore.open(args.store, **kwargs)


def _load_txn_batches(path):
    """The ``txn apply`` ops file: one transaction (a JSON list of op
    objects, or ``{"ops": [...]}``) or several (``{"txns": [[...],
    ...]}`` or a JSON list of lists)."""
    try:
        payload = json.loads(_read(path))
    except ValueError as error:
        raise _UsageError("ops file %s is not valid JSON: %s" % (path, error)) from error
    if isinstance(payload, dict):
        if "txns" in payload:
            batches = payload["txns"]
        else:
            batches = [payload.get("ops", [])]
    elif isinstance(payload, list) and payload and all(
        isinstance(entry, list) for entry in payload
    ):
        batches = payload
    else:
        batches = [payload]
    if not isinstance(batches, list) or not all(
        isinstance(batch, list) for batch in batches
    ):
        raise _UsageError("ops file %s: expected op lists" % path)
    return batches


def _cmd_txn_apply(args, out):
    from repro.edb import MaterializedModel, ops_from_json

    batches = _load_txn_batches(args.ops)
    plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    maintainer = None
    if args.maintain:
        maintainer = MaterializedModel(_read(args.maintain))
    receipts, reports = [], []
    model = None
    with _installed_or_noop(plan), _tracing(args):
        store = _open_store(args)
        try:
            for batch in batches:
                receipt = store.apply(ops_from_json(store, batch))
                receipts.append(receipt.to_json_dict())
                if maintainer is not None:
                    model = maintainer.refresh(
                        store, budget=_budget_from_args(args)
                    )
                    reports.append(maintainer.last_report.to_json_dict())
            if args.txn_checkpoint:
                store.checkpoint()
        finally:
            store.close()
    window = tuple(args.window) if args.window else None
    if args.json:
        payload = {
            "command": "txn-apply",
            "outcome": "ok",
            "exit_code": EXIT_OK,
            "head_tx": store.head_tx,
            "receipts": receipts,
            "maintain": reports or None,
        }
        if model is not None:
            from repro.runtime.report import model_summary

            payload["stats"] = model.stats.to_dict()
            payload["model"] = model_summary(model, window=window)
        _emit_json(payload, out)
        return EXIT_OK
    for receipt in receipts:
        print(
            "tx %d: +%d -%d (declared %d, noops %d, %d WAL bytes)"
            % (
                receipt["tx"],
                receipt["asserted"],
                receipt["retracted"],
                receipt["declared"],
                receipt["noops"],
                receipt["wal_bytes"],
            ),
            file=out,
        )
    if reports:
        last = reports[-1]
        print(
            "%% maintained to tx %d: %s, %d round(s)"
            % (
                last["tx"],
                "recomputed (%s)" % (last["reason"] or "initial")
                if last["recomputed"] else
                "incremental (+%d -%d, overdeleted %d)"
                % (last["inserted"], last["retracted"], last["overdeleted"]),
                last["rounds"],
            ),
            file=out,
        )
    if model is not None:
        for name in model.predicates():
            print("%s %s" % (name, model.relation(name).coalesce()), file=out)
            if window:
                low, high = window
                for flat in sorted(model.extension(name, low, high), key=typed_sort_key):
                    print("  %s" % (flat,), file=out)
    return EXIT_OK


def _cmd_txn_log(args, out):
    store = _open_store(args)
    store.close()
    txns = store.transactions()
    if args.json:
        _emit_json(
            {
                "command": "txn-log",
                "outcome": "ok",
                "exit_code": EXIT_OK,
                "head_tx": store.head_tx,
                "txns": txns,
            },
            out,
        )
        return EXIT_OK
    for entry in txns:
        print(
            "tx %d: +%d -%d (declared %d)"
            % (entry["tx"], entry["asserted"], entry["retracted"], entry["declared"]),
            file=out,
        )
    print("%% head tx: %d" % store.head_tx, file=out)
    return EXIT_OK


def _cmd_txn_checkpoint(args, out):
    store = _open_store(args)
    try:
        path = store.checkpoint()
    finally:
        store.close()
    if args.json:
        _emit_json(
            {
                "command": "txn-checkpoint",
                "outcome": "ok",
                "exit_code": EXIT_OK,
                "head_tx": store.head_tx,
                "path": path,
            },
            out,
        )
        return EXIT_OK
    print("checkpoint at tx %d -> %s" % (store.head_tx, path), file=out)
    return EXIT_OK


def _cmd_asof(args, out):
    store = _open_store(args)
    store.close()
    tx = store.head_tx if args.tx is None else args.tx
    if args.tx is not None and args.tx > store.head_tx:
        raise _UsageError(
            "--tx %d is beyond the store head (%d)" % (args.tx, store.head_tx)
        )
    snapshot = store.snapshot(tx)
    window = tuple(args.window) if args.window else None
    if args.goal_directed and not args.program:
        raise _UsageError("--goal-directed requires --program")
    if not args.program:
        if args.json:
            _emit_json(
                {
                    "command": "asof",
                    "outcome": "ok",
                    "exit_code": EXIT_OK,
                    "tx": tx,
                    "head_tx": store.head_tx,
                    "edb": str(snapshot),
                },
                out,
            )
            return EXIT_OK
        print("%% EDB as of tx %d (head %d)" % (tx, store.head_tx), file=out)
        print(str(snapshot), file=out)
        return EXIT_OK
    if args.goal_directed and not args.predicate:
        raise _UsageError("--goal-directed requires --predicate")
    program = parse_program(_read(args.program))
    engine = DeductiveEngine(program, snapshot)
    outcome, code, model, error = "ok", EXIT_OK, None, None
    magic_info = None
    with _tracing(args):
        try:
            if args.goal_directed:
                from repro.plan.magic import QueryGoal

                if window:
                    goal = QueryGoal.windowed(args.predicate, window[0], window[1])
                else:
                    goal = QueryGoal.whole(args.predicate)
                model, magic_info = engine.run_goal_directed(
                    goal, budget=_budget_from_args(args)
                )
            else:
                model = engine.run(budget=_budget_from_args(args))
        except GiveUpError as err:
            outcome, code, model, error = "gave-up", EXIT_PARTIAL, err.partial_model, err
        except BudgetExceededError as err:
            outcome, code, model, error = (
                "budget-exceeded",
                EXIT_BUDGET,
                err.partial_model,
                err,
            )
    if args.json:
        report = run_report(
            "asof",
            outcome,
            code,
            stats=model.stats if model is not None else None,
            model=model,
            error=error,
            window=window,
        )
        report["tx"] = tx
        if magic_info is not None:
            report["magic"] = magic_info
        _emit_json(report, out)
        return code
    if error is not None:
        print("%s: %s" % (outcome, error), file=sys.stderr)
    if model is None:
        return code
    print("%% model as of tx %d (head %d)" % (tx, store.head_tx), file=out)
    if magic_info is not None and not magic_info.get("degraded"):
        # A goal-directed model is only promised within the demanded
        # region of the goal predicate; print just that.
        print("%% goal-directed: %s" % magic_info["goal"], file=out)
    predicates = model.predicates()
    if magic_info is not None and not magic_info.get("degraded"):
        predicates = [name for name in predicates if name == args.predicate]
    for name in predicates:
        print("%s %s" % (name, model.relation(name).coalesce()), file=out)
        if window:
            low, high = window
            for flat in sorted(model.extension(name, low, high), key=typed_sort_key):
                print("  %s" % (flat,), file=out)
    return code


def build_parser():
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal constraint databases with linear repeating "
        "points (Baudinet, Niézette & Wolper, PODS 1991).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate a deductive program")
    run.add_argument("program", help="deductive program file")
    run.add_argument("--edb", required=True, help="generalized database file")
    run.add_argument("--predicate", help="print only this IDB predicate")
    run.add_argument(
        "--strategy", choices=("naive", "semi-naive"), default="semi-naive"
    )
    run.add_argument("--patience", type=int, default=10)
    run.add_argument(
        "--parallel",
        type=_parallel_arg,
        default=1,
        metavar="N|auto",
        help="shard each round's clause firings across N processes "
        "(default 1: sequential; the model is identical either way); "
        "'auto' starts sequential and upshifts only when a measured "
        "round is big enough to pay the dispatch overhead",
    )
    run.add_argument(
        "--no-coverage-cache",
        action="store_true",
        help="disable the cross-round coverage cache (ablation; results "
        "are identical, only implied_by_union call counts change)",
    )
    run.add_argument(
        "--shard-recv-deadline",
        type=float,
        metavar="SECONDS",
        help="seconds a silent shard worker is waited on mid-round "
        "before being declared hung and its tasks retried (default 30)",
    )
    run.add_argument(
        "--shard-max-restarts",
        type=int,
        metavar="N",
        help="shard-worker respawns allowed per run before a lost "
        "worker stays lost (default 2)",
    )
    run.add_argument(
        "--no-shard-fallback",
        action="store_true",
        help="fail the run when the whole shard pool is lost instead "
        "of finishing it sequentially in-process",
    )
    run.add_argument(
        "--fault-plan",
        metavar="PATH",
        help="JSON fault plan installed around the run (deterministic "
        "chaos testing; see repro.runtime.faults)",
    )
    run.add_argument(
        "--partial",
        action="store_true",
        help="print the partial model instead of failing on give-up "
        "(the exit code still reports 3)",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print relation statistics for each predicate",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="independently verify the model (stability + ground window)",
    )
    run.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="checkpoint file to write (with --checkpoint-every)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="write a resumable checkpoint every N rounds",
    )
    run.add_argument(
        "--resume-from",
        metavar="PATH",
        help="resume evaluation from a checkpoint file",
    )
    _add_budget(run)
    _add_json(run)
    _add_window(run)
    _add_trace(run)
    run.set_defaults(handler=_cmd_run)

    explain = commands.add_parser(
        "explain",
        help="print the compiled clause plans of a deductive program",
    )
    explain.add_argument("program", help="deductive program file")
    explain.add_argument("--edb", required=True, help="generalized database file")
    explain.add_argument(
        "--profile",
        action="store_true",
        help="execute the program once and report per-operator time and "
        "input/output cardinalities alongside the plans",
    )
    explain.add_argument(
        "--strategy",
        choices=("naive", "semi-naive"),
        default="semi-naive",
        help="evaluation strategy for the --profile run",
    )
    _add_json(explain)
    explain.set_defaults(handler=_cmd_explain)

    query = commands.add_parser("query", help="evaluate an FO query")
    query.add_argument("database", help="generalized database file")
    query.add_argument("formula", help="first-order query text")
    query.add_argument(
        "--program",
        metavar="FILE",
        help="evaluate this deductive program first; the query then "
        "ranges over its model (IDB + EDB)",
    )
    query.add_argument(
        "--goal-directed",
        action="store_true",
        help="with --program: evaluate only the demand cone of the "
        "query via the magic-set rewrite; answers are guaranteed "
        "within the demanded window (falls back to the full fixpoint "
        "when the rewrite cannot apply)",
    )
    _add_deadline(query)
    _add_json(query)
    _add_window(query)
    _add_trace(query)
    query.set_defaults(handler=_cmd_query)

    d1s = commands.add_parser(
        "datalog1s", help="closed-form Datalog1S minimal model"
    )
    d1s.add_argument("program", help="Datalog1S program file")
    _add_budget(d1s, full=False)
    _add_json(d1s)
    _add_trace(d1s)
    d1s.set_defaults(handler=_cmd_datalog1s)

    tlg = commands.add_parser("templog", help="Templog minimal model")
    tlg.add_argument("program", help="Templog program file")
    _add_budget(tlg, full=False)
    _add_json(tlg)
    _add_trace(tlg)
    tlg.set_defaults(handler=_cmd_templog)

    batch = commands.add_parser(
        "batch",
        help="run a file of jobs on the resilient query service",
    )
    batch.add_argument("jobs", help="jobs file (JSON array or JSONL)")
    batch.add_argument(
        "--batch-timeout",
        type=float,
        metavar="SECONDS",
        help="bound on the total wait for the whole batch",
    )
    _add_service(batch)
    _add_json(batch)
    batch.set_defaults(handler=_cmd_batch)

    serve = commands.add_parser(
        "serve",
        help="serve JSON jobs line by line (stdin by default)",
    )
    serve.add_argument(
        "--input",
        metavar="PATH",
        help="read job lines from this file instead of stdin",
    )
    _add_service(serve)
    _add_trace(serve)
    serve.set_defaults(handler=_cmd_serve)

    txn = commands.add_parser(
        "txn",
        help="transactions against a durable EDB store (WAL-backed)",
    )
    txn_commands = txn.add_subparsers(dest="txn_command", required=True)

    txn_apply = txn_commands.add_parser(
        "apply",
        help="commit one or more transactions of declare/assert/retract ops",
    )
    txn_apply.add_argument("store", help="store directory (created if absent)")
    txn_apply.add_argument(
        "ops",
        help="JSON ops file: one op list, {'ops': [...]}, {'txns': [[...], "
        "...]}, or a list of op lists (one transaction each)",
    )
    txn_apply.add_argument(
        "--maintain",
        metavar="PROGRAM",
        help="incrementally maintain this program's model across the "
        "applied transactions and print/report the final model",
    )
    txn_apply.add_argument(
        "--checkpoint",
        dest="txn_checkpoint",
        action="store_true",
        help="write a store checkpoint (and prune covered WAL segments) "
        "after the last transaction",
    )
    txn_apply.add_argument(
        "--segment-bytes",
        type=int,
        metavar="N",
        help="WAL segment rotation threshold (testing/tuning)",
    )
    txn_apply.add_argument(
        "--fault-plan",
        metavar="FILE",
        help="install a deterministic fault plan (JSON) for the duration",
    )
    _add_window(txn_apply)
    _add_json(txn_apply)
    _add_trace(txn_apply)
    _add_budget(txn_apply)
    txn_apply.set_defaults(handler=_cmd_txn_apply)

    txn_log = txn_commands.add_parser(
        "log", help="list the store's committed transactions"
    )
    txn_log.add_argument("store", help="store directory")
    _add_json(txn_log)
    txn_log.set_defaults(handler=_cmd_txn_log)

    txn_ckpt = txn_commands.add_parser(
        "checkpoint",
        help="snapshot the fact history and prune covered WAL segments",
    )
    txn_ckpt.add_argument("store", help="store directory")
    _add_json(txn_ckpt)
    txn_ckpt.set_defaults(handler=_cmd_txn_checkpoint)

    asof = commands.add_parser(
        "asof",
        help="query a durable EDB store as of a transaction "
        "(tx <= N and not retracted by N)",
    )
    asof.add_argument("store", help="store directory")
    asof.add_argument(
        "--tx",
        type=int,
        metavar="N",
        help="the transaction to view as of (default: the store head)",
    )
    asof.add_argument(
        "--program",
        metavar="FILE",
        help="evaluate this deductive program over the as-of snapshot "
        "(default: print the snapshot EDB itself)",
    )
    asof.add_argument(
        "--predicate",
        metavar="NAME",
        help="with --goal-directed: the goal predicate to demand",
    )
    asof.add_argument(
        "--goal-directed",
        action="store_true",
        help="with --program and --predicate: evaluate only the goal's "
        "demand cone via the magic-set rewrite, pushing --window into "
        "the demand as a constraint zone",
    )
    _add_window(asof)
    _add_json(asof)
    _add_trace(asof)
    _add_budget(asof)
    asof.set_defaults(handler=_cmd_asof)

    return parser


def _add_service(parser):
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N", help="worker pool size"
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="admission queue bound (submissions beyond it are shed)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per job for transient failures",
    )
    parser.add_argument(
        "--retry-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed of the deterministic backoff jitter",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive terminal failures that open a program's circuit",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="cooldown before a half-open probe is admitted",
    )
    parser.add_argument(
        "--deadline-seconds",
        "--deadline",
        dest="deadline",
        type=float,
        metavar="SECONDS",
        help="default per-job wall-clock deadline (jobs may override)",
    )
    parser.add_argument(
        "--work-dir",
        metavar="PATH",
        help="directory for per-job checkpoints (temporary by default)",
    )
    parser.add_argument(
        "--max-parallelism",
        type=int,
        default=None,
        metavar="N",
        help="cap on per-job shard parallelism "
        "(default: cpu count divided by --workers)",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PATH",
        help="JSON fault plan to install for the whole run (testing)",
    )


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except _UsageError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    except ParseError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    except BudgetExceededError as error:
        print("budget exceeded: %s" % error, file=sys.stderr)
        return EXIT_BUDGET
    except GiveUpError as error:
        print("give-up: %s" % error, file=sys.stderr)
        return EXIT_PARTIAL
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
