"""Command-line interface: ``python -m repro <command> …``.

Four subcommands mirror the library's four front ends:

``run``
    Evaluate a deductive program (Section 4 language) bottom-up over a
    generalized database and print the closed-form IDB.

``query``
    Evaluate a first-order query (the [KSW90] language) against a
    generalized database.

``datalog1s``
    Compute the eventually periodic minimal model of a
    Chomicki–Imieliński program.

``templog``
    Reduce a Templog program to TL1, translate it to Datalog1S, and
    print its minimal model.

Examples::

    python -m repro run program.dtl --edb schedule.gdb --window 0 200
    python -m repro query schedule.gdb 'exists u (train(t, u; "Liege", C))'
    python -m repro datalog1s trains.d1s
    python -m repro templog monitor.tlg
"""

from __future__ import annotations

import argparse
import sys

from repro.core import DeductiveEngine, parse_program
from repro.datalog1s import minimal_model, parse_datalog1s
from repro.fo import evaluate_query
from repro.gdb import parse_database
from repro.templog import parse_templog, templog_minimal_model
from repro.util.errors import GiveUpError, ReproError


def _read(path):
    with open(path) as handle:
        return handle.read()


def _add_window(parser):
    parser.add_argument(
        "--window",
        nargs=2,
        type=int,
        metavar=("LOW", "HIGH"),
        help="also enumerate ground answers within [LOW, HIGH)",
    )


def _cmd_run(args, out):
    program = parse_program(_read(args.program))
    edb = parse_database(_read(args.edb))
    engine = DeductiveEngine(
        program,
        edb,
        strategy=args.strategy,
        patience=args.patience,
        on_give_up="partial" if args.partial else "raise",
    )
    model = engine.run()
    stats = model.stats
    print(
        "%% %d strata, %d rounds, constraint safe: %s%s"
        % (
            stats.strata,
            stats.rounds,
            stats.constraint_safe,
            " (gave up)" if stats.gave_up else "",
        ),
        file=out,
    )
    predicates = [args.predicate] if args.predicate else model.predicates()
    for name in predicates:
        relation = model.relation(name).coalesce()
        print("%s %s" % (name, relation), file=out)
        if args.stats:
            from repro.gdb.analysis import analyze

            print("%% stats: %s" % analyze(model.relation(name)), file=out)
        if args.window:
            low, high = args.window
            for flat in sorted(model.extension(name, low, high), key=repr):
                print("  %s" % (flat,), file=out)
    if args.verify:
        from repro.core.verify import verify_model

        window = tuple(args.window) if args.window else (0, 200)
        report = verify_model(program, edb, model, window=window)
        print("%% %s" % report, file=out)
        if not report.ok():
            return 3
    return 0


def _cmd_query(args, out):
    edb = parse_database(_read(args.database))
    answers = evaluate_query(edb, args.formula)
    header = ", ".join(answers.temporal_vars + answers.data_vars) or "(closed)"
    print("%% answers over: %s" % header, file=out)
    print(str(answers.relation), file=out)
    if not answers.temporal_vars and not answers.data_vars:
        print("%% truth value: %s" % answers.is_true(), file=out)
    if args.window:
        low, high = args.window
        for flat in sorted(answers.extension(low, high), key=repr):
            print("  %s" % (flat,), file=out)
    return 0


def _cmd_datalog1s(args, out):
    program = parse_datalog1s(_read(args.program))
    model = minimal_model(program)
    print(str(model), file=out)
    return 0


def _cmd_templog(args, out):
    program = parse_templog(_read(args.program))
    model = templog_minimal_model(program)
    print(str(model), file=out)
    return 0


def build_parser():
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal constraint databases with linear repeating "
        "points (Baudinet, Niézette & Wolper, PODS 1991).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate a deductive program")
    run.add_argument("program", help="deductive program file")
    run.add_argument("--edb", required=True, help="generalized database file")
    run.add_argument("--predicate", help="print only this IDB predicate")
    run.add_argument(
        "--strategy", choices=("naive", "semi-naive"), default="semi-naive"
    )
    run.add_argument("--patience", type=int, default=10)
    run.add_argument(
        "--partial",
        action="store_true",
        help="return the partial model instead of failing on give-up",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="print relation statistics for each predicate",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="independently verify the model (stability + ground window)",
    )
    _add_window(run)
    run.set_defaults(handler=_cmd_run)

    query = commands.add_parser("query", help="evaluate an FO query")
    query.add_argument("database", help="generalized database file")
    query.add_argument("formula", help="first-order query text")
    _add_window(query)
    query.set_defaults(handler=_cmd_query)

    d1s = commands.add_parser(
        "datalog1s", help="closed-form Datalog1S minimal model"
    )
    d1s.add_argument("program", help="Datalog1S program file")
    d1s.set_defaults(handler=_cmd_datalog1s)

    tlg = commands.add_parser("templog", help="Templog minimal model")
    tlg.add_argument("program", help="Templog program file")
    tlg.set_defaults(handler=_cmd_templog)

    return parser


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except GiveUpError as error:
        print("give-up: %s" % error, file=sys.stderr)
        return 2
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
