"""Finite-acceptance automata and the finitely-regular test.

The paper (Section 3.2) characterizes Templog / Datalog1S yes-no query
expressiveness as the **finitely regular** ω-languages: ``L`` is
finitely regular when it is obtained by extending the words of a
regular language ``L'`` to infinite words in all possible ways —
equivalently, when it is accepted by a *finite-acceptance* automaton,
which accepts an ω-word as soon as it accepts a finite prefix.

Topologically these are exactly the **open** ω-regular languages
(finite unions of cylinders ``u·Σ^ω``).  For a language given by a
*deterministic* Büchi automaton, openness — hence finite regularity —
is decidable by a reachability analysis, implemented here in
:func:`is_deterministic_buchi_open`.
"""

from __future__ import annotations

from repro.omega.buchi import BuchiAutomaton
from repro.omega.dfa import Nfa


class FiniteAcceptanceAutomaton:
    """An NFA read over ω-words: accepts ``w`` iff the underlying NFA
    accepts some finite prefix of ``w``."""

    def __init__(self, nfa):
        self.nfa = nfa

    @classmethod
    def from_parts(cls, states, alphabet, transitions, initial, accepting):
        """Convenience constructor mirroring :class:`Nfa`."""
        return cls(Nfa(states, alphabet, transitions, initial, accepting))

    @property
    def alphabet(self):
        return self.nfa.alphabet

    def accepts_lasso(self, prefix, loop):
        """Membership of ``prefix·loop^ω``: does some finite prefix hit
        an accepting subset?  Decided on the (subset, loop position)
        graph, which is finite."""
        if not loop:
            raise ValueError("the loop part must be non-empty")
        current = self.nfa.initial
        if current & self.nfa.accepting:
            return True
        for symbol in prefix:
            current = self.nfa.step(current, symbol)
            if current & self.nfa.accepting:
                return True
        seen = {(current, 0)}
        queue = [(current, 0)]
        n = len(loop)
        while queue:
            subset, position = queue.pop()
            target = self.nfa.step(subset, loop[position])
            if target & self.nfa.accepting:
                return True
            node = (target, (position + 1) % n)
            if node not in seen:
                seen.add(node)
                queue.append(node)
        return False

    def to_buchi(self):
        """The equivalent Büchi automaton: once a prefix is accepted,
        jump to an always-accepting sink."""
        sink = "_accept_sink"
        states = set(self.nfa.states) | {sink}
        transitions = {}
        for (state, symbol), targets in self.nfa.transitions.items():
            expanded = set(targets)
            if targets & self.nfa.accepting:
                expanded.add(sink)
            transitions[(state, symbol)] = expanded
        for symbol in self.nfa.alphabet:
            transitions[(sink, symbol)] = {sink}
        initial = set(self.nfa.initial)
        if initial & self.nfa.accepting:
            # The empty prefix is already accepted: the language is Σ^ω.
            initial.add(sink)
        return BuchiAutomaton(
            states, self.nfa.alphabet, transitions, initial, {sink}
        )

    def is_empty(self):
        """True when no ω-word is accepted — i.e. the prefix NFA
        accepts nothing reachable."""
        return self.to_buchi().is_empty()


def _universal_states(buchi):
    """States of a deterministic Büchi automaton from which **every**
    infinite continuation is accepted.

    From state q every run is accepting iff no cycle avoiding the
    accepting set is reachable from q (any such cycle supports a
    rejected run; conversely a rejected run eventually recurs inside
    an accepting-free cycle).
    """
    # States lying on a cycle within the subgraph avoiding accepting states.
    avoid = {state for state in buchi.states if state not in buchi.accepting}
    on_bad_cycle = set()
    for state in avoid:
        # reachable from state within `avoid`, in >= 1 step
        frontier = set()
        for symbol in buchi.alphabet:
            frontier |= {
                t for t in buchi.successors(state, symbol) if t in avoid
            }
        seen = set(frontier)
        queue = list(frontier)
        found = state in seen
        while queue and not found:
            node = queue.pop()
            if node == state:
                found = True
                break
            for symbol in buchi.alphabet:
                for target in buchi.successors(node, symbol):
                    if target in avoid and target not in seen:
                        seen.add(target)
                        queue.append(target)
        if found or state in frontier:
            on_bad_cycle.add(state)
    # Universal states: cannot reach any bad-cycle state.
    universal = set()
    for state in buchi.states:
        seen = {state}
        queue = [state]
        tainted = state in on_bad_cycle
        while queue and not tainted:
            node = queue.pop()
            if node in on_bad_cycle:
                tainted = True
                break
            for symbol in buchi.alphabet:
                for target in buchi.successors(node, symbol):
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
        if not tainted:
            universal.add(state)
    return universal


def is_deterministic_buchi_open(buchi):
    """Decide whether the language of a **deterministic** Büchi
    automaton is open — equivalently (for ω-regular languages)
    finitely regular, i.e. within Templog/Datalog1S yes-no query
    expressiveness.

    ``L`` is open iff every accepted word has a prefix reaching a
    universal state: equivalently, iff the automaton restricted to
    non-universal states accepts nothing.
    """
    if not buchi.is_deterministic():
        raise ValueError("the openness test needs a deterministic automaton")
    complete = all(
        buchi.successors(state, symbol)
        for state in buchi.states
        for symbol in buchi.alphabet
    )
    if not complete:
        raise ValueError(
            "the openness test needs a complete automaton (add a "
            "rejecting sink for missing transitions)"
        )
    universal = _universal_states(buchi)
    restricted_states = buchi.states - frozenset(universal)
    transitions = {}
    for (state, symbol), targets in buchi.transitions.items():
        if state in restricted_states:
            kept = {t for t in targets if t in restricted_states}
            if kept:
                transitions[(state, symbol)] = kept
    restricted = BuchiAutomaton(
        restricted_states,
        buchi.alphabet,
        transitions,
        buchi.initial & frozenset(restricted_states),
        buchi.accepting & frozenset(restricted_states),
    )
    return restricted.is_empty()
