"""Bridges between temporal databases and ω-automata (Section 3).

A one-predicate temporal database over ℕ *is* an ω-word over the
alphabet ``('0', '1')`` (``'1'`` at position t iff the predicate holds
at t) — exactly the encoding the paper uses to characterize query
expressiveness.  This module builds:

* the witness automata of the E4 experiment — "p at some even time"
  (regular but not star-free), "eventually p" (open / finitely
  regular), "infinitely often p" (ω-regular, not open);
* characteristic automata for eventually periodic sets — the
  deterministic Büchi automaton accepting exactly the one ω-word that
  encodes the set.
"""

from __future__ import annotations

from repro.omega.buchi import BuchiAutomaton
from repro.omega.dfa import Dfa
from repro.omega.finite_acceptance import FiniteAcceptanceAutomaton

ALPHABET = ("0", "1")


def dfa_position_multiple(k, alphabet=ALPHABET):
    """The DFA of ``{w : |w| ≡ 0 (mod k)}`` — the classic
    non-star-free family for k >= 2 (its syntactic monoid contains
    the cyclic group ℤ/k)."""
    states = list(range(k))
    delta = {
        (state, symbol): (state + 1) % k
        for state in states
        for symbol in alphabet
    }
    return Dfa(states, alphabet, delta, 0, {0})


def dfa_ones_multiple(k, alphabet=ALPHABET):
    """The DFA counting '1's modulo ``k`` (not star-free for k >= 2)."""
    states = list(range(k))
    delta = {}
    for state in states:
        delta[(state, "0")] = state
        delta[(state, "1")] = (state + 1) % k
    return Dfa(states, alphabet, delta, 0, {0})


def dfa_one_at_even_position(alphabet=ALPHABET):
    """The DFA of finite words with a '1' at some even position
    (0-based) — the finite-prefix language of the paper-style query
    "p holds at some even time".  Not star-free."""
    # States: parity of the current position, plus an accepting sink.
    states = ["even", "odd", "found"]
    delta = {
        ("even", "0"): "odd",
        ("even", "1"): "found",
        ("odd", "0"): "even",
        ("odd", "1"): "even",
        ("found", "0"): "found",
        ("found", "1"): "found",
    }
    return Dfa(states, alphabet, delta, "even", {"found"})


def dfa_suffix_language(word, alphabet=ALPHABET):
    """The star-free language ``Σ*·word`` as a DFA (via NFA
    determinization would be overkill; build the KMP automaton)."""
    states = list(range(len(word) + 1))

    def advance(matched, symbol):
        prefix = word[:matched] + (symbol,)
        while prefix:
            if word[: len(prefix)] == prefix:
                return len(prefix)
            prefix = prefix[1:]
        return 0

    delta = {}
    for state in states:
        for symbol in alphabet:
            delta[(state, symbol)] = advance(min(state, len(word)), symbol)
    return Dfa(states, alphabet, delta, 0, {len(word)})


def finite_acceptance_eventually(symbol="1", alphabet=ALPHABET):
    """Finite-acceptance automaton for "eventually p": accept any
    prefix containing ``symbol``."""
    transitions = {
        ("wait", s): {"wait"} if s != symbol else {"seen"} for s in alphabet
    }
    for s in alphabet:
        transitions[("seen", s)] = {"seen"}
    from repro.omega.dfa import Nfa

    nfa = Nfa({"wait", "seen"}, alphabet, transitions, {"wait"}, {"seen"})
    return FiniteAcceptanceAutomaton(nfa)


def buchi_eventually(symbol="1", alphabet=ALPHABET):
    """Deterministic Büchi automaton of "eventually p" (an open, hence
    finitely regular, language)."""
    transitions = {}
    for s in alphabet:
        transitions[("wait", s)] = {"seen"} if s == symbol else {"wait"}
        transitions[("seen", s)] = {"seen"}
    return BuchiAutomaton(
        {"wait", "seen"}, alphabet, transitions, {"wait"}, {"seen"}
    )


def buchi_infinitely_often(symbol="1", alphabet=ALPHABET):
    """Deterministic Büchi automaton of "infinitely often p" — the
    standard ω-regular language that is **not** finitely regular (not
    open), witnessing the paper's claim that stratified negation adds
    power."""
    transitions = {}
    for s in alphabet:
        transitions[("idle", s)] = {"hit"} if s == symbol else {"idle"}
        transitions[("hit", s)] = {"hit"} if s == symbol else {"idle"}
    return BuchiAutomaton({"idle", "hit"}, alphabet, transitions, {"idle"}, {"hit"})


def characteristic_buchi(eps, alphabet=ALPHABET):
    """The deterministic Büchi automaton accepting exactly the single
    ω-word that encodes an :class:`EventuallyPeriodicSet` (position t
    reads '1' iff t is a member).

    The automaton is complete: a rejecting sink absorbs every
    deviation from the characteristic word.
    """
    length = eps.threshold + eps.period
    states = list(range(length)) + ["sink"]
    transitions = {}
    for t in range(length):
        expected = "1" if t in eps else "0"
        if t + 1 < length:
            target = t + 1
        else:
            target = eps.threshold  # wrap into the periodic part
        for s in alphabet:
            transitions[(t, s)] = {target} if s == expected else {"sink"}
    for s in alphabet:
        transitions[("sink", s)] = {"sink"}
    accepting = set(range(eps.threshold, length))
    return BuchiAutomaton(states, alphabet, transitions, {0}, accepting)


def word_of_eps(eps, length):
    """The first ``length`` letters of the characteristic ω-word."""
    return tuple("1" if t in eps else "0" for t in range(length))


def lasso_of_eps(eps):
    """``(prefix, loop)`` such that the characteristic word of the set
    is ``prefix·loop^ω``."""
    prefix = word_of_eps(eps, eps.threshold)
    loop = tuple(
        "1" if t in eps else "0"
        for t in range(eps.threshold, eps.threshold + eps.period)
    )
    return prefix, loop
