"""ω-automata and the decision procedures behind Section 3.

The paper's query-expressiveness statements place the three formalisms
at three levels of the ω-language hierarchy:

* Datalog1S / Templog yes-no queries ≙ **finitely regular**
  ω-languages — those accepted by finite-acceptance automata
  (equivalently: the *open* ω-regular languages, ``W·Σ^ω`` for a
  regular ``W``);
* with stratified negation ≙ the full class of **ω-regular**
  languages (Büchi automata);
* the first-order language of [KSW90] ≙ the **star-free** ω-regular
  languages — incomparable with finitely regular, strictly inside
  ω-regular.

This package provides machine-checkable versions of the separations:

* :mod:`repro.omega.dfa` — NFAs/DFAs with determinization,
  minimization, boolean operations;
* :mod:`repro.omega.monoid` — the syntactic (transition) monoid and
  Schützenberger's aperiodicity criterion, deciding star-freeness of
  the regular building blocks;
* :mod:`repro.omega.buchi` — Büchi automata with union, intersection,
  emptiness, and lasso-word membership;
* :mod:`repro.omega.finite_acceptance` — finite-acceptance automata
  on ω-words and the exact openness test for deterministic Büchi
  automata (deciding "is this language finitely regular?");
* :mod:`repro.omega.expressiveness` — bridges from periodic sets and
  queries to automata, used by experiment E4.
"""

from repro.omega.dfa import Dfa, Nfa
from repro.omega.monoid import is_aperiodic, is_star_free, syntactic_monoid
from repro.omega.buchi import BuchiAutomaton
from repro.omega.finite_acceptance import (
    FiniteAcceptanceAutomaton,
    is_deterministic_buchi_open,
)
from repro.omega.expressiveness import (
    buchi_eventually,
    buchi_infinitely_often,
    characteristic_buchi,
    dfa_position_multiple,
    dfa_suffix_language,
)
from repro.omega import ltl

__all__ = [
    "Dfa",
    "Nfa",
    "syntactic_monoid",
    "is_aperiodic",
    "is_star_free",
    "BuchiAutomaton",
    "FiniteAcceptanceAutomaton",
    "is_deterministic_buchi_open",
    "buchi_eventually",
    "buchi_infinitely_often",
    "characteristic_buchi",
    "dfa_position_multiple",
    "dfa_suffix_language",
]
