"""Syntactic monoids and Schützenberger's star-freeness criterion.

A regular language is *star-free* (definable without Kleene star,
equivalently first-order definable over ``<``) iff its syntactic
monoid is **aperiodic**: some power ``m^n`` of every element satisfies
``m^n = m^{n+1}`` (no non-trivial subgroup).  This is the decision
procedure behind the paper's Section 3.2 claim that the [KSW90]
first-order query language — expressively the star-free ω-regular
languages — cannot express periodicity queries such as "p holds at
some even time", while the deductive languages can.
"""

from __future__ import annotations


def transition_monoid(dfa):
    """The transition monoid of a DFA: all functions state→state
    induced by words, as tuples over a fixed state order.

    Returns ``(elements, generator_map)`` where ``elements`` is the set
    of functions (each a tuple) closed under composition and including
    the identity, and ``generator_map`` maps each alphabet symbol to
    its function.
    """
    order = sorted(dfa.states, key=repr)
    index = {state: i for i, state in enumerate(order)}

    def function_of(symbol):
        return tuple(index[dfa.delta[(state, symbol)]] for state in order)

    identity = tuple(range(len(order)))
    generators = {symbol: function_of(symbol) for symbol in dfa.alphabet}
    elements = {identity}
    queue = [identity]
    while queue:
        f = queue.pop()
        for g in generators.values():
            # first f (earlier word), then g: h(i) = g[f[i]]
            h = tuple(g[f[i]] for i in range(len(order)))
            if h not in elements:
                elements.add(h)
                queue.append(h)
    return elements, generators


def syntactic_monoid(dfa):
    """The transition monoid of the *minimal* automaton of the
    language — the syntactic monoid."""
    elements, _ = transition_monoid(dfa.minimize())
    return elements


def _compose(f, g):
    return tuple(g[f[i]] for i in range(len(f)))


def is_aperiodic(elements):
    """Aperiodicity: every element has ``m^n = m^{n+1}`` for some n.

    Since the eventual cycle of powers of ``m`` has length dividing
    the monoid size, it suffices to check ``m^n = m^{n+1}`` at
    ``n = |M|``.
    """
    size = len(elements)
    for m in elements:
        power = m
        for _ in range(size):
            power = _compose(power, m)
        if power != _compose(power, m):
            return False
    return True


def is_star_free(dfa):
    """Schützenberger's theorem: star-free ⟺ aperiodic syntactic
    monoid.

    >>> from repro.omega.expressiveness import dfa_position_multiple
    >>> is_star_free(dfa_position_multiple(2))   # (ΣΣ)* is not star-free
    False
    """
    return is_aperiodic(syntactic_monoid(dfa))


def group_witness(elements):
    """An element generating a non-trivial group inside the monoid, or
    None when the monoid is aperiodic.  Useful for explaining *why* a
    language fails the star-freeness test."""
    size = len(elements)
    for m in elements:
        power = m
        for _ in range(size):
            power = _compose(power, m)
        if power != _compose(power, m):
            return m
    return None
