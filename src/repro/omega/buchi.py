"""Büchi automata — the ω-regular class of Section 3.2.

Nondeterministic Büchi automata with union, intersection (the
two-track degeneralization), emptiness via the lasso criterion, and
membership of ultimately periodic words ``u·v^ω`` — everything the
expressiveness experiments need, implemented exactly.
"""

from __future__ import annotations

import itertools


class BuchiAutomaton:
    """A nondeterministic Büchi automaton.

    ``transitions`` maps ``(state, symbol)`` to a set of states; a run
    is accepting when it visits ``accepting`` infinitely often.
    """

    def __init__(self, states, alphabet, transitions, initial, accepting):
        self.states = frozenset(states)
        self.alphabet = tuple(alphabet)
        self.transitions = {
            key: frozenset(value) for key, value in transitions.items()
        }
        self.initial = frozenset(initial)
        self.accepting = frozenset(accepting)

    def successors(self, state, symbol):
        """Transition targets (possibly empty)."""
        return self.transitions.get((state, symbol), frozenset())

    def is_deterministic(self):
        """At most one initial state and one successor per symbol."""
        if len(self.initial) > 1:
            return False
        return all(
            len(self.successors(state, symbol)) <= 1
            for state in self.states
            for symbol in self.alphabet
        )

    # -- graph helpers -----------------------------------------------------

    def _reachable_from(self, sources):
        seen = set(sources)
        queue = list(sources)
        while queue:
            state = queue.pop()
            for symbol in self.alphabet:
                for target in self.successors(state, symbol):
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
        return seen

    def is_empty(self):
        """Lasso criterion: the language is non-empty iff some
        accepting state is reachable from an initial state and lies on
        a cycle."""
        reachable = self._reachable_from(self.initial)
        for state in self.accepting & frozenset(reachable):
            # Is `state` reachable from itself in >= 1 step?
            frontier = set()
            for symbol in self.alphabet:
                frontier |= self.successors(state, symbol)
            if state in self._reachable_from(frontier):
                return False
        return True

    def accepts_lasso(self, prefix, loop):
        """Membership of the ultimately periodic word ``prefix·loop^ω``.

        Decided on the product of the automaton with the lasso shape:
        an accepting cycle must exist within the loop part.
        """
        if not loop:
            raise ValueError("the loop part must be non-empty")
        # States after the prefix.
        current = set(self.initial)
        for symbol in prefix:
            nxt = set()
            for state in current:
                nxt |= self.successors(state, symbol)
            current = nxt
        # Product graph over (state, loop position); edge is accepting
        # when it leaves an accepting automaton state.
        n = len(loop)
        nodes = set()
        edges = {}
        queue = [(state, 0) for state in current]
        nodes.update(queue)
        while queue:
            (state, position) = queue.pop()
            symbol = loop[position]
            for target in self.successors(state, symbol):
                node = (target, (position + 1) % n)
                edges.setdefault((state, position), set()).add(node)
                if node not in nodes:
                    nodes.add(node)
                    queue.append(node)
        # Search for a reachable cycle through an accepting state.
        for node in nodes:
            state, _ = node
            if state not in self.accepting:
                continue
            if self._node_reaches(edges, node, node):
                return True
        return False

    @staticmethod
    def _node_reaches(edges, source, target):
        seen = set()
        queue = list(edges.get(source, ()))
        seen.update(queue)
        while queue:
            node = queue.pop()
            if node == target:
                return True
            for nxt in edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    # -- boolean operations ----------------------------------------------------

    def union(self, other):
        """Language union (disjoint sum)."""
        if tuple(other.alphabet) != tuple(self.alphabet):
            raise ValueError("alphabet mismatch")

        def tag(automaton, label):
            return {(label, state) for state in automaton}

        states = tag(self.states, 0) | tag(other.states, 1)
        transitions = {}
        for (state, symbol), targets in self.transitions.items():
            transitions[((0, state), symbol)] = {(0, t) for t in targets}
        for (state, symbol), targets in other.transitions.items():
            transitions[((1, state), symbol)] = {(1, t) for t in targets}
        return BuchiAutomaton(
            states,
            self.alphabet,
            transitions,
            tag(self.initial, 0) | tag(other.initial, 1),
            tag(self.accepting, 0) | tag(other.accepting, 1),
        )

    def intersection(self, other):
        """Language intersection (standard two-copy degeneralized
        product)."""
        if tuple(other.alphabet) != tuple(self.alphabet):
            raise ValueError("alphabet mismatch")
        states = set(itertools.product(self.states, other.states, (0, 1)))
        transitions = {}
        for (p, q, track) in states:
            # The track switches based on the state being left: waiting
            # for F_A on track 0, for F_B on track 1.
            if track == 0:
                new_track = 1 if p in self.accepting else 0
            else:
                new_track = 0 if q in other.accepting else 1
            for symbol in self.alphabet:
                targets = {
                    (p2, q2, new_track)
                    for p2 in self.successors(p, symbol)
                    for q2 in other.successors(q, symbol)
                }
                if targets:
                    transitions[((p, q, track), symbol)] = targets
        initial = {
            (p, q, 0) for p in self.initial for q in other.initial
        }
        # Accepting: about to complete a full F_A-then-F_B round.
        accepting = {
            (p, q, 1)
            for (p, q, track) in states
            if track == 1 and q in other.accepting
        }
        return BuchiAutomaton(states, self.alphabet, transitions, initial, accepting)
