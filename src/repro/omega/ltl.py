"""Linear temporal logic over ultimately periodic words.

The paper's Section 3.2 closes the circle on the [KSW90] first-order
query language by citing [GPSS80]: its expressiveness "is also the
expressiveness of temporal logic with the operators ○, □, ◇ and U
(until)" — i.e. LTL.  This module provides that fourth query language
of the paper:

* an LTL AST (atoms, boolean connectives, ``X``, ``U``, and the
  derived ``F``, ``G``, ``R``);
* exact evaluation over ultimately periodic words ``prefix·loop^ω``
  (every temporal database with finitely representable content is such
  a word), by least-fixpoint iteration of the ``U`` unrolling on the
  lasso graph;
* evaluation directly over eventually periodic sets — an LTL query on
  a one-predicate temporal database.

Positions are letters; a letter is a frozenset of proposition names.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Atom:
    """The proposition ``name`` holds at the current position."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class TrueConst:
    """The constant true."""

    def __str__(self):
        return "true"


@dataclass(frozen=True)
class Not:
    sub: object

    def __str__(self):
        return "!(%s)" % self.sub


@dataclass(frozen=True)
class And:
    left: object
    right: object

    def __str__(self):
        return "(%s & %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Or:
    left: object
    right: object

    def __str__(self):
        return "(%s | %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Next:
    """``X φ`` — φ at the next instant."""

    sub: object

    def __str__(self):
        return "X(%s)" % self.sub


@dataclass(frozen=True)
class Until:
    """``φ U ψ`` — ψ eventually holds, with φ holding until then."""

    left: object
    right: object

    def __str__(self):
        return "(%s U %s)" % (self.left, self.right)


def F(sub):
    """``◇ φ`` (eventually) as ``true U φ``."""
    return Until(TrueConst(), sub)


def G(sub):
    """``□ φ`` (always) as ``¬◇¬φ``."""
    return Not(F(Not(sub)))


def R(left, right):
    """``φ R ψ`` (release) as ``¬(¬φ U ¬ψ)``."""
    return Not(Until(Not(left), Not(right)))


def Implies(left, right):
    """``φ → ψ``."""
    return Or(Not(left), right)


def evaluate(formula, prefix, loop):
    """Truth of ``formula`` at every position of ``prefix·loop^ω``.

    ``prefix`` and ``loop`` are sequences of letters (frozensets of
    proposition names; plain sets are accepted).  Returns a list of
    booleans for the ``len(prefix) + len(loop)`` distinguished
    positions (the loop positions repeat forever).

    ``U`` is computed as its least fixpoint
    ``T = ψ ∨ (φ ∧ X T)`` iterated to stability on the lasso graph —
    exact, because on an ultimately periodic word truth values are
    themselves ultimately periodic with the same lasso shape.
    """
    if not loop:
        raise ValueError("the loop part must be non-empty")
    letters = [frozenset(letter) for letter in list(prefix) + list(loop)]
    total = len(letters)
    first_loop = len(prefix)

    def successor(position):
        if position + 1 < total:
            return position + 1
        return first_loop

    def recurse(node):
        if isinstance(node, Atom):
            return [node.name in letters[k] for k in range(total)]
        if isinstance(node, TrueConst):
            return [True] * total
        if isinstance(node, Not):
            return [not v for v in recurse(node.sub)]
        if isinstance(node, And):
            left, right = recurse(node.left), recurse(node.right)
            return [a and b for a, b in zip(left, right)]
        if isinstance(node, Or):
            left, right = recurse(node.left), recurse(node.right)
            return [a or b for a, b in zip(left, right)]
        if isinstance(node, Next):
            sub = recurse(node.sub)
            return [sub[successor(k)] for k in range(total)]
        if isinstance(node, Until):
            left, right = recurse(node.left), recurse(node.right)
            truth = [False] * total
            changed = True
            while changed:
                changed = False
                for k in range(total - 1, -1, -1):
                    value = right[k] or (left[k] and truth[successor(k)])
                    if value and not truth[k]:
                        truth[k] = True
                        changed = True
            return truth
        raise TypeError("unexpected LTL node %r" % (node,))

    return recurse(formula)


def holds_at(formula, prefix, loop, position=0):
    """Truth at one position (positions beyond the lasso fold back
    into the loop)."""
    values = evaluate(formula, prefix, loop)
    total = len(values)
    first_loop = total - len(loop)
    if position < total:
        return values[position]
    folded = first_loop + (position - first_loop) % len(loop)
    return values[folded]


def eps_lasso(eps, proposition="p"):
    """The lasso word of a one-predicate temporal database given as an
    :class:`~repro.lrp.periodic_set.EventuallyPeriodicSet`."""
    prefix = [
        frozenset([proposition]) if t in eps else frozenset()
        for t in range(eps.threshold)
    ]
    loop = [
        frozenset([proposition]) if t in eps else frozenset()
        for t in range(eps.threshold, eps.threshold + eps.period)
    ]
    return prefix, loop


def query_eps(formula, eps, proposition="p", position=0):
    """An LTL query on a one-predicate temporal database: the truth of
    ``formula`` at ``position`` of the database's characteristic word."""
    prefix, loop = eps_lasso(eps, proposition)
    return holds_at(formula, prefix, loop, position)
