"""Finite automata on finite words.

Small, exact, dependency-free NFA/DFA toolkit: determinization,
completion, minimization (partition refinement), boolean operations,
emptiness and equivalence.  The star-freeness decision in
:mod:`repro.omega.monoid` and the ω-layers build on this.
"""

from __future__ import annotations

import itertools


class Nfa:
    """A nondeterministic finite automaton (no ε-transitions).

    ``transitions`` maps ``(state, symbol)`` to a set of states.
    """

    def __init__(self, states, alphabet, transitions, initial, accepting):
        self.states = frozenset(states)
        self.alphabet = tuple(alphabet)
        self.transitions = {
            key: frozenset(value) for key, value in transitions.items()
        }
        self.initial = frozenset(initial)
        self.accepting = frozenset(accepting)

    def step(self, states, symbol):
        """The set of states reachable from ``states`` on ``symbol``."""
        result = set()
        for state in states:
            result |= self.transitions.get((state, symbol), frozenset())
        return frozenset(result)

    def accepts(self, word):
        """Membership of a finite word."""
        current = self.initial
        for symbol in word:
            current = self.step(current, symbol)
        return bool(current & self.accepting)

    def determinize(self):
        """Subset construction; the result is complete."""
        initial = self.initial
        states = {initial}
        delta = {}
        queue = [initial]
        while queue:
            subset = queue.pop()
            for symbol in self.alphabet:
                target = self.step(subset, symbol)
                delta[(subset, symbol)] = target
                if target not in states:
                    states.add(target)
                    queue.append(target)
        accepting = {subset for subset in states if subset & self.accepting}
        return Dfa(states, self.alphabet, delta, initial, accepting)


class Dfa:
    """A complete deterministic finite automaton.

    ``delta`` maps ``(state, symbol)`` to one state and must be total
    on ``states × alphabet``.
    """

    def __init__(self, states, alphabet, delta, initial, accepting):
        self.states = frozenset(states)
        self.alphabet = tuple(alphabet)
        self.delta = dict(delta)
        self.initial = initial
        self.accepting = frozenset(accepting)
        for state in self.states:
            for symbol in self.alphabet:
                if (state, symbol) not in self.delta:
                    raise ValueError(
                        "incomplete DFA: no transition from %r on %r"
                        % (state, symbol)
                    )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_table(cls, alphabet, table, initial, accepting):
        """Build from ``{state: {symbol: target}}``."""
        delta = {
            (state, symbol): target
            for state, row in table.items()
            for symbol, target in row.items()
        }
        return cls(table.keys(), alphabet, delta, initial, accepting)

    # -- runs -------------------------------------------------------------

    def run(self, word, start=None):
        """The state reached after reading ``word``."""
        state = self.initial if start is None else start
        for symbol in word:
            state = self.delta[(state, symbol)]
        return state

    def accepts(self, word):
        """Membership of a finite word."""
        return self.run(word) in self.accepting

    # -- structure -----------------------------------------------------------

    def reachable(self):
        """The sub-automaton of states reachable from the initial one."""
        seen = {self.initial}
        queue = [self.initial]
        while queue:
            state = queue.pop()
            for symbol in self.alphabet:
                target = self.delta[(state, symbol)]
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        delta = {
            (state, symbol): self.delta[(state, symbol)]
            for state in seen
            for symbol in self.alphabet
        }
        return Dfa(seen, self.alphabet, delta, self.initial, self.accepting & seen)

    def minimize(self):
        """Minimal equivalent DFA (partition refinement / Moore)."""
        automaton = self.reachable()
        partition = {}
        for state in automaton.states:
            partition[state] = state in automaton.accepting
        while True:
            signatures = {}
            for state in automaton.states:
                signature = (
                    partition[state],
                    tuple(
                        partition[automaton.delta[(state, symbol)]]
                        for symbol in automaton.alphabet
                    ),
                )
                signatures[state] = signature
            classes = {}
            for state, signature in signatures.items():
                classes.setdefault(signature, set()).add(state)
            new_partition = {}
            # Stable renaming: map each signature to an index.
            ordered = sorted(classes.keys(), key=repr)
            for index, signature in enumerate(ordered):
                for state in classes[signature]:
                    new_partition[state] = index
            if len(set(new_partition.values())) == len(set(partition.values())):
                partition = new_partition
                break
            partition = new_partition
        blocks = sorted(set(partition.values()))
        representative = {}
        for state, block in partition.items():
            representative.setdefault(block, state)
        delta = {}
        for block in blocks:
            state = representative[block]
            for symbol in self.alphabet:
                delta[(block, symbol)] = partition[automaton.delta[(state, symbol)]]
        accepting = {
            partition[state] for state in automaton.accepting
        }
        return Dfa(blocks, self.alphabet, delta, partition[automaton.initial], accepting)

    # -- boolean algebra -----------------------------------------------------------

    def complement(self):
        """The DFA of the complement language."""
        return Dfa(
            self.states,
            self.alphabet,
            self.delta,
            self.initial,
            self.states - self.accepting,
        )

    def product(self, other, accept):
        """Product automaton; ``accept(in_self, in_other)`` decides
        acceptance of a pair."""
        if tuple(other.alphabet) != tuple(self.alphabet):
            raise ValueError("alphabet mismatch")
        states = set(itertools.product(self.states, other.states))
        delta = {}
        for (p, q) in states:
            for symbol in self.alphabet:
                delta[((p, q), symbol)] = (
                    self.delta[(p, symbol)],
                    other.delta[(q, symbol)],
                )
        accepting = {
            (p, q)
            for (p, q) in states
            if accept(p in self.accepting, q in other.accepting)
        }
        return Dfa(
            states, self.alphabet, delta, (self.initial, other.initial), accepting
        )

    def intersection(self, other):
        """Language intersection."""
        return self.product(other, lambda a, b: a and b)

    def union(self, other):
        """Language union."""
        return self.product(other, lambda a, b: a or b)

    def difference(self, other):
        """Language difference."""
        return self.product(other, lambda a, b: a and not b)

    # -- decision procedures ----------------------------------------------------------

    def is_empty(self):
        """True when no word is accepted."""
        return not (self.reachable().accepting)

    def equivalent(self, other):
        """Language equality."""
        return self.difference(other).is_empty() and other.difference(self).is_empty()

    def some_word(self, max_length=None):
        """A shortest accepted word, or None when the language is empty."""
        limit = max_length if max_length is not None else len(self.states) + 1
        frontier = {self.initial: ()}
        if self.initial in self.accepting:
            return ()
        for _ in range(limit):
            next_frontier = {}
            for state, word in frontier.items():
                for symbol in self.alphabet:
                    target = self.delta[(state, symbol)]
                    if target not in next_frontier:
                        next_frontier[target] = word + (symbol,)
                        if target in self.accepting:
                            return word + (symbol,)
            frontier = next_frontier
            if not frontier:
                break
        return None
