"""Evaluation of FO queries by compilation to the algebra.

Every sub-formula evaluates to an :class:`Answers` value: a
generalized relation whose temporal columns are the formula's free
temporal variables and whose data columns are its free data variables
(in fixed order).  Connectives map to algebra operations:

* conjunction — greedy multi-way join through the shared plan layer
  (:mod:`repro.plan.joiner`): smallest conjunct first, then most
  shared columns, each pairwise join a fused hash join;
* disjunction — union after widening both sides to the common
  variable set (unconstrained temporal columns, active-domain data
  columns);
* negation — exact complement relative to ``ℤ^m × AD^l``;
* ``exists`` — projection; ``forall`` — ``¬∃¬``.

Data variables follow the usual active-domain semantics: the active
domain is the set of data constants of the database plus those of the
query.  Temporal variables genuinely range over all of ℤ — that the
complement stays finitely representable is the point of the [KSW90]
representation.
"""

from __future__ import annotations

import time

from dataclasses import dataclass

from repro.constraints.atoms import Comparison, TemporalTerm as ColumnTerm
from repro.fo.ast import (
    FoAnd,
    FoAtom,
    FoComparison,
    FoExists,
    FoForAll,
    FoNot,
    FoOr,
    free_variables,
    parse_formula,
)
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.point import Lrp
from repro.plan.joiner import NamedRelation, join_all
from repro.util import hooks
from repro.util.errors import BudgetExceededError, EvaluationError
from repro.util.sorting import typed_sort_key


@dataclass
class Answers:
    """A relation together with its column naming."""

    relation: GeneralizedRelation
    temporal_vars: tuple
    data_vars: tuple

    def is_true(self):
        """For closed formulas: non-emptiness of the 0-column relation."""
        return not self.relation.is_empty()

    def extension(self, low, high):
        """Ground answers in a window (see GeneralizedRelation.extension)."""
        return self.relation.extension(low, high)

    def rows(self, low, high):
        """Ground answers in a window as sorted dicts keyed by variable
        name — the friendliest way to consume query results.

        >>> from repro.fo import evaluate_query
        >>> from repro.gdb import parse_database
        >>> db = parse_database('relation p[1; 1] { (4n; "a") where T1 >= 0; }')
        >>> evaluate_query(db, "p(t; W) and t < 5").rows(0, 10)
        [{'t': 0, 'W': 'a'}, {'t': 4, 'W': 'a'}]
        """
        names = list(self.temporal_vars) + list(self.data_vars)
        flats = sorted(self.relation.extension(low, high), key=typed_sort_key)
        return [dict(zip(names, flat)) for flat in flats]


def evaluate_query(db, query, extra_relations=None, budget=None):
    """Evaluate an FO query (text or AST) against a generalized
    database.  ``extra_relations`` may supply additional named
    relations (e.g. an engine model's IDB).

    ``budget`` is an optional
    :class:`~repro.runtime.budget.EvaluationBudget`; its wall-clock
    deadline is checked cooperatively before every sub-formula
    evaluation, raising
    :class:`~repro.util.errors.BudgetExceededError` (FO evaluation is
    not a fixpoint, so no partial model is attached)."""
    formula = parse_formula(query) if isinstance(query, str) else query
    meter = budget.start() if budget is not None else None
    context = _Context(db, extra_relations or {}, meter=meter)
    if not hooks.SINKS:
        return context.evaluate(formula)
    started = time.perf_counter()
    hooks.emit(
        "engine.run",
        {
            "phase": "begin",
            "strategy": "fo",
            "safety": "n/a",
            "strata": 1,
            "resumed_from_round": None,
        },
    )
    outcome = "error"
    try:
        answers = context.evaluate(formula)
        outcome = "ok"
        return answers
    except BudgetExceededError:
        outcome = "budget-exceeded"
        raise
    finally:
        hooks.emit(
            "engine.run",
            {
                "phase": "end",
                "outcome": outcome,
                "duration_s": time.perf_counter() - started,
            },
        )


class _Context:
    def __init__(self, db, extra_relations, meter=None):
        self.db = db
        self.meter = meter
        self.extra = dict(extra_relations)
        domain = set()
        for name in db.names():
            relation = db.relation(name)
            for column in range(relation.data_arity):
                domain |= relation.data_values(column)
        for relation in self.extra.values():
            for column in range(relation.data_arity):
                domain |= relation.data_values(column)
        self.active_domain = sorted(domain, key=repr)

    def relation_named(self, name):
        if name in self.extra:
            return self.extra[name]
        return self.db.relation(name)

    # -- recursive evaluation ------------------------------------------------

    def evaluate(self, node):
        if self.meter is not None:
            self.meter.check_deadline("fo subformula")
        if isinstance(node, FoAtom):
            return self._atom(node)
        if isinstance(node, FoComparison):
            return self._comparison(node)
        if isinstance(node, FoAnd):
            parts = [self.evaluate(p) for p in node.parts]
            joined = join_all(
                [
                    NamedRelation(p.relation, p.temporal_vars, p.data_vars)
                    for p in parts
                ]
            )
            # The greedy join may visit conjuncts out of order; restore
            # the first-appearance column order the caller observes.
            temporal, data = [], []
            for part in parts:
                temporal += [v for v in part.temporal_vars if v not in temporal]
                data += [v for v in part.data_vars if v not in data]
            current_t = list(joined.temporal_vars)
            current_d = list(joined.data_vars)
            relation = joined.relation
            if current_t != temporal or current_d != data:
                relation = relation.project(
                    [current_t.index(v) for v in temporal],
                    [current_d.index(v) for v in data],
                )
            return Answers(relation, tuple(temporal), tuple(data))
        if isinstance(node, FoOr):
            parts = [self.evaluate(p) for p in node.parts]
            temporal, data = free_variables(node)
            widened = [self._widen(part, temporal, data) for part in parts]
            relation = widened[0].relation
            for part in widened[1:]:
                relation = relation.union(part.relation)
            return Answers(relation, temporal, data)
        if isinstance(node, FoNot):
            inner = self.evaluate(node.sub)
            domains = [self.active_domain] * len(inner.data_vars)
            complement = inner.relation.complement(data_domains=domains)
            return Answers(complement, inner.temporal_vars, inner.data_vars)
        if isinstance(node, FoExists):
            return self._exists(node.variables, self.evaluate(node.sub))
        if isinstance(node, FoForAll):
            rewritten = FoNot(FoExists(node.variables, FoNot(node.sub)))
            return self.evaluate(rewritten)
        raise TypeError("unexpected formula node %r" % (node,))

    # -- leaves ---------------------------------------------------------------

    def _atom(self, node):
        atom = node.atom
        relation = self.relation_named(atom.predicate)
        if (
            relation.temporal_arity != atom.temporal_arity
            or relation.data_arity != atom.data_arity
        ):
            raise EvaluationError(
                "atom %s does not match relation schema [%d; %d]"
                % (atom, relation.temporal_arity, relation.data_arity)
            )
        # Temporal arguments: each kept column binds its variable (after
        # compensating shifts); constants become selections.
        temporal_vars = []
        keep_temporal = []
        selections = []
        seen = {}
        for index, term in enumerate(atom.temporal_args):
            if term.var is None:
                selections.append(
                    Comparison("=", ColumnTerm(index), ColumnTerm(None, term.offset))
                )
            elif term.var in seen:
                first_index, first_offset = seen[term.var]
                # column[index] - offset = column[first] - first_offset
                selections.append(
                    Comparison(
                        "=",
                        ColumnTerm(index, -term.offset),
                        ColumnTerm(first_index, -first_offset),
                    )
                )
            else:
                seen[term.var] = (index, term.offset)
                temporal_vars.append(term.var)
                keep_temporal.append((index, term.offset))
        if selections:
            relation = relation.select(selections)
        # Data arguments.
        data_vars = []
        keep_data = []
        seen_data = {}
        for index, term in enumerate(atom.data_args):
            if term.is_variable():
                if term.name in seen_data:
                    relation = relation.select_data_equal(seen_data[term.name], index)
                else:
                    seen_data[term.name] = index
                    data_vars.append(term.name)
                    keep_data.append(index)
            else:
                relation = relation.select_data_constant(index, term.value)
        projected = relation.project([i for (i, _) in keep_temporal], keep_data)
        # Column k holds var + offset; shift back so it holds the variable.
        for position, (_, offset) in enumerate(keep_temporal):
            if offset:
                projected = projected.shift(position, -offset)
        return Answers(projected, tuple(temporal_vars), tuple(data_vars))

    def _comparison(self, node):
        atom = node.atom
        names = []
        for term in (atom.left, atom.right):
            if term.var is not None and term.var not in names:
                names.append(term.var)
        relation = GeneralizedRelation(
            len(names),
            0,
            [GeneralizedTuple(tuple(Lrp.constant_carrier() for _ in names))],
        )
        index = {name: k for k, name in enumerate(names)}

        def lower(term):
            if term.var is None:
                return ColumnTerm(None, term.offset)
            return ColumnTerm(index[term.var], term.offset)

        relation = relation.select(
            [Comparison(atom.op, lower(atom.left), lower(atom.right))]
        )
        return Answers(relation, tuple(names), ())

    # -- connectives ----------------------------------------------------------------

    def _widen(self, part, temporal, data):
        relation = part.relation
        current_t = list(part.temporal_vars)
        current_d = list(part.data_vars)
        missing_t = [name for name in temporal if name not in current_t]
        if missing_t:
            carriers = GeneralizedRelation(
                len(missing_t),
                0,
                [GeneralizedTuple(tuple(Lrp.constant_carrier() for _ in missing_t))],
            )
            relation = relation.product(carriers)
            current_t += missing_t
        missing_d = [name for name in data if name not in current_d]
        if missing_d:
            domain_rel = GeneralizedRelation(
                0,
                len(missing_d),
                [
                    GeneralizedTuple((), vector)
                    for vector in _vectors(self.active_domain, len(missing_d))
                ],
            )
            relation = relation.product(domain_rel)
            current_d += missing_d
        order_t = [current_t.index(name) for name in temporal]
        order_d = [current_d.index(name) for name in data]
        relation = relation.project(order_t, order_d)
        return Answers(relation, tuple(temporal), tuple(data))

    def _exists(self, names, inner):
        keep_t = [
            k
            for k, name in enumerate(inner.temporal_vars)
            if name not in names
        ]
        keep_d = [
            k for k, name in enumerate(inner.data_vars) if name not in names
        ]
        # Quantifying a variable that does not occur is harmless: the
        # projection below simply keeps every column.
        relation = inner.relation.project(keep_t, keep_d)
        return Answers(
            relation,
            tuple(n for n in inner.temporal_vars if n not in names),
            tuple(n for n in inner.data_vars if n not in names),
        )
