"""The first-order query language of generalized databases (Section 2.1).

[KSW90]'s query language — quoted by the paper as "a partially
interpreted first-order logic" with temporal parameters over ℤ and
uninterpreted data parameters, "equipped with negation but … no
recursion mechanism".  Queries are evaluated by compiling to the
generalized-relation algebra: conjunction is join, negation is the
exact complement (``ℤ^m`` for temporal columns, the active domain for
data columns), existential quantification is projection.

>>> from repro.fo import evaluate_query
>>> from repro.gdb import parse_database
>>> db = parse_database('''
...   relation train[2; 2] {
...     (40n+5, 40n+65; "Liege", "Brussels") where T1 >= 0 & T2 = T1 + 60;
...   }''')
>>> answers = evaluate_query(db, 'exists t2 (train(t1, t2; "Liege", C))')
>>> answers.relation.contains_point((45,), ("Brussels",))
True
"""

from repro.fo.ast import (
    FoAnd,
    FoAtom,
    FoComparison,
    FoExists,
    FoForAll,
    FoNot,
    FoOr,
    parse_formula,
)
from repro.fo.evaluator import Answers, evaluate_query

__all__ = [
    "FoAtom",
    "FoComparison",
    "FoAnd",
    "FoOr",
    "FoNot",
    "FoExists",
    "FoForAll",
    "parse_formula",
    "evaluate_query",
    "Answers",
]
