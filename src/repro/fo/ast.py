"""Formulas of the first-order query language, and their parser.

Grammar::

    formula  := quantified
    quantified := ('exists' | 'forall') var (',' var)* '(' formula ')'
                | disjunction
    disjunction := conjunction ('or' conjunction)*
    conjunction := unary ('and' unary)*
    unary    := 'not' unary | '(' formula ')' | atom | comparison

Atoms follow the deductive-language conventions: temporal arguments
first (variables with optional ``± c`` or integer constants), data
arguments after a semicolon (uppercase identifiers are variables).
Comparisons are the gap-order atoms ``t1 < t2 + 5`` etc.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import ConstraintAtom, DataTerm, PredicateAtom, TemporalTerm
from repro.util.errors import ParseError
from repro.util.lexing import Lexer, TokenKind


@dataclass(frozen=True)
class FoAtom:
    """A database atom ``p(τ…; d…)``."""

    atom: PredicateAtom

    def __str__(self):
        return str(self.atom)


@dataclass(frozen=True)
class FoComparison:
    """An interpreted comparison between temporal terms."""

    atom: ConstraintAtom

    def __str__(self):
        return str(self.atom)


@dataclass(frozen=True)
class FoAnd:
    parts: tuple

    def __str__(self):
        return "(" + " and ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class FoOr:
    parts: tuple

    def __str__(self):
        return "(" + " or ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class FoNot:
    sub: object

    def __str__(self):
        return "not %s" % self.sub


@dataclass(frozen=True)
class FoExists:
    variables: tuple  # names; temporal (lowercase) or data (uppercase)
    sub: object

    def __str__(self):
        return "exists %s (%s)" % (", ".join(self.variables), self.sub)


@dataclass(frozen=True)
class FoForAll:
    variables: tuple

    sub: object = None

    def __str__(self):
        return "forall %s (%s)" % (", ".join(self.variables), self.sub)


def is_data_name(name):
    """Uppercase (or underscore-led) identifiers are data variables."""
    return name[0].isupper() or name[0] == "_"


def free_variables(formula):
    """``(temporal_names, data_names)`` free in the formula, in first
    appearance order."""
    temporal, data = [], []

    def note(name, is_data, bound):
        if name in bound:
            return
        target = data if is_data else temporal
        if name not in target:
            target.append(name)

    def walk(node, bound):
        if isinstance(node, FoAtom):
            for term in node.atom.temporal_args:
                if term.var is not None:
                    note(term.var, False, bound)
            for term in node.atom.data_args:
                if term.is_variable():
                    note(term.name, True, bound)
        elif isinstance(node, FoComparison):
            for term in (node.atom.left, node.atom.right):
                if term.var is not None:
                    note(term.var, False, bound)
        elif isinstance(node, (FoAnd, FoOr)):
            for part in node.parts:
                walk(part, bound)
        elif isinstance(node, FoNot):
            walk(node.sub, bound)
        elif isinstance(node, (FoExists, FoForAll)):
            walk(node.sub, bound | set(node.variables))
        else:  # pragma: no cover - defensive
            raise TypeError("unexpected formula node %r" % (node,))

    walk(formula, set())
    return tuple(temporal), tuple(data)


# -- parser -------------------------------------------------------------


_COMPARISONS = {
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.EQ: "=",
    TokenKind.GE: ">=",
    TokenKind.GT: ">",
}


def _parse_temporal_term(lexer):
    token = lexer.peek()
    if token.kind is TokenKind.MINUS:
        lexer.next()
        return TemporalTerm(None, -int(lexer.expect(TokenKind.NUMBER).value))
    if token.kind is TokenKind.NUMBER:
        lexer.next()
        return TemporalTerm(None, int(token.value))
    if token.kind is TokenKind.IDENT:
        lexer.next()
        offset = 0
        if lexer.peek().kind is TokenKind.PLUS:
            lexer.next()
            offset = int(lexer.expect(TokenKind.NUMBER).value)
        elif lexer.peek().kind is TokenKind.MINUS:
            lexer.next()
            offset = -int(lexer.expect(TokenKind.NUMBER).value)
        return TemporalTerm(token.value, offset)
    raise ParseError("expected a temporal term, found %s" % token, token.line, token.column)


def _parse_data_term(lexer):
    token = lexer.next()
    if token.kind is TokenKind.STRING:
        return DataTerm.constant(token.value)
    if token.kind is TokenKind.NUMBER:
        return DataTerm.constant(int(token.value))
    if token.kind is TokenKind.MINUS:
        return DataTerm.constant(-int(lexer.expect(TokenKind.NUMBER).value))
    if token.kind is TokenKind.IDENT:
        if is_data_name(token.value):
            return DataTerm.variable(token.value)
        return DataTerm.constant(token.value)
    raise ParseError("expected a data term, found %s" % token, token.line, token.column)


def _parse_atom_or_comparison(lexer):
    token = lexer.peek()
    if token.kind is TokenKind.IDENT and token.value not in ("not", "and", "or"):
        name = lexer.next()
        if lexer.peek().kind is TokenKind.LPAREN and not is_data_name(name.value):
            lexer.next()
            temporal, data = [], []
            if lexer.peek().kind is not TokenKind.RPAREN:
                while True:
                    temporal.append(_parse_temporal_term(lexer))
                    if lexer.accept(TokenKind.COMMA):
                        continue
                    break
                if lexer.accept(TokenKind.SEMICOLON):
                    while True:
                        data.append(_parse_data_term(lexer))
                        if lexer.accept(TokenKind.COMMA):
                            continue
                        break
            lexer.expect(TokenKind.RPAREN)
            return FoAtom(PredicateAtom(name.value, tuple(temporal), tuple(data)))
        # Otherwise it is a comparison starting with a variable.
        offset = 0
        if lexer.peek().kind is TokenKind.PLUS:
            lexer.next()
            offset = int(lexer.expect(TokenKind.NUMBER).value)
        elif lexer.peek().kind is TokenKind.MINUS:
            lexer.next()
            offset = -int(lexer.expect(TokenKind.NUMBER).value)
        left = TemporalTerm(name.value, offset)
    else:
        left = _parse_temporal_term(lexer)
    op_token = lexer.next()
    op = _COMPARISONS.get(op_token.kind)
    if op is None:
        raise ParseError(
            "expected a comparison operator, found %s" % op_token,
            op_token.line,
            op_token.column,
        )
    right = _parse_temporal_term(lexer)
    return FoComparison(ConstraintAtom(op, left, right))


def _parse_unary(lexer):
    token = lexer.peek()
    if token.kind is TokenKind.IDENT and token.value == "not":
        lexer.next()
        return FoNot(_parse_unary(lexer))
    if token.kind is TokenKind.IDENT and token.value in ("exists", "forall"):
        lexer.next()
        names = [lexer.expect(TokenKind.IDENT).value]
        while lexer.accept(TokenKind.COMMA):
            names.append(lexer.expect(TokenKind.IDENT).value)
        lexer.expect(TokenKind.LPAREN)
        sub = _parse_formula(lexer)
        lexer.expect(TokenKind.RPAREN)
        node = FoExists if token.value == "exists" else FoForAll
        return node(tuple(names), sub)
    if token.kind is TokenKind.LPAREN:
        lexer.next()
        sub = _parse_formula(lexer)
        lexer.expect(TokenKind.RPAREN)
        return sub
    return _parse_atom_or_comparison(lexer)


def _parse_conjunction(lexer):
    parts = [_parse_unary(lexer)]
    while lexer.accept_keyword("and"):
        parts.append(_parse_unary(lexer))
    if len(parts) == 1:
        return parts[0]
    return FoAnd(tuple(parts))


def _parse_formula(lexer):
    parts = [_parse_conjunction(lexer)]
    while lexer.accept_keyword("or"):
        parts.append(_parse_conjunction(lexer))
    if len(parts) == 1:
        return parts[0]
    return FoOr(tuple(parts))


def parse_formula(text):
    """Parse an FO query."""
    lexer = Lexer(text)
    formula = _parse_formula(lexer)
    if not lexer.at_end():
        lexer.error("unexpected trailing input after formula")
    return formula
