"""Durable, bi-temporal EDB store over the write-ahead log.

An :class:`EdbStore` holds the full history of an extensional database
as *facts*: each assert creates a fact stamped with the transaction
that created it (``tx``); a retract never deletes — it stamps the fact
with ``retracted_by``, the retracting transaction.  The state visible
as of transaction ``N`` is exactly the facts with

    ``tx <= N  AND  (retracted_by IS NULL OR retracted_by > N)``

so every historical snapshot remains queryable forever (the
MnemonicDB/Graphiti transaction-time pattern, applied to generalized
tuples instead of ground ones).

Durability is WAL-first: a transaction is validated, appended to the
log, fsync'd, and only then applied in memory.  A fault or crash at any
point therefore leaves either a fully committed transaction or none of
it.  A write failure *poisons* the open handle (further writes raise
:class:`~repro.util.errors.WalError`) because the commit may or may not
have reached disk — reopening the store replays the log and settles the
question, which is exactly what the chaos tests do.

Round checkpoints (:meth:`EdbStore.checkpoint`) bound recovery time:
the WAL is rotated, the entire fact history is written atomically
(tmp + fsync + rename, sha256-digested) and sealed segments that the
checkpoint fully covers are pruned.  Recovery loads the newest
checkpoint, then replays only the records with ``tx`` beyond it.

Events: ``edb.txn`` per commit, ``edb.recover`` per open.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.edb.wal import Wal, _fsync_directory
from repro.gdb.database import GeneralizedDatabase
from repro.gdb.parser import parse_generalized_tuple
from repro.gdb.tuple import GeneralizedTuple
from repro.util import hooks
from repro.util.errors import (
    EdbError,
    TransactionError,
    WalCorruptError,
    WalError,
)

_CHECKPOINT_NAME = "checkpoint.json"
_CHECKPOINT_VERSION = 1


@dataclass
class Fact:
    """One asserted generalized tuple with its transaction-time stamps."""

    fact_id: int
    relation: str
    gt: GeneralizedTuple
    tx: int
    retracted_by: Optional[int] = None

    def live_at(self, tx):
        """True when the fact is visible as of transaction ``tx``."""
        return self.tx <= tx and (self.retracted_by is None or self.retracted_by > tx)


@dataclass
class TxnReceipt:
    """What one committed transaction did."""

    tx: int
    asserted: int = 0
    retracted: int = 0
    declared: int = 0
    noops: int = 0
    wal_bytes: int = 0

    def to_json_dict(self):
        return {
            "tx": self.tx,
            "asserted": self.asserted,
            "retracted": self.retracted,
            "declared": self.declared,
            "noops": self.noops,
            "wal_bytes": self.wal_bytes,
        }


def _digest(payload_text):
    return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()


class EdbStore:
    """One durable EDB directory: ``<root>/wal/`` plus an optional
    ``<root>/checkpoint.json``.

    All mutation goes through :meth:`apply`; reads
    (:meth:`snapshot`, :meth:`delta_between`, :meth:`transactions`)
    never touch disk after open.  Instances are thread-safe for the
    single-writer / many-reader pattern the service uses.
    """

    def __init__(self, root, segment_bytes=None):
        self.root = root
        self._lock = threading.RLock()
        self._poisoned = None
        self._facts = {}  # fact_id -> Fact
        self._live = {}  # relation -> {GeneralizedTuple -> fact_id}
        self._schemas = {}  # relation -> (temporal_arity, data_arity, declared_tx)
        self._txns = []  # [{"tx", "asserted", "retracted", "declared"}]
        self._head_tx = 0
        self._next_fact_id = 1
        self._checkpoint_tx = 0
        os.makedirs(root, exist_ok=True)
        self._load_checkpoint()
        kwargs = {} if segment_bytes is None else {"segment_bytes": segment_bytes}
        self.wal = Wal(os.path.join(root, "wal"), **kwargs)
        replayed = self._replay()
        if hooks.SINKS:
            hooks.emit(
                "edb.recover",
                {
                    "root": root,
                    "checkpoint_tx": self._checkpoint_tx,
                    "replayed_txns": replayed,
                    "truncated_bytes": self.wal.truncated_bytes,
                    "segments": len(self.wal.segment_indices()),
                    "head_tx": self._head_tx,
                    "facts": len(self._facts),
                },
            )

    @classmethod
    def open(cls, root, segment_bytes=None):
        """Open (creating if absent) the store at ``root``."""
        return cls(root, segment_bytes=segment_bytes)

    # -- recovery ----------------------------------------------------------

    def _checkpoint_path(self):
        return os.path.join(self.root, _CHECKPOINT_NAME)

    def _load_checkpoint(self):
        path = self._checkpoint_path()
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                wrapper = json.load(handle)
        except (OSError, ValueError) as exc:
            raise EdbError("unreadable store checkpoint %s: %s" % (path, exc)) from exc
        payload_text = wrapper.get("payload")
        if not isinstance(payload_text, str) or "digest" not in wrapper:
            raise EdbError("malformed store checkpoint %s" % path)
        if _digest(payload_text) != wrapper["digest"]:
            raise EdbError("store checkpoint digest mismatch in %s" % path)
        payload = json.loads(payload_text)
        if payload.get("version") != _CHECKPOINT_VERSION:
            raise EdbError(
                "unsupported store checkpoint version %r in %s"
                % (payload.get("version"), path)
            )
        for name, ta, da, declared_tx in payload["schemas"]:
            self._schemas[name] = (ta, da, declared_tx)
            self._live.setdefault(name, {})
        for fact_id, relation, gt_json, tx, retracted_by in payload["facts"]:
            gt = GeneralizedTuple.from_json_dict(gt_json)
            fact = Fact(fact_id, relation, gt, tx, retracted_by)
            self._facts[fact_id] = fact
            if retracted_by is None:
                self._live[relation][gt] = fact_id
        self._txns = [dict(entry) for entry in payload["txns"]]
        self._head_tx = payload["tx"]
        self._next_fact_id = payload["next_fact_id"]
        self._checkpoint_tx = payload["tx"]

    def _replay(self):
        replayed = 0
        for record in self.wal.records():
            if record.get("type") != "txn":
                raise WalCorruptError("unknown WAL record type %r" % record.get("type"))
            tx = record.get("tx")
            if not isinstance(tx, int):
                raise WalCorruptError("WAL record without a transaction id")
            if tx <= self._checkpoint_tx:
                continue  # already folded into the checkpoint
            if tx != self._head_tx + 1:
                raise WalCorruptError(
                    "transaction %d out of order after %d" % (tx, self._head_tx)
                )
            counts = {"tx": tx, "asserted": 0, "retracted": 0, "declared": 0}
            for op in record["ops"]:
                kind = op["op"]
                if kind == "declare":
                    self._apply_declare(
                        op["relation"], op["ta"], op["da"], tx
                    )
                    counts["declared"] += 1
                elif kind == "assert":
                    gt = GeneralizedTuple.from_json_dict(op["tuple"])
                    self._apply_assert(op["relation"], gt, tx)
                    counts["asserted"] += 1
                elif kind == "retract":
                    self._apply_retract(op["fact"], tx)
                    counts["retracted"] += 1
                else:
                    raise WalCorruptError("unknown WAL op %r" % kind)
            self._head_tx = tx
            self._txns.append(counts)
            replayed += 1
        return replayed

    # -- in-memory mutation primitives ------------------------------------

    def _apply_declare(self, name, ta, da, tx):
        self._schemas[name] = (ta, da, tx)
        self._live.setdefault(name, {})

    def _apply_assert(self, relation, gt, tx):
        fact = Fact(self._next_fact_id, relation, gt, tx)
        self._next_fact_id += 1
        self._facts[fact.fact_id] = fact
        self._live[relation][gt] = fact.fact_id

    def _apply_retract(self, fact_id, tx):
        fact = self._facts.get(fact_id)
        if fact is None or fact.retracted_by is not None:
            raise WalCorruptError("retract of unknown or dead fact %r" % fact_id)
        fact.retracted_by = tx
        del self._live[fact.relation][fact.gt]

    # -- writing -----------------------------------------------------------

    def _check_writable(self):
        if self._poisoned is not None:
            raise WalError(
                "store write path is poisoned by an earlier failure (%s); "
                "reopen the store to recover" % self._poisoned
            )

    def apply(self, ops):
        """Atomically commit one transaction of declare/assert/retract
        ops.

        ``ops`` is a list of dicts: ``{"op": "declare", "relation": r,
        "temporal_arity": t, "data_arity": d}``, ``{"op": "assert",
        "relation": r, "tuple": GeneralizedTuple}``, ``{"op":
        "retract", "relation": r, "tuple": GeneralizedTuple}``.  The
        whole batch is validated first — any problem raises
        :class:`~repro.util.errors.TransactionError` with the store
        untouched.  Idempotent ops (re-declare, re-assert of a live
        tuple) are skipped; a transaction whose every op is skipped
        commits nothing and returns a receipt with ``tx`` unchanged.
        """
        with self._lock:
            self._check_writable()
            tx = self._head_tx + 1
            wal_ops, effects, receipt = self._validate(ops, tx)
            if not wal_ops:
                return receipt
            record = {"type": "txn", "tx": tx, "ops": wal_ops}
            started = time.monotonic()
            try:
                receipt.wal_bytes = self.wal.append(record)
                self.wal.sync()
            except BaseException as exc:
                self._poisoned = "%s: %s" % (type(exc).__name__, exc)
                raise
            for effect in effects:
                if effect[0] == "declare":
                    self._apply_declare(effect[1], effect[2], effect[3], tx)
                elif effect[0] == "assert":
                    self._apply_assert(effect[1], effect[2], tx)
                else:
                    self._apply_retract(effect[1], tx)
            self._head_tx = tx
            self._txns.append(
                {
                    "tx": tx,
                    "asserted": receipt.asserted,
                    "retracted": receipt.retracted,
                    "declared": receipt.declared,
                }
            )
            if hooks.SINKS:
                hooks.emit(
                    "edb.txn",
                    {
                        "root": self.root,
                        "tx": tx,
                        "asserted": receipt.asserted,
                        "retracted": receipt.retracted,
                        "declared": receipt.declared,
                        "noops": receipt.noops,
                        "wal_bytes": receipt.wal_bytes,
                        "duration_seconds": time.monotonic() - started,
                    },
                )
            return receipt

    def _validate(self, ops, tx):
        """Resolve ``ops`` against current state without mutating it.

        Returns ``(wal_ops, effects, receipt)``: the JSON-framable op
        list for the WAL record, the parallel in-memory effect tuples
        (keeping the parsed :class:`GeneralizedTuple` handles out of
        the framed record), and the receipt.
        """
        receipt = TxnReceipt(tx=self._head_tx)
        wal_ops = []
        effects = []
        staged_schemas = {}
        staged_live = {}  # relation -> set of tuples asserted this txn
        staged_dead = set()  # fact_ids retracted this txn
        for position, op in enumerate(ops):
            if not isinstance(op, dict) or "op" not in op:
                raise TransactionError("op %d is not an op object" % position)
            kind = op["op"]
            if kind == "declare":
                name = op.get("relation")
                ta, da = op.get("temporal_arity"), op.get("data_arity")
                if not isinstance(name, str) or not isinstance(ta, int) or not isinstance(da, int):
                    raise TransactionError("op %d: malformed declare" % position)
                known = staged_schemas.get(name) or self._schemas.get(name)
                if known is not None:
                    if (known[0], known[1]) != (ta, da):
                        raise TransactionError(
                            "op %d: relation %r already declared with arity "
                            "[%d; %d]" % (position, name, known[0], known[1])
                        )
                    receipt.noops += 1
                    continue
                staged_schemas[name] = (ta, da, tx)
                wal_ops.append({"op": "declare", "relation": name, "ta": ta, "da": da})
                effects.append(("declare", name, ta, da))
                receipt.declared += 1
            elif kind in ("assert", "retract"):
                name = op.get("relation")
                gt = op.get("tuple")
                schema = staged_schemas.get(name) or self._schemas.get(name)
                if schema is None:
                    raise TransactionError(
                        "op %d: relation %r is not declared" % (position, name)
                    )
                if not isinstance(gt, GeneralizedTuple):
                    raise TransactionError(
                        "op %d: 'tuple' must be a GeneralizedTuple" % position
                    )
                if gt.temporal_arity != schema[0] or len(gt.data) != schema[1]:
                    raise TransactionError(
                        "op %d: tuple arity does not match %r[%d; %d]"
                        % (position, name, schema[0], schema[1])
                    )
                live_id = self._live.get(name, {}).get(gt)
                if live_id in staged_dead:
                    live_id = None
                staged = staged_live.setdefault(name, set())
                if kind == "assert":
                    if live_id is not None or gt in staged:
                        receipt.noops += 1
                        continue
                    staged.add(gt)
                    wal_ops.append(
                        {"op": "assert", "relation": name, "tuple": gt.to_json_dict()}
                    )
                    effects.append(("assert", name, gt))
                    receipt.asserted += 1
                else:
                    if live_id is None:
                        if gt in staged:
                            raise TransactionError(
                                "op %d: retract of a tuple asserted in the "
                                "same transaction" % position
                            )
                        raise TransactionError(
                            "op %d: no live fact in %r matches the tuple"
                            % (position, name)
                        )
                    staged_dead.add(live_id)
                    wal_ops.append({"op": "retract", "fact": live_id})
                    effects.append(("retract", live_id))
                    receipt.retracted += 1
            else:
                raise TransactionError("op %d: unknown op %r" % (position, kind))
        if wal_ops:
            receipt.tx = tx
        return wal_ops, effects, receipt

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self):
        """Seal the current WAL segment, snapshot the full fact history
        atomically, and prune segments the snapshot covers.  Returns
        the checkpoint path."""
        with self._lock:
            self._check_writable()
            try:
                keep_from = self.wal.rotate()
            except BaseException as exc:
                self._poisoned = "%s: %s" % (type(exc).__name__, exc)
                raise
            payload = {
                "version": _CHECKPOINT_VERSION,
                "tx": self._head_tx,
                "next_fact_id": self._next_fact_id,
                "schemas": [
                    [name, ta, da, declared_tx]
                    for name, (ta, da, declared_tx) in sorted(self._schemas.items())
                ],
                "facts": [
                    [f.fact_id, f.relation, f.gt.to_json_dict(), f.tx, f.retracted_by]
                    for f in (
                        self._facts[fid] for fid in sorted(self._facts)
                    )
                ],
                "txns": self._txns,
            }
            payload_text = json.dumps(payload, separators=(",", ":"), sort_keys=True)
            wrapper = {"digest": _digest(payload_text), "payload": payload_text}
            path = self._checkpoint_path()
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(wrapper, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_directory(self.root)
            self._checkpoint_tx = self._head_tx
            self.wal.drop_segments_before(keep_from)
            return path

    def close(self):
        """Seal the WAL; the instance stays readable."""
        with self._lock:
            if self._poisoned is None:
                self.wal.close()

    # -- reading -----------------------------------------------------------

    @property
    def head_tx(self):
        """The newest committed transaction id (0 for an empty store)."""
        return self._head_tx

    def transactions(self):
        """Per-transaction op counts, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._txns]

    def snapshot(self, tx=None):
        """The :class:`GeneralizedDatabase` visible as of ``tx``
        (default: head).  Relations declared after ``tx`` are absent."""
        with self._lock:
            if tx is None:
                tx = self._head_tx
            db = GeneralizedDatabase()
            for name, (ta, da, declared_tx) in sorted(self._schemas.items()):
                if declared_tx <= tx:
                    db.declare(name, ta, da)
            for fact in self._facts.values():
                if fact.live_at(tx):
                    db.add_tuple(fact.relation, fact.gt)
            return db

    def delta_between(self, tx0, tx1):
        """Net change from the state as of ``tx0`` to the state as of
        ``tx1`` (``tx0 <= tx1``): ``(inserts, retracts, declares)``
        where inserts/retracts map relation name to tuple lists and
        ``declares`` is True when a schema changed in the window.
        Facts both born and retracted inside the window cancel out."""
        with self._lock:
            if tx0 > tx1:
                raise EdbError("delta_between(%d, %d): window is reversed" % (tx0, tx1))
            inserts = {}
            retracts = {}
            declares = any(
                tx0 < declared_tx <= tx1 for _, _, declared_tx in self._schemas.values()
            )
            for fact in self._facts.values():
                if tx0 < fact.tx <= tx1 and fact.live_at(tx1):
                    inserts.setdefault(fact.relation, []).append(fact.gt)
                elif (
                    fact.tx <= tx0
                    and fact.retracted_by is not None
                    and tx0 < fact.retracted_by <= tx1
                ):
                    retracts.setdefault(fact.relation, []).append(fact.gt)
            return inserts, retracts, declares

    def schema(self, name):
        """``(temporal_arity, data_arity)`` of a declared relation."""
        entry = self._schemas.get(name)
        if entry is None:
            raise EdbError("relation %r is not declared" % name)
        return entry[0], entry[1]


def ops_from_json(store, payload):
    """Normalize a JSON ops batch (the CLI / service wire form) into
    the op dicts :meth:`EdbStore.apply` takes.

    Tuples are written in the surface syntax, e.g. ``{"op": "assert",
    "relation": "course", "tuple": "(168n+8, 168n+10; \\"db\\")"}``;
    arities come from the store schema or from a declare earlier in the
    same batch.
    """
    if isinstance(payload, dict):
        payload = payload.get("ops", [])
    if not isinstance(payload, list):
        raise TransactionError("ops payload must be a list (or {'ops': [...]})")
    staged = {}
    ops = []
    for position, op in enumerate(payload):
        if not isinstance(op, dict) or "op" not in op:
            raise TransactionError("op %d is not an op object" % position)
        if op["op"] == "declare":
            ta, da = op.get("temporal_arity"), op.get("data_arity")
            if isinstance(ta, int) and isinstance(da, int):
                staged[op.get("relation")] = (ta, da)
            ops.append(dict(op))
            continue
        if op["op"] not in ("assert", "retract"):
            raise TransactionError("op %d: unknown op %r" % (position, op["op"]))
        name = op.get("relation")
        arity = staged.get(name)
        if arity is None:
            try:
                arity = store.schema(name)
            except EdbError as exc:
                raise TransactionError("op %d: %s" % (position, exc)) from exc
        text = op.get("tuple")
        if not isinstance(text, str):
            raise TransactionError("op %d: 'tuple' must be tuple text" % position)
        gt = parse_generalized_tuple(text, arity[0], arity[1])
        ops.append({"op": op["op"], "relation": name, "tuple": gt})
    return ops
