"""Append-only write-ahead log with CRC-framed records.

The durable EDB (:mod:`repro.edb.store`) writes every committed
transaction here *before* applying it in memory, so a crash at any
instant loses at most the transaction being written — never a committed
one, and never the store's integrity.

Format
------
The log is a directory of segment files named ``wal-%08d.seg``.  A
segment is a concatenation of records; each record is::

    <length: uint32 LE> <crc32: uint32 LE> <payload: length bytes>

where ``payload`` is compact UTF-8 JSON and ``crc32`` is
``zlib.crc32(payload)``.  Writers append frames and ``fsync`` on
commit; nothing is ever rewritten in place.

Recovery invariants
-------------------
On open the segments are scanned in name order:

* every segment but the last must parse cleanly to exact end-of-file —
  anything else is damage a crash cannot explain and raises
  :class:`~repro.util.errors.WalCorruptError` (the store refuses to
  open rather than silently drop committed records);
* the *last* segment may end in a torn write: an incomplete frame at
  end-of-file, or a final frame whose CRC fails.  The tail is truncated
  back to the last valid record boundary (the classic ARIES-style torn
  tail rule) and the byte count is reported so the store can surface it
  in its ``edb.recover`` event;
* a CRC failure *followed by more bytes* in the last segment is again
  :class:`~repro.util.errors.WalCorruptError` — a torn write can only
  damage the tail.

Fault sites (:mod:`repro.runtime.faults`): ``wal_append`` before a
frame reaches the file, ``wal_fsync`` before durability, ``wal_rotate``
between sealing a segment and creating the next.  Each site is placed
so an injected fault loses whole records only, which is exactly what
the chaos tests assert.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.util import hooks
from repro.util.errors import WalCorruptError, WalError

_HEADER = struct.Struct("<II")

#: Default segment-size threshold (bytes) past which ``append``
#: rotates to a fresh segment before writing.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_FORMAT = "wal-%08d.seg"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def _segment_index(name):
    """The integer index of a segment file name, or None."""
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    body = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    if not body.isdigit():
        return None
    return int(body)


def _fsync_directory(path):
    """Best-effort fsync of a directory (durability of renames and
    creates on POSIX; harmless no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _scan_segment(path, allow_torn_tail):
    """Parse one segment; return ``(records, truncate_at)``.

    ``truncate_at`` is None when the segment is clean, else the byte
    offset the torn tail should be cut back to (only ever non-None when
    ``allow_torn_tail``).  Raises :class:`WalCorruptError` for damage
    that is not a torn tail.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    records = []
    offset = 0
    total = len(blob)
    while offset < total:
        if offset + _HEADER.size > total:
            if allow_torn_tail:
                return records, offset
            raise WalCorruptError(
                "truncated record header in sealed segment", path=path, offset=offset
            )
        length, crc = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            if allow_torn_tail:
                return records, offset
            raise WalCorruptError(
                "truncated record payload in sealed segment", path=path, offset=offset
            )
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            if allow_torn_tail and end == total:
                # A final frame with a bad checksum is a torn write.
                return records, offset
            raise WalCorruptError("record checksum mismatch", path=path, offset=offset)
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            # The CRC matched, so these bytes were written intact:
            # undecodable JSON is writer corruption, never a torn tail.
            raise WalCorruptError(
                "record payload is not valid JSON: %s" % exc, path=path, offset=offset
            ) from exc
        records.append(record)
        offset = end
    return records, None


class Wal:
    """One write-ahead log directory, opened for appending.

    Opening performs recovery (torn-tail truncation) and leaves the
    instance positioned to append to the newest segment; the scan's
    findings are exposed as :attr:`recovered_records` /
    :attr:`truncated_bytes` for the store's ``edb.recover`` event.
    """

    def __init__(self, root, segment_bytes=DEFAULT_SEGMENT_BYTES):
        self.root = root
        self.segment_bytes = segment_bytes
        os.makedirs(root, exist_ok=True)
        self.recovered_records = 0
        self.truncated_bytes = 0
        indices = self.segment_indices()
        if not indices:
            self._tail_index = 1
            self._handle = None
            self._create_tail()
            return
        for index in indices[:-1]:
            records, _ = _scan_segment(self._segment_path(index), False)
            self.recovered_records += len(records)
        tail = indices[-1]
        tail_path = self._segment_path(tail)
        records, truncate_at = _scan_segment(tail_path, True)
        self.recovered_records += len(records)
        if truncate_at is not None:
            size = os.path.getsize(tail_path)
            self.truncated_bytes = size - truncate_at
            with open(tail_path, "r+b") as handle:
                handle.truncate(truncate_at)
                handle.flush()
                os.fsync(handle.fileno())
        self._tail_index = tail
        self._handle = open(tail_path, "ab", buffering=0)

    # -- segment bookkeeping ----------------------------------------------

    def _segment_path(self, index):
        return os.path.join(self.root, _SEGMENT_FORMAT % index)

    def segment_indices(self):
        """Sorted indices of the segment files currently on disk."""
        found = []
        for name in os.listdir(self.root):
            index = _segment_index(name)
            if index is not None:
                found.append(index)
        return sorted(found)

    def _create_tail(self):
        path = self._segment_path(self._tail_index)
        # Unbuffered: a frame reaches the OS at write time, so an
        # abandoned handle (crash simulation, or a poisoned store that
        # is later garbage-collected) can never flush stale buffered
        # bytes behind a reopened log's back.
        self._handle = open(path, "ab", buffering=0)
        _fsync_directory(self.root)

    @property
    def tail_index(self):
        """Index of the segment new records are appended to."""
        return self._tail_index

    # -- writing -----------------------------------------------------------

    def append(self, record):
        """Frame ``record`` (a JSON-serializable dict) and append it.

        Not durable until :meth:`sync` returns.  Rotates first when the
        tail segment has outgrown ``segment_bytes``.
        """
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if self._handle.tell() >= self.segment_bytes:
            self.rotate()
        hooks.fault_point("wal_append")
        self._handle.write(frame)
        return len(frame)

    def sync(self):
        """Make every appended record durable (flush + fsync)."""
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        hooks.fault_point("wal_fsync")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def rotate(self):
        """Seal the tail segment and start appending to a fresh one.

        The old segment is fsync'd before the new one exists, so a
        crash between the two steps loses no records — recovery simply
        finds one fewer (or one empty) segment.
        """
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        hooks.fault_point("wal_rotate")
        self._tail_index += 1
        self._create_tail()
        return self._tail_index

    def close(self):
        """Seal the log; further appends raise :class:`WalError`."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    # -- reading -----------------------------------------------------------

    def records(self):
        """Yield every record across all segments in log order.

        Assumes open-time recovery already ran (it did — in
        ``__init__``); damage found now still raises
        :class:`WalCorruptError` rather than yielding garbage.
        """
        if self._handle is not None:
            self._handle.flush()
        indices = self.segment_indices()
        for position, index in enumerate(indices):
            allow_torn = position == len(indices) - 1
            records, truncate_at = _scan_segment(self._segment_path(index), allow_torn)
            for record in records:
                yield record
            if truncate_at is not None:
                raise WalCorruptError(
                    "torn tail reappeared after recovery",
                    path=self._segment_path(index),
                    offset=truncate_at,
                )

    def drop_segments_before(self, index):
        """Delete sealed segments with indices strictly below ``index``
        (checkpoint pruning).  The tail segment is never dropped."""
        removed = []
        for found in self.segment_indices():
            if found < index and found != self._tail_index:
                os.unlink(self._segment_path(found))
                removed.append(found)
        if removed:
            _fsync_directory(self.root)
        return removed
