"""Incremental maintenance of a materialized T_GP model over an EdbStore.

A :class:`MaterializedModel` keeps one program's least fixpoint live as
the store's EDB changes, instead of rematerializing the (finitely
represented, infinite) model from scratch per transaction:

* **insert-only batches** warm-start the semi-naive fixpoint: the new
  EDB tuples become the first round's delta, fired at every body
  position — including extensional ones, which regular runs never seed
  (:meth:`~repro.core.engine.DeductiveEngine.maintain`);
* **batches with retractions** run DRed-style overdelete/rederive:
  clauses fire with the retracted tuples as deltas against the
  *pre-retraction* state to over-approximate the derived tuples that
  may have depended on them, those are removed, and the surviving
  (sound, possibly incomplete) state is re-grown with one naive round
  plus semi-naive rounds to the fixpoint;
* anything the incremental path cannot handle soundly or cheaply —
  negation, multiple strata, a schema change, or an overdeletion
  larger than ``rederive_budget`` — **degrades to a from-scratch
  recompute**, recorded in the model's stats as ``maintain_degraded``
  (the same rung pattern as ``shard_degraded``) rather than failing.

Every successful delta application emits one ``maintain.delta`` event
and leaves :attr:`MaterializedModel.last_report` describing what
happened.  The ``maintain_delta`` fault site fires before the model is
touched, so an injected fault (or crash) leaves the previous
materialization — and the store — fully intact.

The module also hosts :class:`MaintainerCache`, the process-level
registry the service layer uses: maintained models are cached per
(store root, program) and invalidated by transaction id, so a ``tx``
committed through any handle makes every cached reader refresh before
answering.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.engine import DeductiveEngine
from repro.core.parser import parse_program
from repro.gdb.relation import GeneralizedRelation
from repro.util import hooks
from repro.util.errors import EvaluationError, PartialResultError
from repro.util.hooks import fault_point


@dataclass
class MaintainReport:
    """What one :meth:`MaterializedModel.refresh` actually did."""

    tx: int
    from_tx: Optional[int] = None
    inserted: int = 0
    retracted: int = 0
    overdeleted: int = 0
    rounds: int = 0
    recomputed: bool = False
    reason: Optional[str] = None
    duration_seconds: float = 0.0

    def to_json_dict(self):
        return {
            "tx": self.tx,
            "from_tx": self.from_tx,
            "inserted": self.inserted,
            "retracted": self.retracted,
            "overdeleted": self.overdeleted,
            "rounds": self.rounds,
            "recomputed": self.recomputed,
            "reason": self.reason,
            "duration_seconds": self.duration_seconds,
        }


class MaterializedModel:
    """One program's model, maintained across store transactions.

    The instance is a pure in-memory cache over the durable store: it
    holds the last materialized :class:`~repro.core.engine.Model` and
    the transaction id it reflects.  :meth:`refresh` brings it to the
    store's head (or any requested ``tx``) by the cheapest sound path.
    Engines are rebuilt per refresh (plan compilation is cheap relative
    to a fixpoint; schemas may have changed between refreshes).
    """

    def __init__(
        self,
        program_text,
        strategy="semi-naive",
        safety="paper",
        evaluation="compiled",
        rederive_budget=64,
        max_rounds=500,
        patience=10,
    ):
        self.program_text = program_text
        self.program = parse_program(program_text)
        self.strategy = strategy
        self.safety = safety
        self.evaluation = evaluation
        self.rederive_budget = rederive_budget
        self.max_rounds = max_rounds
        self.patience = patience
        self.model = None
        self.tx = None
        self.last_report = None
        self._lock = threading.RLock()

    # -- engines -----------------------------------------------------------

    def _engine(self, edb):
        return DeductiveEngine(
            self.program,
            edb,
            strategy=self.strategy,
            safety=self.safety,
            evaluation=self.evaluation,
            max_rounds=self.max_rounds,
            patience=self.patience,
        )

    # -- refresh -----------------------------------------------------------

    def refresh(self, store, tx=None, budget=None):
        """Bring the materialization to ``tx`` (default: the store
        head) and return the model.  No-op when already there."""
        with self._lock:
            target = store.head_tx if tx is None else tx
            if self.model is not None and self.tx == target:
                return self.model
            if self.model is None or self.tx is None or target < self.tx:
                # Nothing to maintain from (or time went backwards —
                # an as-of request older than the materialization).
                reason = None if self.model is None else "as-of-before-model"
                return self._recompute(store, target, reason, budget)
            inserts, retracts, declares = store.delta_between(self.tx, target)
            return self._apply_delta(
                store, target, inserts, retracts, declares, budget
            )

    def _finish(self, model, report, degraded=False):
        report.duration_seconds = time.monotonic() - self._started
        if degraded:
            model.stats.maintain_degraded = {
                "reason": report.reason,
                "inserted": report.inserted,
                "retracted": report.retracted,
                "overdeleted": report.overdeleted,
            }
        self.model = model
        self.tx = report.tx
        self.last_report = report
        if hooks.SINKS:
            hooks.emit("maintain.delta", report.to_json_dict())
        return model

    def _recompute(self, store, target, reason, budget, report=None):
        if report is None:
            self._started = time.monotonic()
            report = MaintainReport(tx=target, from_tx=self.tx)
        report.recomputed = True
        report.reason = reason
        engine = self._engine(store.snapshot(target))
        model = engine.run(budget=budget)
        report.rounds = model.stats.rounds
        # A first materialization is not a degradation — only a fallback
        # from the incremental path is.
        return self._finish(model, report, degraded=reason is not None)

    def _apply_delta(self, store, target, inserts, retracts, declares, budget):
        fault_point("maintain_delta")
        self._started = time.monotonic()
        report = MaintainReport(
            tx=target,
            from_tx=self.tx,
            inserted=sum(len(ts) for ts in inserts.values()),
            retracted=sum(len(ts) for ts in retracts.values()),
        )
        if declares:
            return self._recompute(store, target, "schema-change", budget, report)
        if not inserts and not retracts:
            # Transactions whose net effect cancelled out.
            report.rounds = 0
            return self._finish(self.model, report)
        engine = self._engine(store.snapshot(target))
        relations = {
            name: self.model.relation(name) for name in self.model.predicates()
        }
        if retracts:
            survived = self._overdelete(engine, relations, retracts, report)
            if survived is None:
                return self._recompute(
                    store, target, "rederive-budget", budget, report
                )
            relations = survived
            delta = None  # naive rederivation restart
        else:
            delta = inserts
        try:
            model = engine.maintain(relations, delta=delta, budget=budget)
        except PartialResultError:
            # Give-up / budget / abort: a recompute would fare no
            # better — surface the typed error with its partial model.
            raise
        except EvaluationError:
            # Negation / multi-stratum: the warm path is unsound here;
            # recompute instead.
            return self._recompute(store, target, "not-maintainable", budget, report)
        report.rounds = model.stats.rounds
        return self._finish(model, report)

    # -- DRed overdeletion -------------------------------------------------

    def _overdelete(self, engine, relations, retracts, report):
        """Remove from ``relations`` every derived tuple that may
        depend on a retracted EDB tuple; return the surviving state, or
        None when the overdeletion outgrew ``rederive_budget``.

        Fires clause deltas against the *pre-retraction* environment
        (old EDB tuples are still present there), so every historical
        derivation that consumed a retracted tuple re-fires and its
        head lands in the affected set — removal by non-empty
        intersection with that set is therefore a sound
        over-approximation of the tuples that lost support.
        """
        evaluator = engine.evaluator
        schemas = evaluator.schemas
        env_old = evaluator.initial_environment()
        for name, tuples in retracts.items():
            # initial_environment reflects the post-retraction EDB;
            # put the retracted tuples back for the overdelete rounds.
            env_old[name] = env_old[name].with_tuples(tuples)
        surviving = dict(relations)
        for name in surviving:
            env_old[name] = surviving[name]
        delta = {name: list(tuples) for name, tuples in retracts.items()}
        overdeleted = 0
        while delta:
            affected = evaluator.maintenance_round(env_old, delta)
            delta = {}
            for predicate, heads in affected.items():
                if predicate not in surviving:
                    continue
                schema = schemas[predicate]
                affected_rel = GeneralizedRelation(schema[0], schema[1], heads)
                kept, removed = [], []
                for gt in surviving[predicate].tuples:
                    one = GeneralizedRelation(schema[0], schema[1], [gt])
                    if one.intersect(affected_rel).tuples:
                        removed.append(gt)
                    else:
                        kept.append(gt)
                if not removed:
                    continue
                overdeleted += len(removed)
                if overdeleted > self.rederive_budget:
                    report.overdeleted = overdeleted
                    return None
                surviving[predicate] = GeneralizedRelation(
                    schema[0], schema[1], kept
                )
                delta[predicate] = removed
        report.overdeleted = overdeleted
        return surviving


class MaintainerCache:
    """Process-level registry of maintained models for the service.

    Keyed by ``(store_root, program text, strategy, safety,
    evaluation)`` so concurrent maintenance jobs for the same program
    share one materialization; the per-model lock in
    :class:`MaterializedModel` serializes refreshes.  ``invalidate``
    drops entries for a store root (e.g. after an out-of-band rewrite
    of the directory); ordinary commits need no invalidation call —
    refresh compares transaction ids and catches up by itself.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def get(self, root, program_text, **kwargs):
        key = (
            root,
            program_text,
            kwargs.get("strategy", "semi-naive"),
            kwargs.get("safety", "paper"),
            kwargs.get("evaluation", "compiled"),
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = MaterializedModel(program_text, **kwargs)
                self._entries[key] = entry
            return entry

    def invalidate(self, root=None):
        with self._lock:
            if root is None:
                self._entries.clear()
                return
            for key in [k for k in self._entries if k[0] == root]:
                del self._entries[key]

    def __len__(self):
        with self._lock:
            return len(self._entries)


#: The shared cache the service executor uses.
MAINTAINERS = MaintainerCache()
