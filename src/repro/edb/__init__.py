"""Durable, crash-safe EDB with incremental model maintenance.

Layers, bottom up:

* :mod:`repro.edb.wal` — append-only CRC-framed write-ahead log
  segments with torn-tail recovery;
* :mod:`repro.edb.store` — :class:`EdbStore`, the bi-temporal fact
  store (``tx`` / ``retracted_by``) committing WAL-first, with round
  checkpoints and as-of snapshots;
* :mod:`repro.edb.maintain` — :class:`MaterializedModel`, keeping a
  program's T_GP fixpoint live under inserts (warm semi-naive
  propagation) and retractions (DRed overdelete/rederive), degrading
  to a from-scratch recompute when the incremental path is unsound or
  over budget.
"""

from repro.edb.maintain import (
    MAINTAINERS,
    MaintainerCache,
    MaintainReport,
    MaterializedModel,
)
from repro.edb.store import EdbStore, Fact, TxnReceipt, ops_from_json
from repro.edb.wal import Wal

__all__ = [
    "EdbStore",
    "Fact",
    "TxnReceipt",
    "ops_from_json",
    "Wal",
    "MaterializedModel",
    "MaintainReport",
    "MaintainerCache",
    "MAINTAINERS",
]
