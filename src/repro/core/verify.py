"""Independent verification of computed models.

A closed form produced by the engine can be *checked* without trusting
the engine, using the two halves of the fixpoint characterization:

* **Stability** (the Theorem 4.3 direction): applying one more T_GP
  round to the model must derive only covered tuples — the model is a
  pre-fixpoint.
* **Support** (minimality direction, checked on a window): every
  ground atom of the model inside a window must also be derived by the
  ground tuple-at-a-time oracle on a sufficiently larger window, and
  vice versa on the interior.

Together these make a strong certificate for a reproduction: the
closed form is a fixpoint and agrees with the reference semantics
wherever brute force can reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluation import ProgramEvaluator
from repro.core.grounding import GroundEvaluator
from repro.core.safety import coverage_test


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_model`."""

    stable: bool = True
    window_sound: bool = True
    window_complete: bool = True
    uncovered_tuples: list = field(default_factory=list)
    unsupported_atoms: list = field(default_factory=list)
    missing_atoms: list = field(default_factory=list)

    def ok(self):
        """True when every check passed."""
        return self.stable and self.window_sound and self.window_complete

    def __str__(self):
        if self.ok():
            return "model verified: stable fixpoint, window-exact"
        problems = []
        if not self.stable:
            problems.append(
                "%d derived tuples not covered" % len(self.uncovered_tuples)
            )
        if not self.window_sound:
            problems.append(
                "%d atoms lack ground support" % len(self.unsupported_atoms)
            )
        if not self.window_complete:
            problems.append(
                "%d ground atoms missing from the model"
                % len(self.missing_atoms)
            )
        return "model verification FAILED: " + "; ".join(problems)


def verify_model(program, edb, model, window=(0, 200), margin=None, safety="paper"):
    """Check a model independently of how it was computed.

    ``window`` is the interior on which ground agreement is required;
    the oracle runs on the window widened by ``margin`` on both sides
    (default: the window length) so truncation cannot cause false
    alarms.  Returns a :class:`VerificationReport`.
    """
    low, high = window
    if margin is None:
        margin = high - low
    report = VerificationReport()
    covered = coverage_test(safety)

    # -- stability: one more T_GP round derives nothing new ------------
    evaluator = ProgramEvaluator(program, edb)
    env = evaluator.initial_environment()
    for name in model.predicates():
        env[name] = model.relation(name)
    for evaluators in evaluator.stratum_evaluators:
        complements = evaluator.complements_for(evaluators, env)
        derived = evaluator.naive_round(
            env, evaluators=evaluators, complements=complements
        )
        for predicate, tuples in derived.items():
            for gt in tuples:
                if not covered(gt, env[predicate]):
                    report.stable = False
                    report.uncovered_tuples.append((predicate, gt))

    # -- window agreement with the ground oracle -----------------------
    try:
        oracle = GroundEvaluator(program, edb, low - margin, high + margin)
    except Exception:
        # Programs outside the ground evaluator's fragment (negation,
        # unbound head variables) only get the stability check.
        return report
    oracle.run()
    for predicate in model.predicates():
        closed = {
            flat
            for flat in model.extension(predicate, low - margin, high + margin)
            if low <= flat[0] < high
        }
        ground = {
            flat
            for flat in oracle.extension(predicate)
            if low <= flat[0] < high
        }
        for flat in sorted(closed - ground, key=repr):
            report.window_sound = False
            report.unsupported_atoms.append((predicate, flat))
        for flat in sorted(ground - closed, key=repr):
            report.window_complete = False
            report.missing_atoms.append((predicate, flat))
    return report
