"""Abstract syntax of the deductive language (paper Section 4.1).

Terms
-----
* A *temporal term* is a temporal variable, the constant 0 (or, by
  iterating ``+1``/``-1``, any integer constant), or ``v ± c`` — the
  successor/predecessor functions applied ``c`` times to a variable.
* A *data term* is an uninterpreted constant or a data variable.

Atoms
-----
* predicate atoms ``p(τ_1, …, τ_m; d_1, …, d_l)`` — intensional or
  extensional depending on whether ``p`` occurs in some clause head;
* constraint atoms ``τ_1 op τ_2`` with op in ``<, <=, =, >=, >``.

A clause is ``head <- body`` with an intensional head; a program is a
finite set of clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SchemaError


@dataclass(frozen=True)
class TemporalTerm:
    """``var + offset`` (``var`` is a variable name) or, with
    ``var=None``, the integer constant ``offset``."""

    var: str | None
    offset: int = 0

    def is_constant(self):
        """True for ground temporal terms (integer constants)."""
        return self.var is None

    def shifted(self, delta):
        """The term denoting this value plus ``delta``."""
        return TemporalTerm(self.var, self.offset + delta)

    def __str__(self):
        if self.var is None:
            return str(self.offset)
        if self.offset == 0:
            return self.var
        if self.offset > 0:
            return "%s+%d" % (self.var, self.offset)
        return "%s-%d" % (self.var, -self.offset)


@dataclass(frozen=True)
class DataTerm:
    """A data variable (``name`` set) or an uninterpreted constant
    (``value`` set).  Exactly one of the two is set."""

    name: str | None = None
    value: object = None

    def is_variable(self):
        """True for data variables."""
        return self.name is not None

    @classmethod
    def variable(cls, name):
        """A data variable."""
        return cls(name=name)

    @classmethod
    def constant(cls, value):
        """An uninterpreted data constant."""
        return cls(value=value)

    def __str__(self):
        if self.is_variable():
            return self.name
        if isinstance(self.value, str):
            return '"%s"' % self.value
        return str(self.value)


@dataclass(frozen=True)
class PredicateAtom:
    """``p(τ_1, …, τ_m; d_1, …, d_l)``."""

    predicate: str
    temporal_args: tuple
    data_args: tuple = ()

    @property
    def temporal_arity(self):
        return len(self.temporal_args)

    @property
    def data_arity(self):
        return len(self.data_args)

    def temporal_variables(self):
        """Names of the temporal variables occurring in the atom."""
        return {t.var for t in self.temporal_args if t.var is not None}

    def data_variables(self):
        """Names of the data variables occurring in the atom."""
        return {d.name for d in self.data_args if d.is_variable()}

    def __str__(self):
        temporal = ", ".join(str(t) for t in self.temporal_args)
        if self.data_args:
            data = ", ".join(str(d) for d in self.data_args)
            return "%s(%s; %s)" % (self.predicate, temporal, data)
        return "%s(%s)" % (self.predicate, temporal)


@dataclass(frozen=True)
class NegatedAtom:
    """``not p(τ…; d…)`` — stratified negation in clause bodies.

    The paper's Section 3.2 observes that adding stratified negation
    raises the deductive query expressiveness to the full ω-regular
    class; this node carries the negated predicate atom.  Negation must
    be stratified (no recursion through it) and *data-safe*: the data
    variables of a negated atom must be bound by a positive body atom.
    Temporal variables may be free — the complement of a generalized
    relation is again a generalized relation, which is the point of
    the representation.
    """

    atom: PredicateAtom

    def temporal_variables(self):
        """Names of the temporal variables occurring in the atom."""
        return self.atom.temporal_variables()

    def data_variables(self):
        """Names of the data variables occurring in the atom."""
        return self.atom.data_variables()

    def __str__(self):
        return "not %s" % self.atom


@dataclass(frozen=True)
class ConstraintAtom:
    """``left op right`` over temporal terms; op in <, <=, =, >=, >."""

    op: str
    left: TemporalTerm
    right: TemporalTerm

    def temporal_variables(self):
        """Names of the temporal variables occurring in the atom."""
        return {t.var for t in (self.left, self.right) if t.var is not None}

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class Clause:
    """``head <- body`` where the body mixes predicate and constraint
    atoms.  An empty body makes the clause a (generalized) fact."""

    head: PredicateAtom
    body: tuple = ()

    def predicate_atoms(self):
        """The positive predicate atoms of the body, in order."""
        return [a for a in self.body if isinstance(a, PredicateAtom)]

    def negated_atoms(self):
        """The negated atoms of the body, in order."""
        return [a for a in self.body if isinstance(a, NegatedAtom)]

    def constraint_atoms(self):
        """The constraint atoms of the body, in order."""
        return [a for a in self.body if isinstance(a, ConstraintAtom)]

    def __str__(self):
        if not self.body:
            return "%s." % self.head
        return "%s <- %s." % (self.head, ", ".join(str(a) for a in self.body))


@dataclass(frozen=True)
class Program:
    """A finite set of clauses with derived predicate classification.

    Predicates occurring in some head are *intensional* (IDB); all
    other predicates mentioned in bodies are *extensional* (EDB) and
    must be supplied by a generalized database at evaluation time.
    """

    clauses: tuple

    def __post_init__(self):
        object.__setattr__(self, "clauses", tuple(self.clauses))

    def intensional_predicates(self):
        """Names of predicates defined by this program."""
        return {clause.head.predicate for clause in self.clauses}

    def extensional_predicates(self):
        """Names of predicates the program expects from the EDB."""
        idb = self.intensional_predicates()
        edb = set()
        for clause in self.clauses:
            atoms = clause.predicate_atoms()
            atoms += [negated.atom for negated in clause.negated_atoms()]
            for atom in atoms:
                if atom.predicate not in idb:
                    edb.add(atom.predicate)
        return edb

    def schemas(self):
        """Inferred ``name -> (temporal_arity, data_arity)`` for every
        predicate; raises SchemaError on inconsistent use."""
        inferred = {}
        for clause in self.clauses:
            atoms = [clause.head] + clause.predicate_atoms()
            atoms += [negated.atom for negated in clause.negated_atoms()]
            for atom in atoms:
                shape = (atom.temporal_arity, atom.data_arity)
                known = inferred.setdefault(atom.predicate, shape)
                if known != shape:
                    raise SchemaError(
                        "predicate %r used with arities %s and %s"
                        % (atom.predicate, known, shape)
                    )
        return inferred

    def clauses_for(self, predicate):
        """The clauses whose head predicate is ``predicate``."""
        return [c for c in self.clauses if c.head.predicate == predicate]

    def validate(self):
        """Static checks: consistent arities; head data variables and
        data variables of negated atoms must be range restricted
        (bound by a positive body predicate atom)."""
        self.schemas()
        for clause in self.clauses:
            bound = set()
            for atom in clause.predicate_atoms():
                bound |= atom.data_variables()
            for term in clause.head.data_args:
                if term.is_variable() and term.name not in bound:
                    raise SchemaError(
                        "clause %s: head data variable %r is not bound "
                        "by any body atom" % (clause, term.name)
                    )
            for negated in clause.negated_atoms():
                loose = negated.data_variables() - bound
                if loose:
                    raise SchemaError(
                        "clause %s: data variables %s of a negated atom "
                        "are not bound by a positive body atom"
                        % (clause, ", ".join(sorted(loose)))
                    )
        return self

    def __str__(self):
        return "\n".join(str(clause) for clause in self.clauses)

    def __iter__(self):
        return iter(self.clauses)

    def __len__(self):
        return len(self.clauses)
