"""Stratification for deductive programs with negation.

A program with ``not`` in clause bodies is *stratified* when no
predicate depends on its own negation — no cycle of the dependency
graph contains a negative edge.  Strata are computed the standard
way: ``stratum(p)`` is the largest number of negative edges on any
dependency path out of ``p``; the program is evaluated stratum by
stratum, each negated predicate being fully computed (and hence safely
complementable) before it is ever negated.

The paper (Section 3.2) ties stratified negation to the jump from
finitely regular to the full ω-regular query expressiveness.
"""

from __future__ import annotations

from repro.util.errors import SchemaError


def dependency_edges(program):
    """Edges ``(head_predicate, body_predicate, negative?)`` of the
    program's predicate dependency graph (IDB predicates only)."""
    idb = program.intensional_predicates()
    edges = []
    for clause in program.clauses:
        head = clause.head.predicate
        for atom in clause.predicate_atoms():
            if atom.predicate in idb:
                edges.append((head, atom.predicate, False))
        for negated in clause.negated_atoms():
            if negated.atom.predicate in idb:
                edges.append((head, negated.atom.predicate, True))
    return edges


def stratify(program):
    """Assign strata to the program's intensional predicates.

    Returns ``(strata, clause_strata)`` where ``strata`` maps each IDB
    predicate to a stratum number starting at 0, and ``clause_strata``
    is a list of clause lists, one per stratum in evaluation order.
    Raises :class:`SchemaError` when the program is not stratifiable.
    """
    idb = sorted(program.intensional_predicates())
    edges = dependency_edges(program)
    stratum = {predicate: 0 for predicate in idb}
    # Bellman-Ford style relaxation; more than |idb| sweeps of growth
    # means a negative cycle (recursion through negation).
    for sweep in range(len(idb) + 1):
        changed = False
        for (head, body, negative) in edges:
            required = stratum[body] + (1 if negative else 0)
            if stratum[head] < required:
                stratum[head] = required
                changed = True
        if not changed:
            break
    else:
        raise SchemaError(
            "program is not stratifiable (recursion through negation)"
        )

    height = max(stratum.values(), default=0)
    clause_strata = [[] for _ in range(height + 1)]
    for clause in program.clauses:
        clause_strata[stratum[clause.head.predicate]].append(clause)
    return stratum, clause_strata


def reachable_predicates(program, roots):
    """Every IDB predicate reachable from ``roots`` in the head→body
    dependency graph (positive and negative edges alike), including
    the roots themselves when they are IDB.

    This is the demand cone of a goal-directed query: clauses whose
    head predicate lies outside it can never contribute to the goal
    and are dropped wholesale by the magic rewrite
    (:mod:`repro.plan.magic`).
    """
    idb = program.intensional_predicates()
    children = {}
    for (head, body, _negative) in dependency_edges(program):
        children.setdefault(head, set()).add(body)
    reachable = set()
    frontier = [root for root in roots if root in idb]
    while frontier:
        predicate = frontier.pop()
        if predicate in reachable:
            continue
        reachable.add(predicate)
        frontier.extend(children.get(predicate, ()))
    return reachable


def negated_predicates(clauses):
    """The predicates negated anywhere in the given clauses."""
    negated = set()
    for clause in clauses:
        for atom in clause.negated_atoms():
            negated.add(atom.atom.predicate)
    return negated
