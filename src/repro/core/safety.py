"""The paper's termination criteria (Section 4.3).

*Free-extension safety* (Theorem 4.2): applying T_GP to the freed
interpretation generates no tuple with a new free extension.  The
theorem guarantees this state is always reached, because the periods
of all lrps arising in the computation are bounded (joins only take
lcms of EDB periods).

*Constraint safety* (Theorem 4.3): every tuple T_GP derives is implied
— constraint-wise — by the disjunction of the constraints of existing
tuples **with the same free extension**.  When an interpretation is
both free-extension safe and constraint safe, the naive
generalized-tuple-at-a-time evaluation has reached its least fixpoint
and can stop.

This module implements both tests exactly (the implication test is
zone containment in a union of zones, decided by zone subtraction),
plus the strictly stronger *semantic* coverage test used as an
ablation: a new tuple is covered if its extension is contained in the
union of all same-data tuples, regardless of free-extension matching.
"""

from __future__ import annotations

from repro.util.hooks import fault_point


def free_signatures(relation):
    """The set of free-extension signatures of a relation's tuples."""
    return {gt.free_signature() for gt in relation.tuples}


def covered_paper(gt, relation):
    """The paper's constraint-safety coverage test for one tuple:
    is ``constraints(gt)`` implied by the disjunction of the
    constraints of the tuples of ``relation`` with the same free
    extension?"""
    fault_point("coverage")
    same_signature = [
        existing.constraints
        for existing in relation.tuples_with_signature(gt.free_signature())
    ]
    if not same_signature:
        return False
    return gt.constraints.implied_by_union(same_signature)


def covered_semantic(gt, relation):
    """Exact extension coverage: ``gt ⊆ relation`` (same data tuples
    may have different lrps).  Strictly stronger than
    :func:`covered_paper`; used as an ablation (experiment E8)."""
    fault_point("coverage")
    remaining = gt.subtract(list(relation.tuples))
    return all(piece.is_empty() for piece in remaining)


_COVERAGE_MODES = {
    "paper": covered_paper,
    "semantic": covered_semantic,
}


def coverage_test(mode):
    """Look up a coverage predicate by name ('paper' or 'semantic')."""
    try:
        return _COVERAGE_MODES[mode]
    except KeyError:
        raise ValueError(
            "unknown safety mode %r (expected 'paper' or 'semantic')" % mode
        ) from None


def is_constraint_safe(derived, env, mode="paper"):
    """True when every derived tuple is covered by the environment —
    the stopping condition of Theorem 4.3."""
    test = coverage_test(mode)
    for predicate, tuples in derived.items():
        relation = env[predicate]
        for gt in tuples:
            if not test(gt, relation):
                return False
    return True


def is_free_extension_safe(evaluator, env):
    """The paper-literal free-extension safety test (Theorem 4.2):
    apply one T_GP round to the *freed* environment and check that no
    new free signature appears.

    ``evaluator`` is a :class:`~repro.core.evaluation.ProgramEvaluator`;
    the check is read-only.
    """
    freed = {
        name: _freed_relation(relation) for name, relation in env.items()
    }
    complements = evaluator.complements_for(evaluator.evaluators, freed)
    derived = evaluator.naive_round(freed, complements=complements)
    for predicate, tuples in derived.items():
        existing = free_signatures(env[predicate])
        for gt in tuples:
            if gt.free_signature() not in existing:
                return False
    return True


def _freed_relation(relation):
    from repro.gdb.relation import GeneralizedRelation

    freed = [gt.free_extension() for gt in relation.tuples]
    return GeneralizedRelation(
        relation.temporal_arity, relation.data_arity, freed
    )
