"""The paper's termination criteria (Section 4.3).

*Free-extension safety* (Theorem 4.2): applying T_GP to the freed
interpretation generates no tuple with a new free extension.  The
theorem guarantees this state is always reached, because the periods
of all lrps arising in the computation are bounded (joins only take
lcms of EDB periods).

*Constraint safety* (Theorem 4.3): every tuple T_GP derives is implied
— constraint-wise — by the disjunction of the constraints of existing
tuples **with the same free extension**.  When an interpretation is
both free-extension safe and constraint safe, the naive
generalized-tuple-at-a-time evaluation has reached its least fixpoint
and can stop.

This module implements both tests exactly (the implication test is
zone containment in a union of zones, decided by zone subtraction),
plus the strictly stronger *semantic* coverage test used as an
ablation: a new tuple is covered if its extension is contained in the
union of all same-data tuples, regardless of free-extension matching.
"""

from __future__ import annotations

from repro.gdb import kernel
from repro.util.hooks import fault_point


def free_signatures(relation):
    """The set of free-extension signatures of a relation's tuples."""
    return {gt.free_signature() for gt in relation.tuples}


def covered_paper(gt, relation, snapshot=None):
    """The paper's constraint-safety coverage test for one tuple:
    is ``constraints(gt)`` implied by the disjunction of the
    constraints of the tuples of ``relation`` with the same free
    extension?  ``snapshot`` is accepted for signature parity with
    :func:`covered_semantic` (the signature index already makes the
    lookup per-sweep cheap)."""
    fault_point("coverage")
    return _covered_paper_uncached(gt, relation)


def _covered_paper_uncached(gt, relation):
    if kernel.ENABLED:
        candidates = relation.tuples_with_signature_id(gt.kernel_ids()[1])
    else:
        candidates = relation.tuples_with_signature(gt.free_signature())
    same_signature = [existing.constraints for existing in candidates]
    if not same_signature:
        return False
    return gt.constraints.implied_by_union(same_signature)


def covered_semantic(gt, relation, snapshot=None):
    """Exact extension coverage: ``gt ⊆ relation`` (same data tuples
    may have different lrps).  Strictly stronger than
    :func:`covered_paper`; used as an ablation (experiment E8).

    ``snapshot`` is the relation's tuple sequence, taken once per
    coverage sweep by the callers — relations are immutable, so
    ``relation.tuples`` itself is the snapshot and no per-derived-tuple
    copy is ever needed."""
    fault_point("coverage")
    remaining = gt.subtract(relation.tuples if snapshot is None else snapshot)
    return all(piece.is_empty() for piece in remaining)


_COVERAGE_MODES = {
    "paper": covered_paper,
    "semantic": covered_semantic,
}


def coverage_test(mode):
    """Look up a coverage predicate by name ('paper' or 'semantic')."""
    try:
        return _COVERAGE_MODES[mode]
    except KeyError:
        raise ValueError(
            "unknown safety mode %r (expected 'paper' or 'semantic')" % mode
        ) from None


class CoverageChecker:
    """The engine's per-run coverage test, with the cross-round cache.

    In ``"paper"`` mode with ``use_cache`` the checker memoizes each
    verdict on the relation's :meth:`~repro.gdb.relation.
    GeneralizedRelation.coverage_cache`, keyed by the derived tuple's
    free signature and constraint canonical key.  Because the engine's
    relations grow monotonically (``with_tuples`` carries the cache
    forward, dropping only the stale negatives of touched signatures),
    a tuple re-derived in a later round — the common case on the road
    to the fixpoint — answers from the memo without touching
    ``implied_by_union`` at all.

    ``hits``/``misses`` count memo outcomes (with the cache off, every
    test is a miss); the engine emits them per round as
    ``coverage.cache`` events on the observability bus.  The
    ``coverage`` fault-injection site fires once per test either way,
    so fault plans behave identically with the cache on or off.
    """

    def __init__(self, mode="paper", use_cache=True):
        coverage_test(mode)  # validate the mode name eagerly
        self.mode = mode
        self.use_cache = bool(use_cache) and mode == "paper"
        self.hits = 0
        self.misses = 0

    def covered(self, gt, relation, snapshot=None):
        """Is ``gt`` covered by ``relation`` under this checker's mode?"""
        fault_point("coverage")
        if self.mode != "paper":
            self.misses += 1
            remaining = gt.subtract(
                relation.tuples if snapshot is None else snapshot
            )
            return all(piece.is_empty() for piece in remaining)
        if not self.use_cache:
            self.misses += 1
            return _covered_paper_uncached(gt, relation)
        if kernel.ENABLED:
            # Interned ids: the (sid, cid) pair identifies exactly the
            # same equivalence class as (signature, canonical key) —
            # equal sids force equal arity, equal cids equal zones —
            # but compares as two ints.
            signature, key = gt.row_key()
        else:
            signature = gt.free_signature()
            key = gt.constraints.canonical_key()
        cache = relation.coverage_cache()
        verdicts = cache.get(signature)
        if verdicts is not None:
            cached = verdicts.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        result = _covered_paper_uncached(gt, relation)
        if verdicts is None:
            verdicts = cache[signature] = {}
        verdicts[key] = result
        return result

    def sweep(self, derived, env):
        """One acceptance sweep over a round's derived tuples: dedup
        within the round (by interned ``row_key`` under the kernel,
        by canonical key otherwise — the same equivalence classes),
        test coverage once per distinct tuple against the predicate's
        current relation, and return the fresh (uncovered) tuples per
        predicate in derivation order."""
        fresh = {}
        seen_keys = set()
        use_ids = kernel.ENABLED
        for predicate, tuples in derived.items():
            relation = env[predicate]
            snapshot = relation.tuples  # one snapshot per sweep
            for gt in tuples:
                key = (
                    predicate,
                    gt.row_key() if use_ids else gt.canonical_key(),
                )
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                if self.covered(gt, relation, snapshot):
                    continue
                fresh.setdefault(predicate, []).append(gt)
        return fresh


def is_constraint_safe(derived, env, mode="paper"):
    """True when every derived tuple is covered by the environment —
    the stopping condition of Theorem 4.3.  The relation's tuple
    sequence is snapshotted once per predicate (one sweep), not per
    derived tuple."""
    test = coverage_test(mode)
    for predicate, tuples in derived.items():
        relation = env[predicate]
        snapshot = relation.tuples
        for gt in tuples:
            if not test(gt, relation, snapshot):
                return False
    return True


def is_free_extension_safe(evaluator, env):
    """The paper-literal free-extension safety test (Theorem 4.2):
    apply one T_GP round to the *freed* environment and check that no
    new free signature appears.

    ``evaluator`` is a :class:`~repro.core.evaluation.ProgramEvaluator`;
    the check is read-only.
    """
    freed = {
        name: _freed_relation(relation) for name, relation in env.items()
    }
    complements = evaluator.complements_for(evaluator.evaluators, freed)
    derived = evaluator.naive_round(freed, complements=complements)
    for predicate, tuples in derived.items():
        existing = free_signatures(env[predicate])
        for gt in tuples:
            if gt.free_signature() not in existing:
                return False
    return True


def _freed_relation(relation):
    from repro.gdb.relation import GeneralizedRelation

    freed = [gt.free_extension() for gt in relation.tuples]
    return GeneralizedRelation(
        relation.temporal_arity, relation.data_arity, freed
    )
