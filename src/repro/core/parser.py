"""Concrete syntax for the deductive language.

The Example 4.1 program of the paper reads::

    problems(t1 + 2, t2 + 2; "database") <- course(t1, t2; "database").
    problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).

Conventions
-----------
* Temporal arguments come first, separated from data arguments by a
  semicolon.  A temporal argument is a lowercase variable with an
  optional ``± c``, or an integer constant.
* Data arguments are quoted strings, integers, identifiers starting
  with an uppercase letter or underscore (data **variables**), or
  lowercase identifiers (symbolic **constants** — the Prolog
  convention).
* Constraint atoms (``t1 < t2 + 5``, ``t1 >= 0``) may appear anywhere
  in the body.
* Clauses end with a period; ``<-`` and ``:-`` both work; a factual
  clause may omit the arrow.
* ``%`` and ``#`` start comments.
"""

from __future__ import annotations

from repro.core.ast import (
    Clause,
    ConstraintAtom,
    DataTerm,
    NegatedAtom,
    PredicateAtom,
    Program,
    TemporalTerm,
)
from repro.util.errors import ParseError
from repro.util.lexing import Lexer, TokenKind

_COMPARISONS = {
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.EQ: "=",
    TokenKind.GE: ">=",
    TokenKind.GT: ">",
}


def _is_data_variable(name):
    return name[0].isupper() or name[0] == "_"


def _parse_temporal_term(lexer):
    token = lexer.peek()
    if token.kind is TokenKind.MINUS:
        lexer.next()
        value = int(lexer.expect(TokenKind.NUMBER).value)
        return TemporalTerm(None, -value)
    if token.kind is TokenKind.NUMBER:
        lexer.next()
        return TemporalTerm(None, int(token.value))
    if token.kind is TokenKind.IDENT:
        lexer.next()
        offset = 0
        if lexer.peek().kind is TokenKind.PLUS:
            lexer.next()
            offset = int(lexer.expect(TokenKind.NUMBER).value)
        elif lexer.peek().kind is TokenKind.MINUS:
            lexer.next()
            offset = -int(lexer.expect(TokenKind.NUMBER).value)
        return TemporalTerm(token.value, offset)
    raise ParseError(
        "expected a temporal term, found %s" % token, token.line, token.column
    )


def _parse_data_term(lexer):
    token = lexer.next()
    if token.kind is TokenKind.STRING:
        return DataTerm.constant(token.value)
    if token.kind is TokenKind.NUMBER:
        return DataTerm.constant(int(token.value))
    if token.kind is TokenKind.MINUS:
        value = int(lexer.expect(TokenKind.NUMBER).value)
        return DataTerm.constant(-value)
    if token.kind is TokenKind.IDENT:
        if _is_data_variable(token.value):
            return DataTerm.variable(token.value)
        return DataTerm.constant(token.value)
    raise ParseError(
        "expected a data term, found %s" % token, token.line, token.column
    )


def _parse_predicate_atom(lexer, name):
    lexer.expect(TokenKind.LPAREN)
    temporal = []
    data = []
    if lexer.peek().kind is not TokenKind.RPAREN:
        while True:
            temporal.append(_parse_temporal_term(lexer))
            if lexer.accept(TokenKind.COMMA):
                continue
            break
        if lexer.accept(TokenKind.SEMICOLON):
            while True:
                data.append(_parse_data_term(lexer))
                if lexer.accept(TokenKind.COMMA):
                    continue
                break
    lexer.expect(TokenKind.RPAREN)
    return PredicateAtom(name, tuple(temporal), tuple(data))


def _parse_body_atom(lexer):
    """A body atom: predicate atom or constraint atom.

    Lookahead: IDENT followed by '(' is a predicate atom; anything
    else (IDENT, NUMBER, or '-') starts a temporal term of a
    constraint atom.
    """
    token = lexer.peek()
    if token.kind is TokenKind.IDENT and token.value == "not":
        lexer.next()
        name = lexer.expect(TokenKind.IDENT, "a predicate name after 'not'")
        if lexer.peek().kind is not TokenKind.LPAREN:
            raise ParseError(
                "'not' must be followed by a predicate atom",
                name.line,
                name.column,
            )
        return NegatedAtom(_parse_predicate_atom(lexer, name.value))
    if token.kind is TokenKind.IDENT:
        name = lexer.next()
        if lexer.peek().kind is TokenKind.LPAREN:
            return _parse_predicate_atom(lexer, name.value)
        # Constraint atom beginning with a variable: re-assemble the term.
        offset = 0
        if lexer.peek().kind is TokenKind.PLUS:
            lexer.next()
            offset = int(lexer.expect(TokenKind.NUMBER).value)
        elif lexer.peek().kind is TokenKind.MINUS:
            lexer.next()
            offset = -int(lexer.expect(TokenKind.NUMBER).value)
        left = TemporalTerm(name.value, offset)
        return _finish_constraint(lexer, left)
    left = _parse_temporal_term(lexer)
    return _finish_constraint(lexer, left)


def _finish_constraint(lexer, left):
    token = lexer.next()
    op = _COMPARISONS.get(token.kind)
    if op is None:
        raise ParseError(
            "expected a comparison operator, found %s" % token,
            token.line,
            token.column,
        )
    right = _parse_temporal_term(lexer)
    return ConstraintAtom(op, left, right)


def parse_clause(text):
    """Parse a single clause (with or without the final period)."""
    lexer = Lexer(text)
    clause = _parse_one_clause(lexer)
    lexer.accept(TokenKind.PERIOD)
    if not lexer.at_end():
        lexer.error("unexpected trailing input after clause")
    return clause


def _parse_one_clause(lexer):
    head_name = lexer.expect(TokenKind.IDENT, "a predicate name")
    head = _parse_predicate_atom(lexer, head_name.value)
    body = []
    if lexer.accept(TokenKind.ARROW):
        if lexer.peek().kind not in (TokenKind.PERIOD, TokenKind.EOF):
            while True:
                body.append(_parse_body_atom(lexer))
                if lexer.accept(TokenKind.COMMA):
                    continue
                break
    return Clause(head, tuple(body))


def parse_program(text):
    """Parse a whole program: clauses separated by periods."""
    lexer = Lexer(text)
    clauses = []
    while not lexer.at_end():
        clauses.append(_parse_one_clause(lexer))
        lexer.expect(TokenKind.PERIOD)
    return Program(tuple(clauses)).validate()
