"""Bottom-up evaluation with the generalized mapping T_GP (Section 4.3).

A normalized clause is evaluated by (i) taking the product of its body
atom relations, (ii) extending with unconstrained columns for the
temporal variables not bound by any body atom (the lrp ``n`` carrying
constants and free head variables), (iii) conjoining the constraint
atoms, and (iv) projecting onto the head variables — the join/project
formulation of the T_GP definition in the paper.

Both the naive strategy (recompute every clause against the full
interpretation) and the semi-naive strategy (fire a clause only with a
last-round delta in some intensional body position) are provided; they
compute the same interpretations.
"""

from __future__ import annotations

from repro.constraints.atoms import Comparison, TemporalTerm as ConstraintTerm
from repro.core.stratify import stratify
from repro.core.transform import normalize_program
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.point import Lrp
from repro.util.errors import SchemaError
from repro.util.hooks import fault_point


class ClauseEvaluator:
    """Evaluates one normalized clause against an environment of
    generalized relations."""

    def __init__(self, normalized, schemas, intensional):
        self.normalized = normalized
        self.schemas = schemas
        self.head_predicate = normalized.head_predicate
        self.intensional_positions = [
            index
            for index, atom in enumerate(normalized.body_atoms)
            if atom.predicate in intensional
        ]
        self.negated_predicates = {
            atom.predicate for atom in normalized.negated_atoms
        }
        self._validate()

    def _validate(self):
        atoms = list(self.normalized.body_atoms) + list(
            self.normalized.negated_atoms
        )
        for atom in atoms:
            expected = self.schemas.get(atom.predicate)
            if expected is None:
                raise SchemaError("no schema for predicate %r" % atom.predicate)
            if expected != (atom.temporal_arity, atom.data_arity):
                raise SchemaError(
                    "atom %s does not match schema %s of %r"
                    % (atom, expected, atom.predicate)
                )

    # -- evaluation --------------------------------------------------------

    def evaluate(self, env, delta=None, delta_position=None, complements=None):
        """The head relation derived by one T_GP application of this
        clause.  With ``delta``/``delta_position`` set, the atom at
        that body position reads from the delta relations instead
        (semi-naive firing).  ``complements`` supplies, for each
        negated predicate, its exact complement relation — negated
        atoms then join like positive ones (stratified negation)."""
        fault_point("clause")
        normalized = self.normalized
        if self.negated_predicates and complements is None:
            raise SchemaError(
                "clause %s negates %s but no complements were supplied"
                % (normalized, ", ".join(sorted(self.negated_predicates)))
            )
        columns = []        # temporal variable name per relation column
        data_columns = []   # data variable name per data column
        current = GeneralizedRelation(0, 0, [GeneralizedTuple((), ())])

        positive = list(enumerate(normalized.body_atoms))
        sources = [(position, atom, False) for position, atom in positive]
        sources += [(None, atom, True) for atom in normalized.negated_atoms]

        for position, atom, negative in sources:
            if negative:
                relation = complements[atom.predicate]
            else:
                source = env
                if delta is not None and position == delta_position:
                    source = delta
                relation = source.get(atom.predicate)
                if relation is None:
                    relation = GeneralizedRelation.empty(
                        *self.schemas[atom.predicate]
                    )
            relation, atom_data_columns = _restrict_data(relation, atom)
            current = current.product(relation)
            columns.extend(term.var for term in atom.temporal_args)
            data_columns.extend(atom_data_columns)
            if not current.tuples:
                return GeneralizedRelation.empty(
                    len(normalized.head_vars), len(normalized.head_data)
                )

        # Cross-atom data variable sharing: equality selections, then
        # remember only the first occurrence of each variable.
        first_data = {}
        for index, name in enumerate(data_columns):
            if name is None:
                continue
            if name in first_data:
                current = current.select_data_equal(first_data[name], index)
            else:
                first_data[name] = index

        # Extend with unconstrained columns for temporal variables not
        # bound by a body atom (constants, free head variables, and
        # variables occurring only in constraint atoms).
        all_vars = normalized.all_temporal_variables()
        missing = [name for name in all_vars if name not in columns]
        if missing:
            carriers = GeneralizedRelation(
                len(missing),
                0,
                [GeneralizedTuple(tuple(Lrp.constant_carrier() for _ in missing))],
            )
            current = current.product(carriers)
            columns.extend(missing)

        position_of = {name: index for index, name in enumerate(columns)}

        atoms = [
            _lower_constraint(constraint, position_of)
            for constraint in normalized.constraints
        ]
        if atoms:
            current = current.select(atoms)
            if not current.tuples:
                return GeneralizedRelation.empty(
                    len(normalized.head_vars), len(normalized.head_data)
                )

        keep_temporal = [position_of[name] for name in normalized.head_vars]
        keep_data = []
        constant_slots = []
        for slot, term in enumerate(normalized.head_data):
            if term.is_variable():
                keep_data.append(first_data[term.name])
            else:
                constant_slots.append((slot, term.value))
        projected = current.project(keep_temporal, keep_data)
        if constant_slots:
            projected = _weave_data_constants(
                projected, constant_slots, len(normalized.head_data)
            )
        return projected


def _lower_constraint(constraint, position_of):
    """Convert an AST constraint atom to a column-indexed Comparison."""

    def lower(term):
        if term.var is None:
            return ConstraintTerm(None, term.offset)
        return ConstraintTerm(position_of[term.var], term.offset)

    return Comparison(constraint.op, lower(constraint.left), lower(constraint.right))


def _weave_data_constants(relation, constant_slots, final_arity):
    """Insert head data constants at their positions among the
    projected data-variable columns."""
    slots = dict(constant_slots)
    tuples = []
    for gt in relation.tuples:
        data = []
        variable_values = iter(gt.data)
        for slot in range(final_arity):
            if slot in slots:
                data.append(slots[slot])
            else:
                data.append(next(variable_values))
        tuples.append(GeneralizedTuple(gt.lrps, tuple(data), gt.constraints))
    return GeneralizedRelation(relation.temporal_arity, final_arity, tuples)


def _restrict_data(relation, atom):
    """Apply data-constant selections and within-atom data variable
    equalities; returns ``(relation, data_column_names)`` where the
    names list has None for constant positions (kept but anonymous)."""
    names = []
    seen = {}
    for index, term in enumerate(atom.data_args):
        if term.is_variable():
            if term.name in seen:
                relation = relation.select_data_equal(seen[term.name], index)
                names.append(None)
            else:
                seen[term.name] = index
                names.append(term.name)
        else:
            relation = relation.select_data_constant(index, term.value)
            names.append(None)
    return relation, names


class ProgramEvaluator:
    """Compiles a program and applies T_GP rounds over an environment.

    The environment maps predicate names to GeneralizedRelations; the
    extensional part stays fixed, the intensional part grows
    monotonically round by round.
    """

    def __init__(self, program, edb):
        program.validate()
        self.program = program
        self.edb = edb
        self.schemas = dict(program.schemas())
        self.intensional = program.intensional_predicates()
        for name in program.extensional_predicates():
            schema = edb.schema(name)
            declared = self.schemas.get(name)
            edb_shape = (schema.temporal_arity, schema.data_arity)
            if declared is not None and declared != edb_shape:
                raise SchemaError(
                    "predicate %r: program uses arities %s, EDB provides %s"
                    % (name, declared, edb_shape)
                )
            self.schemas[name] = edb_shape
        self.evaluators = [
            ClauseEvaluator(normalized, self.schemas, self.intensional)
            for normalized in normalize_program(program)
        ]
        self.strata, clause_strata = stratify(program)
        clause_index = {
            id(evaluator.normalized.original): evaluator
            for evaluator in self.evaluators
        }
        self.stratum_evaluators = [
            [clause_index[id(clause)] for clause in clauses]
            for clauses in clause_strata
        ]

    def stratum_count(self):
        """Number of evaluation strata (1 for negation-free programs)."""
        return len(self.stratum_evaluators)

    def complements_for(self, evaluators, env):
        """Exact complement relations for every predicate negated by
        the given evaluators, computed against the current environment
        with active-domain data semantics."""
        negated = set()
        for evaluator in evaluators:
            negated |= evaluator.negated_predicates
        if not negated:
            return {}
        domain = self.active_data_domain(env)
        complements = {}
        for predicate in sorted(negated):
            relation = env[predicate]
            domains = [domain] * relation.data_arity
            complements[predicate] = relation.complement(
                data_domains=domains if relation.data_arity else None
            )
        return complements

    def active_data_domain(self, env):
        """Every data constant visible in the environment and program."""
        domain = set()
        for relation in env.values():
            for column in range(relation.data_arity):
                domain |= relation.data_values(column)
        for clause in self.program.clauses:
            atoms = [clause.head] + clause.predicate_atoms()
            atoms += [negated.atom for negated in clause.negated_atoms()]
            for atom in atoms:
                for term in atom.data_args:
                    if not term.is_variable():
                        domain.add(term.value)
        return sorted(domain, key=repr)

    def initial_environment(self):
        """EDB relations plus empty IDB relations."""
        env = {}
        for name in self.edb.names():
            env[name] = self.edb.relation(name)
        for name in self.intensional:
            temporal_arity, data_arity = self.schemas[name]
            env[name] = GeneralizedRelation.empty(temporal_arity, data_arity)
        return env

    def naive_round(self, env, evaluators=None, complements=None, meter=None):
        """One naive T_GP application: every clause against the full
        environment.  Returns ``{predicate: [derived tuples]}``.

        An optional :class:`~repro.runtime.budget.BudgetMeter` is
        ticked before each clause firing (deadline check) and charged
        with the derived-tuple work after it."""
        derived = {}
        for evaluator in evaluators if evaluators is not None else self.evaluators:
            if meter is not None:
                meter.tick_clause()
            relation = evaluator.evaluate(env, complements=complements)
            if meter is not None and relation.tuples:
                meter.charge_derived(len(relation.tuples))
            if relation.tuples:
                derived.setdefault(evaluator.head_predicate, []).extend(
                    relation.tuples
                )
        return derived

    def seminaive_round(self, env, delta, evaluators=None, complements=None, meter=None):
        """One semi-naive round: each clause fires once per intensional
        body position, reading the last-round delta there.  Clauses
        without intensional body atoms do not fire (they are exhausted
        by the first naive round).  ``meter`` as in :meth:`naive_round`."""
        derived = {}
        delta_env = {
            name: GeneralizedRelation(
                *self.schemas[name], tuples=tuples
            )
            for name, tuples in delta.items()
        }
        for evaluator in evaluators if evaluators is not None else self.evaluators:
            for position in evaluator.intensional_positions:
                atom = evaluator.normalized.body_atoms[position]
                if atom.predicate not in delta_env:
                    continue
                if meter is not None:
                    meter.tick_clause()
                relation = evaluator.evaluate(
                    env,
                    delta=delta_env,
                    delta_position=position,
                    complements=complements,
                )
                if meter is not None and relation.tuples:
                    meter.charge_derived(len(relation.tuples))
                if relation.tuples:
                    derived.setdefault(evaluator.head_predicate, []).extend(
                        relation.tuples
                    )
        return derived
