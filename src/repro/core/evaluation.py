"""Bottom-up evaluation with the generalized mapping T_GP (Section 4.3).

Every normalized clause is compiled **once**, at
:class:`ProgramEvaluator` construction, into a
:class:`~repro.plan.compiler.ClausePlan` — an operator pipeline with
greedy join ordering, selection/constraint pushdown, negation as
anti-join against the exact complements, and the head projection
fused in (see :mod:`repro.plan`).  The paper-literal
product-then-select-then-project formulation survives as
:class:`~repro.plan.reference.ReferenceClauseEvaluator`
(``evaluation="reference"``), serving as the correctness oracle and
the benchmarks' baseline.

Both the naive strategy (recompute every clause against the full
interpretation) and the semi-naive strategy (fire a clause only with a
last-round delta in some intensional body position) are provided; they
compute the same interpretations.
"""

from __future__ import annotations

from repro.core.stratify import stratify
from repro.core.transform import normalize_program
from repro.gdb.relation import GeneralizedRelation
from repro.plan.compiler import ClausePlan
from repro.plan.explain import plan_fingerprint
from repro.plan.reference import ReferenceClauseEvaluator
from repro.util import hooks
from repro.util.errors import SchemaError

_EVALUATION_MODES = ("compiled", "reference")


class ProgramEvaluator:
    """Compiles a program and applies T_GP rounds over an environment.

    The environment maps predicate names to GeneralizedRelations; the
    extensional part stays fixed, the intensional part grows
    monotonically round by round.  ``evaluation`` selects the clause
    evaluator: ``"compiled"`` (the plan layer, default) or
    ``"reference"`` (the paper-literal oracle).  Plans are compiled in
    either mode — the plan fingerprint stamps checkpoints and feeds
    ``repro explain`` regardless of which evaluator runs.

    ``parallelism > 1`` shards each round's clause-variant firings
    across a process pool (:mod:`repro.plan.shard`); the merged result
    is bit-identical to the sequential round (see
    :meth:`parallel_round`), and ``parallelism=1`` (the default) never
    touches the pool machinery at all.  ``parallelism="auto"`` starts
    sequential and lets the engine's dispatch-overhead governor upshift
    mid-run when the measured per-round work can pay for sharding (see
    :meth:`resolve_auto_parallelism`; ``auto_parallelism_cap`` bounds
    the worker count it may choose).  The pool is supervised:
    ``shard_recv_deadline`` / ``shard_max_restarts`` tune hang
    detection and the respawn cap, ``shard_poll_floor`` /
    ``shard_poll_ceiling`` the liveness-poll backoff, and with
    ``shard_fallback`` (the default) an unhealable pool downshifts the
    rest of the run to in-process sequential evaluation — recorded in
    :attr:`shard_degraded` — instead of failing it.
    """

    def __init__(
        self,
        program,
        edb,
        evaluation="compiled",
        parallelism=1,
        shard_recv_deadline=None,
        shard_max_restarts=None,
        shard_fallback=True,
        shard_poll_floor=None,
        shard_poll_ceiling=None,
        auto_parallelism_cap=None,
    ):
        if evaluation not in _EVALUATION_MODES:
            raise ValueError(
                "evaluation must be one of %s" % (_EVALUATION_MODES,)
            )
        if parallelism is None:
            parallelism = 1
        if parallelism == "auto":
            self.parallelism_mode = "auto"
            parallelism = 1
        else:
            self.parallelism_mode = "fixed"
            parallelism = int(parallelism)
            if parallelism < 1:
                raise ValueError(
                    "parallelism must be a positive worker count or 'auto'"
                )
        self.parallelism = parallelism
        self.auto_parallelism_cap = auto_parallelism_cap
        #: The auto governor's decision record for the last run
        #: (``None`` before it decides / in fixed mode).
        self.parallel_auto = None
        self.shard_recv_deadline = shard_recv_deadline
        self.shard_max_restarts = shard_max_restarts
        self.shard_fallback = bool(shard_fallback)
        self.shard_poll_floor = shard_poll_floor
        self.shard_poll_ceiling = shard_poll_ceiling
        #: ``None`` while sharding is healthy (or unused); after a
        #: mid-run downshift, a dict describing why (reason,
        #: restarts_used, pending_tasks).
        self.shard_degraded = None
        #: Transport totals of the last pool this evaluator closed
        #: (``None`` when no pool ever ran) — benchmark fodder.
        self.shard_wire_stats = None
        self._shard_pool = None
        program.validate()
        self.program = program
        self.edb = edb
        self.evaluation = evaluation
        self.schemas = dict(program.schemas())
        self.intensional = program.intensional_predicates()
        for name in program.extensional_predicates():
            schema = edb.schema(name)
            declared = self.schemas.get(name)
            edb_shape = (schema.temporal_arity, schema.data_arity)
            if declared is not None and declared != edb_shape:
                raise SchemaError(
                    "predicate %r: program uses arities %s, EDB provides %s"
                    % (name, declared, edb_shape)
                )
            self.schemas[name] = edb_shape
        normalized = normalize_program(program)
        self.plans = [
            ClausePlan(clause, self.schemas, self.intensional)
            for clause in normalized
        ]
        if evaluation == "reference":
            self.evaluators = [
                ReferenceClauseEvaluator(clause, self.schemas, self.intensional)
                for clause in normalized
            ]
        else:
            self.evaluators = self.plans
        self.strata, clause_strata = stratify(program)
        clause_index = {
            id(evaluator.normalized.original): evaluator
            for evaluator in self.evaluators
        }
        self.stratum_evaluators = [
            [clause_index[id(clause)] for clause in clauses]
            for clauses in clause_strata
        ]
        self._program_constants = self._collect_program_constants()
        self._domain_cache = None  # (env snapshot, sorted domain)

    def plan_fingerprint(self):
        """The digest of every compiled plan (see
        :func:`repro.plan.explain.plan_fingerprint`)."""
        return plan_fingerprint(self.plans)

    def stratum_count(self):
        """Number of evaluation strata (1 for negation-free programs)."""
        return len(self.stratum_evaluators)

    def complements_for(self, evaluators, env):
        """Exact complement relations for every predicate negated by
        the given evaluators, computed against the current environment
        with active-domain data semantics."""
        negated = set()
        for evaluator in evaluators:
            negated |= evaluator.negated_predicates
        if not negated:
            return {}
        domain = self.active_data_domain(env)
        complements = {}
        for predicate in sorted(negated):
            relation = env[predicate]
            domains = [domain] * relation.data_arity
            complements[predicate] = relation.complement(
                data_domains=domains if relation.data_arity else None
            )
        return complements

    def _collect_program_constants(self):
        constants = set()
        for clause in self.program.clauses:
            atoms = [clause.head] + clause.predicate_atoms()
            atoms += [negated.atom for negated in clause.negated_atoms()]
            for atom in atoms:
                for term in atom.data_args:
                    if not term.is_variable():
                        constants.add(term.value)
        return constants

    def active_data_domain(self, env):
        """Every data constant visible in the environment and program.

        The program's own constants are collected once at construction;
        the environment scan is cached per relation *identity* — the
        relations are immutable value objects, so the cache goes stale
        exactly when a predicate actually grew (a new instance).
        """
        cached = self._domain_cache
        if cached is not None:
            snapshot, domain = cached
            if len(snapshot) == len(env) and all(
                env.get(name) is relation for name, relation in snapshot.items()
            ):
                return domain
        constants = set(self._program_constants)
        for relation in env.values():
            for column in range(relation.data_arity):
                constants |= relation.data_values(column)
        domain = sorted(constants, key=repr)
        self._domain_cache = (dict(env), domain)
        return domain

    def initial_environment(self):
        """EDB relations plus empty IDB relations."""
        env = {}
        for name in self.edb.names():
            env[name] = self.edb.relation(name)
        for name in self.intensional:
            temporal_arity, data_arity = self.schemas[name]
            env[name] = GeneralizedRelation.empty(temporal_arity, data_arity)
        return env

    def naive_round(self, env, evaluators=None, complements=None, meter=None):
        """One naive T_GP application: every clause against the full
        environment.  Returns ``{predicate: [derived tuples]}``.

        An optional :class:`~repro.runtime.budget.BudgetMeter` is
        ticked before each clause firing (deadline check) and charged
        with the derived-tuple work after it."""
        derived = {}
        for evaluator in evaluators if evaluators is not None else self.evaluators:
            if meter is not None:
                meter.tick_clause()
            relation = evaluator.evaluate(env, complements=complements)
            if meter is not None and relation.tuples:
                meter.charge_derived(len(relation.tuples))
            if relation.tuples:
                derived.setdefault(evaluator.head_predicate, []).extend(
                    relation.tuples
                )
        return derived

    def seminaive_round(self, env, delta, evaluators=None, complements=None, meter=None):
        """One semi-naive round: each clause fires once per intensional
        body position, reading the last-round delta there.  Clauses
        without intensional body atoms do not fire (they are exhausted
        by the first naive round).  ``meter`` as in :meth:`naive_round`."""
        derived = {}
        delta_env = {
            name: GeneralizedRelation(
                *self.schemas[name], tuples=tuples
            )
            for name, tuples in delta.items()
        }
        for evaluator in evaluators if evaluators is not None else self.evaluators:
            for position in evaluator.intensional_positions:
                atom = evaluator.normalized.body_atoms[position]
                if atom.predicate not in delta_env:
                    continue
                if meter is not None:
                    meter.tick_clause()
                relation = evaluator.evaluate(
                    env,
                    delta=delta_env,
                    delta_position=position,
                    complements=complements,
                )
                if meter is not None and relation.tuples:
                    meter.charge_derived(len(relation.tuples))
                if relation.tuples:
                    derived.setdefault(evaluator.head_predicate, []).extend(
                        relation.tuples
                    )
        return derived

    def maintenance_round(self, env, delta, meter=None):
        """One delta-propagation round for incremental maintenance:
        each clause fires once per body position — intensional *or
        extensional* — whose predicate has a delta.

        Regular semi-naive rounds never read a delta at an extensional
        position (the EDB is immutable during a run), so the plan
        variants for those positions are compiled lazily on first use
        and cached outside the fingerprinted variant set (see
        :meth:`~repro.plan.compiler.ClausePlan.maintenance_variant`).
        When the delta holds only intensional predicates this fires
        exactly the same variants, in the same order, as
        :meth:`seminaive_round` — the maintainer's inner rounds are
        ordinary semi-naive rounds.
        """
        derived = {}
        delta_env = {
            name: GeneralizedRelation(*self.schemas[name], tuples=tuples)
            for name, tuples in delta.items()
        }
        for evaluator in self.evaluators:
            for position, atom in enumerate(evaluator.normalized.body_atoms):
                if atom.predicate not in delta_env:
                    continue
                if meter is not None:
                    meter.tick_clause()
                relation = evaluator.evaluate(
                    env,
                    delta=delta_env,
                    delta_position=position,
                    complements=None,
                )
                if meter is not None and relation.tuples:
                    meter.charge_derived(len(relation.tuples))
                if relation.tuples:
                    derived.setdefault(evaluator.head_predicate, []).extend(
                        relation.tuples
                    )
        return derived

    # -- parallel round execution ----------------------------------------

    def round_tasks(self, evaluators, delta):
        """The round's clause-variant firings as ``(clause index,
        delta position | None)`` pairs, **in the exact order the
        sequential loops fire them** — the shard merge replays this
        order, which is what makes the parallel round bit-identical.

        ``delta=None`` describes a naive round (one task per clause);
        otherwise one task per intensional body position whose
        predicate has a delta.
        """
        tasks = []
        for index, evaluator in enumerate(evaluators):
            if delta is None:
                tasks.append((index, None))
                continue
            for position in evaluator.intensional_positions:
                atom = evaluator.normalized.body_atoms[position]
                if atom.predicate in delta:
                    tasks.append((index, position))
        return tasks

    def shard_pool(self):
        """The lazily created process pool (``parallelism >= 2`` only)."""
        if self._shard_pool is None:
            from repro.plan.shard import ShardPool

            self._shard_pool = ShardPool(
                str(self.program),
                str(self.edb),
                self.evaluation,
                self.parallelism,
                plan_fingerprint=self.plan_fingerprint(),
                recv_deadline=self.shard_recv_deadline,
                max_restarts=self.shard_max_restarts,
                poll_floor=self.shard_poll_floor,
                poll_ceiling=self.shard_poll_ceiling,
            )
        return self._shard_pool

    def close_parallel(self):
        """Tear down the shard pool; a later parallel round restarts it.
        The closed pool's transport totals stay readable as
        :attr:`shard_wire_stats`."""
        if self._shard_pool is not None:
            self.shard_wire_stats = self._shard_pool.wire_stats()
            self._shard_pool.close()
            self._shard_pool = None

    def parallel_active(self):
        """True while sharded rounds are in effect: ``parallelism >= 2``
        and the pool has not been degraded away mid-run.  In auto mode
        this stays False until the governor upshifts."""
        return self.parallelism > 1 and self.shard_degraded is None

    def auto_target_workers(self):
        """The worker count an auto upshift would use: every core up to
        ``auto_parallelism_cap`` (default 4), but never fewer than 2 —
        below that a pool cannot beat staying sequential."""
        import os

        cap = self.auto_parallelism_cap or 4
        return max(2, min(os.cpu_count() or 1, cap))

    def resolve_auto_parallelism(self, workers):
        """Commit the auto governor's upshift decision: from here on
        the evaluator behaves exactly as if ``parallelism=workers`` had
        been configured (the pool spins up lazily on the next stratum
        broadcast)."""
        if self.parallelism_mode != "auto":
            raise ValueError("resolve_auto_parallelism requires auto mode")
        if workers < 2:
            raise ValueError("an auto upshift needs at least 2 workers")
        self.parallelism = int(workers)

    def _shard_degrade(self, error, pending_tasks=0):
        """Record the downshift to sequential, announce it, and drop
        the dead pool.  From here on :meth:`parallel_active` is False
        and the engine runs the remaining rounds in-process."""
        self.shard_degraded = {
            "reason": str(error),
            "restarts_used": getattr(error, "restarts_used", 0),
            "pending_tasks": pending_tasks,
        }
        if hooks.SINKS:
            hooks.emit("shard.degraded", dict(self.shard_degraded))
        self.close_parallel()

    def parallel_begin_stratum(self, stratum_index, env, complements, delta):
        """Ship the stratum context to every worker (see
        :meth:`repro.plan.shard.ShardPool.begin_stratum`).  An
        unhealable pool loss here degrades to sequential (the caller
        re-checks :meth:`parallel_active`) unless ``shard_fallback``
        is off."""
        from repro.plan.shard import ShardPoolLostError

        try:
            self.shard_pool().begin_stratum(
                stratum_index, env, complements, delta, self.intensional
            )
        except ShardPoolLostError as error:
            if not self.shard_fallback:
                raise
            self._shard_degrade(error)

    def parallel_end_stratum(self):
        """Stratum boundary housekeeping for an active pool: drain the
        workers' aggregated operator statistics onto the parent's event
        bus and retire the stratum's shared-memory segments (see
        :meth:`repro.plan.shard.ShardPool.end_stratum`)."""
        if self._shard_pool is not None and self._shard_pool.started():
            self._shard_pool.end_stratum()

    def parallel_round(
        self,
        evaluators,
        tasks,
        update,
        env=None,
        complements=None,
        delta=None,
        meter=None,
    ):
        """One sharded round: evaluate ``tasks`` across the pool and
        merge deterministically.

        The meter is consulted at the shard boundaries: one deadline
        tick per task before dispatch, then the per-task derived-work
        charges in sequential task order during the merge — the same
        totals (and the same ``budget.charge`` event order) as the
        sequential round, with the deadline enforced between shards
        instead of between firings.

        ``env`` / ``complements`` / ``delta`` are the parent-side round
        inputs (the parent maintains them whether or not it shards).
        They are only read on the graceful-degradation path: when the
        pool is lost beyond healing and ``shard_fallback`` is set, the
        tasks still missing results are evaluated right here, in task
        order, against those inputs — producing the identical merged
        round, since a task is a pure function of them.
        """
        from repro.plan.shard import ShardPoolLostError

        if meter is not None:
            for _ in tasks:
                meter.tick_clause()
        try:
            # The workers re-enumerate the task list themselves, so
            # they must know which enumeration this round used —
            # ``delta`` here is exactly what the parent enumerated
            # ``tasks`` from.
            per_task = self.shard_pool().run_round(
                tasks, update, seminaive=delta is not None
            )
        except ShardPoolLostError as error:
            if not self.shard_fallback or env is None:
                raise
            per_task = self._finish_round_sequentially(
                error, evaluators, tasks, env, complements, delta
            )
        derived = {}
        for (index, _position), tuples in zip(tasks, per_task):
            if meter is not None and tuples:
                meter.charge_derived(len(tuples))
            if tuples:
                derived.setdefault(
                    evaluators[index].head_predicate, []
                ).extend(tuples)
        return derived

    def _finish_round_sequentially(
        self, error, evaluators, tasks, env, complements, delta
    ):
        """Complete a pool-lost round in-process: keep every per-task
        result the pool did deliver, evaluate the rest here."""
        partial = error.partial
        if partial is None:
            partial = [None] * len(tasks)
        self._shard_degrade(
            error, pending_tasks=sum(1 for result in partial if result is None)
        )
        delta_env = None
        if delta is not None:
            delta_env = {
                name: GeneralizedRelation(*self.schemas[name], tuples=tuples)
                for name, tuples in delta.items()
            }
        per_task = []
        for (index, position), done in zip(tasks, partial):
            if done is not None:
                per_task.append(done)
                continue
            evaluator = evaluators[index]
            if position is None:
                relation = evaluator.evaluate(env, complements=complements)
            else:
                relation = evaluator.evaluate(
                    env,
                    delta=delta_env,
                    delta_position=position,
                    complements=complements,
                )
            per_task.append(list(relation.tuples))
        return per_task
