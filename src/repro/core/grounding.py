"""Ground tuple-at-a-time evaluation of T_P over a bounded window.

This is the computation the paper argues is hopeless on infinite
extensions (Section 4.3): the mapping T_P applied one ground tuple at
a time.  Restricted to a finite window ``[low, high)`` of the temporal
domain it terminates and serves two purposes here:

* an **oracle** — on window interiors it must agree with the
  closed-form engine, which is how the test suite cross-validates the
  whole pipeline;
* the **baseline** of experiment E6 — its cost grows with the window
  while the generalized-tuple evaluation does not.

Window semantics: every derived atom whose temporal components all lie
inside the window is kept; derivations that leave the window are
dropped.  Near the upper edge the fixpoint therefore under-approximates
the true model; comparisons should use an interior margin of at least
the largest clause offset times the number of rounds needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ast import ConstraintAtom, PredicateAtom
from repro.util.errors import EvaluationError

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "=": lambda a, b: a == b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
}


@dataclass
class GroundStats:
    """Counters for one ground fixpoint run."""

    rounds: int = 0
    derivations: int = 0
    atoms: int = 0
    atoms_per_round: list = field(default_factory=list)


class GroundEvaluator:
    """Naive ground bottom-up evaluation within ``[low, high)``.

    Ground atoms are ``(times, data)`` pairs of tuples.  Clauses must
    be range restricted for ground evaluation: every temporal variable
    of the head and of constraint atoms has to occur in some body
    predicate atom (otherwise it would range over the whole window —
    the generalized engine handles that case; this baseline does not).
    """

    def __init__(self, program, edb, low, high):
        program.validate()
        self.program = program
        self.low = low
        self.high = high
        self.facts = {}
        for name in program.extensional_predicates():
            relation = edb.relation(name)
            atoms = set()
            for flat in relation.extension(low, high):
                times = flat[: relation.temporal_arity]
                data = flat[relation.temporal_arity :]
                atoms.add((times, data))
            self.facts[name] = atoms
        for name in program.intensional_predicates():
            self.facts.setdefault(name, set())
        self._check_range_restriction()

    def _check_range_restriction(self):
        for clause in self.program.clauses:
            bound = set()
            for atom in clause.predicate_atoms():
                bound |= atom.temporal_variables()
            needed = clause.head.temporal_variables()
            for constraint in clause.constraint_atoms():
                needed |= constraint.temporal_variables()
            missing = needed - bound
            if missing:
                raise EvaluationError(
                    "clause %s is not range restricted for ground "
                    "evaluation (unbound temporal variables: %s)"
                    % (clause, ", ".join(sorted(missing)))
                )

    # -- evaluation ----------------------------------------------------------

    def run(self, max_rounds=10_000):
        """Iterate T_P to fixpoint within the window; returns stats."""
        stats = GroundStats()
        for round_number in range(1, max_rounds + 1):
            stats.rounds = round_number
            added = False
            for clause in self.program.clauses:
                for times, data in self._fire(clause, stats):
                    atom = (times, data)
                    if atom not in self.facts[clause.head.predicate]:
                        self.facts[clause.head.predicate].add(atom)
                        added = True
            stats.atoms = sum(len(atoms) for atoms in self.facts.values())
            stats.atoms_per_round.append(stats.atoms)
            if not added:
                break
        return stats

    def _fire(self, clause, stats):
        """All head atoms derivable from one clause instance sweep."""
        results = []
        body = clause.predicate_atoms()
        constraints = clause.constraint_atoms()

        def evaluate_term(term, theta):
            if term.var is None:
                return term.offset
            value = theta.get(term.var)
            if value is None:
                return None
            return value + term.offset

        def recurse(index, theta):
            if index == len(body):
                for constraint in constraints:
                    left = evaluate_term(constraint.left, theta)
                    right = evaluate_term(constraint.right, theta)
                    if not _OPS[constraint.op](left, right):
                        return
                stats.derivations += 1
                times = []
                for term in clause.head.temporal_args:
                    value = evaluate_term(term, theta)
                    if not (self.low <= value < self.high):
                        return
                    times.append(value)
                data = []
                for term in clause.head.data_args:
                    data.append(theta[term.name] if term.is_variable() else term.value)
                results.append((tuple(times), tuple(data)))
                return
            atom = body[index]
            for times, data in self.facts[atom.predicate]:
                theta_new = dict(theta)
                if self._unify(atom, times, data, theta_new):
                    recurse(index + 1, theta_new)

        recurse(0, {})
        return results

    @staticmethod
    def _unify(atom, times, data, theta):
        for term, value in zip(atom.temporal_args, times):
            if term.var is None:
                if value != term.offset:
                    return False
            else:
                expected = theta.get(term.var)
                actual = value - term.offset
                if expected is None:
                    theta[term.var] = actual
                elif expected != actual:
                    return False
        for term, value in zip(atom.data_args, data):
            if term.is_variable():
                expected = theta.get(term.name)
                if expected is None:
                    theta[term.name] = value
                elif expected != value:
                    return False
            elif term.value != value:
                return False
        return True

    # -- results ------------------------------------------------------------------

    def extension(self, predicate):
        """The ground atoms of a predicate as a set of flat tuples
        ``times + data`` (matching
        :meth:`~repro.gdb.relation.GeneralizedRelation.extension`)."""
        return {times + data for (times, data) in self.facts[predicate]}
