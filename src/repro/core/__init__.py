"""The paper's deductive language over generalized databases (Section 4).

This is the primary contribution of Baudinet, Niézette & Wolper: a
Horn-clause language in which every predicate may carry **any number**
of temporal arguments interpreted over ℤ (plus uninterpreted data
arguments), with the interpreted order ``<``, equality, the constant 0
and the ``+1``/``-1`` functions on temporal terms — "Datalog over
integer order with successor and predecessor".

Modules
-------
* :mod:`repro.core.ast` — terms, atoms, clauses, programs.
* :mod:`repro.core.parser` — concrete syntax
  (``problems(t1+2, t2+2; "database") <- course(t1, t2; "database").``).
* :mod:`repro.core.transform` — the *generalized program*
  transformation of Section 4.3: constant elimination and head/body
  normalization so that every predicate atom carries distinct fresh
  temporal variables linked by constraint atoms.
* :mod:`repro.core.evaluation` — the T_GP mapping: bottom-up,
  generalized-tuple-at-a-time evaluation on the relational algebra,
  naive and semi-naive.
* :mod:`repro.core.safety` — free-extension safety (Theorem 4.2) and
  constraint safety (Theorem 4.3), the paper's termination criteria.
* :mod:`repro.core.engine` — the user-facing
  :class:`~repro.core.engine.DeductiveEngine` with the give-up policy
  the paper recommends when constraint safety is never reached.
* :mod:`repro.core.grounding` — the ground tuple-at-a-time T_P
  evaluation over bounded windows, used as an oracle and as the
  baseline the paper argues against.
"""

from repro.core.ast import (
    Clause,
    ConstraintAtom,
    DataTerm,
    NegatedAtom,
    PredicateAtom,
    Program,
    TemporalTerm,
)
from repro.core.parser import parse_clause, parse_program
from repro.core.engine import DeductiveEngine, EvaluationStats, Model
from repro.core.grounding import GroundEvaluator
from repro.core.stratify import stratify

__all__ = [
    "TemporalTerm",
    "DataTerm",
    "PredicateAtom",
    "NegatedAtom",
    "ConstraintAtom",
    "Clause",
    "Program",
    "parse_clause",
    "parse_program",
    "DeductiveEngine",
    "EvaluationStats",
    "Model",
    "GroundEvaluator",
    "stratify",
]
