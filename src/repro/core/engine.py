"""The user-facing bottom-up engine with the paper's give-up policy.

:class:`DeductiveEngine` runs the T_GP fixpoint of Section 4.3 on a
program and a generalized EDB.  Each round it derives tuples with
every clause, discards the ones already covered (the constraint-safety
test of Theorem 4.3 applied tuple-by-tuple), and stops successfully
when a round derives nothing new.  Free-extension safety (Theorem 4.2)
is tracked for diagnostics; once the free-signature set has been
stable for ``patience`` rounds while tuples still keep arriving, the
engine gives up — exactly the policy the paper recommends ("it is
reasonable to give up on the computation if the interpretation does
not become constraint safe after a few iterations").

Beyond the paper's give-up policy the engine is resource-governed
(:mod:`repro.runtime`): a run can carry a hard
:class:`~repro.runtime.budget.EvaluationBudget` (wall-clock deadline,
round / accepted-tuple / derived-work caps, checked cooperatively every
round and every clause firing), write round-granular checkpoints that
:meth:`DeductiveEngine.run` can resume bit-identically, and degrade
gracefully: every early exit — give-up, budget, or an unexpected crash
mid-fixpoint — surfaces as a typed
:class:`~repro.util.errors.PartialResultError` carrying the queryable
partial model and the statistics accumulated so far.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.evaluation import ProgramEvaluator
from repro.core.safety import (
    CoverageChecker,
    coverage_test,
    free_signatures,
    is_free_extension_safe,
)
from repro.runtime.checkpoint import (
    Checkpoint,
    engine_fingerprint,
    load_checkpoint,
    write_checkpoint,
)
from repro.util import hooks
from repro.util.errors import (
    BudgetExceededError,
    CheckpointError,
    EvaluationAbortedError,
    EvaluationError,
    GiveUpError,
    PartialResultError,
)
from repro.util.hooks import fault_point

#: The ``parallelism="auto"`` governor's cost model.  A sharded round
#: saves at most ``t_round * (W-1)/W`` of sequential derivation time
#: and pays roughly ``W * AUTO_DISPATCH_OVERHEAD_S`` of dispatch /
#: merge overhead per round; the governor upshifts only when the
#: saving clears the overhead with an ``AUTO_ACTIVATION_MARGIN``
#: cushion, so marginal workloads stay on the (never-slower)
#: sequential path.  The overhead constant is calibrated against
#: ``benchmarks/parallel_bench.py`` on a warm pool.
AUTO_DISPATCH_OVERHEAD_S = 0.002
AUTO_ACTIVATION_MARGIN = 2.0


@dataclass
class EvaluationStats:
    """Bookkeeping for one engine run.

    ``rounds`` counts T_GP applications; ``new_tuples_per_round`` the
    accepted (not-covered) tuples each round; ``signature_stable_round``
    is the first round after which no new free signature appeared
    (1-based; 0 when the EDB signatures already cover everything);
    ``constraint_safe`` reports successful Theorem-4.3 termination;
    ``gave_up`` the paper's give-up exit; ``budget_exceeded`` a
    resource-budget exit.  ``resumed_from_round`` is the global round
    count restored from a checkpoint (``None`` for fresh runs) and
    ``checkpoints_written`` the number of snapshots this run persisted.

    Timing is segment-aware: ``elapsed_seconds`` accumulates across
    resume (the checkpointed run's elapsed time plus this segment's),
    ``prior_elapsed_seconds`` is the part inherited from the
    checkpoint (0.0 for fresh runs), and their difference — reported as
    ``segment_elapsed_seconds`` in :meth:`to_dict` — is the
    post-resume segment alone.

    ``shard_degraded`` is ``None`` unless a parallel run lost its whole
    shard pool beyond healing and downshifted to sequential mid-run; it
    then carries the reason/restart diagnostics.  :meth:`to_dict`
    includes the key only when set, so the report and checkpoint
    payloads of healthy parallel runs stay byte-identical to
    sequential ones (worker losses that were *healed* never touch the
    stats — they surface only as ``shard.worker`` trace events).

    ``maintain_degraded`` is the incremental maintainer's rung on the
    same ladder (:mod:`repro.edb.maintain`): ``None`` unless a delta
    batch fell back to a from-scratch recompute, in which case it
    carries the reason (schema change, rederive budget, negation) and
    the batch's delta counts; again included in :meth:`to_dict` only
    when set.

    ``magic_degraded`` is the goal-directed path's rung
    (:mod:`repro.plan.magic`): ``None`` unless a query asked for the
    magic rewrite and had to fall back to the full fixpoint, in which
    case it carries the goal and the reason; included in
    :meth:`to_dict` only when set.

    ``parallel_auto`` records the ``parallelism="auto"`` governor's
    decision (upshift to N workers at a given round, or stay
    sequential and why); ``None`` — and absent from :meth:`to_dict` —
    for fixed-parallelism runs, so their payloads are untouched.
    """

    strategy: str = "semi-naive"
    safety_mode: str = "paper"
    strata: int = 1
    rounds: int = 0
    new_tuples_per_round: List[int] = field(default_factory=list)
    derived_tuples_per_round: List[int] = field(default_factory=list)
    signature_stable_round: Optional[int] = None
    constraint_safe: bool = False
    gave_up: bool = False
    budget_exceeded: bool = False
    free_extension_safe_checked: Optional[bool] = None
    elapsed_seconds: float = 0.0
    prior_elapsed_seconds: float = 0.0
    resumed_from_round: Optional[int] = None
    checkpoints_written: int = 0
    shard_degraded: Optional[dict] = None
    maintain_degraded: Optional[dict] = None
    magic_degraded: Optional[dict] = None
    parallel_auto: Optional[dict] = None

    def total_new_tuples(self):
        """Tuples accepted into the model across all rounds."""
        return sum(self.new_tuples_per_round)

    def to_dict(self):
        """A JSON-safe dict of every field (powers the CLI ``--json``
        report and the checkpoint format)."""
        payload = {
            "strategy": self.strategy,
            "safety_mode": self.safety_mode,
            "strata": self.strata,
            "rounds": self.rounds,
            "new_tuples_per_round": list(self.new_tuples_per_round),
            "derived_tuples_per_round": list(self.derived_tuples_per_round),
            "total_new_tuples": self.total_new_tuples(),
            "signature_stable_round": self.signature_stable_round,
            "constraint_safe": self.constraint_safe,
            "gave_up": self.gave_up,
            "budget_exceeded": self.budget_exceeded,
            "free_extension_safe_checked": self.free_extension_safe_checked,
            "elapsed_seconds": self.elapsed_seconds,
            "prior_elapsed_seconds": self.prior_elapsed_seconds,
            "segment_elapsed_seconds": max(
                0.0, self.elapsed_seconds - self.prior_elapsed_seconds
            ),
            "resumed_from_round": self.resumed_from_round,
            "checkpoints_written": self.checkpoints_written,
        }
        if self.shard_degraded is not None:
            payload["shard_degraded"] = dict(self.shard_degraded)
        if self.maintain_degraded is not None:
            payload["maintain_degraded"] = dict(self.maintain_degraded)
        if self.magic_degraded is not None:
            payload["magic_degraded"] = dict(self.magic_degraded)
        if self.parallel_auto is not None:
            payload["parallel_auto"] = dict(self.parallel_auto)
        return payload

    def restore_progress(self, payload):
        """Adopt the *progress* fields of a checkpointed stats dict.

        Outcome flags (``constraint_safe``, ``gave_up``, …) restart
        with the resumed run; the monotone progress counters carry
        over, and so does accumulated wall time: the checkpointed
        ``elapsed_seconds`` (itself cumulative across earlier resumes)
        becomes this run's ``prior_elapsed_seconds``, so a resumed
        run's final ``elapsed_seconds`` covers every segment instead of
        silently dropping the pre-resume work.
        """
        self.rounds = payload["rounds"]
        self.new_tuples_per_round = list(payload["new_tuples_per_round"])
        self.derived_tuples_per_round = list(payload["derived_tuples_per_round"])
        self.signature_stable_round = payload["signature_stable_round"]
        self.prior_elapsed_seconds = payload.get("elapsed_seconds", 0.0)
        self.elapsed_seconds = self.prior_elapsed_seconds


class Model:
    """The result of an engine run: the IDB relations plus stats."""

    def __init__(self, relations, stats, edb=None):
        self._relations = dict(relations)
        self.stats = stats
        self._edb = edb

    def predicates(self):
        """The intensional predicate names."""
        return sorted(self._relations)

    def relation(self, name):
        """The closed-form relation computed for ``name``."""
        return self._relations[name]

    def extension(self, name, low, high):
        """Ground tuples of ``name`` within the window ``[low, high)``."""
        return self.relation(name).extension(low, high)

    def query(self, formula):
        """Evaluate a first-order query (text or AST) over this model's
        IDB together with the EDB it was computed from — deduction once,
        querying many times (the paper's Section 1 argument)."""
        from repro.fo import evaluate_query
        from repro.gdb.database import GeneralizedDatabase

        edb = self._edb if self._edb is not None else GeneralizedDatabase()
        return evaluate_query(edb, formula, extra_relations=self._relations)

    def as_database(self):
        """The model as a :class:`GeneralizedDatabase` — the paper's
        "closed form": derived predicates become ordinary generalized
        relations that can be stored, re-parsed, and queried without
        re-running the deduction (its Section 1 argument for computing
        the explicit form "once and for all")."""
        from repro.gdb.database import GeneralizedDatabase

        db = GeneralizedDatabase()
        for name in self.predicates():
            relation = self.relation(name)
            db.declare(name, relation.temporal_arity, relation.data_arity)
            db.set_relation(name, relation)
        return db

    def equivalent(self, other):
        """Exact extension equality with another model, predicate by
        predicate — the resilience tests' oracle: a retried run that
        resumed from a checkpoint must be ``equivalent()`` to an
        uninterrupted one."""
        if self.predicates() != other.predicates():
            return False
        return all(
            self.relation(name).equivalent(other.relation(name))
            for name in self.predicates()
        )

    def __getitem__(self, name):
        return self.relation(name)

    def __contains__(self, name):
        return name in self._relations

    def __str__(self):
        chunks = []
        for name in self.predicates():
            chunks.append("%s %s" % (name, self.relation(name)))
        return "\n".join(chunks)


class DeductiveEngine:
    """Closed-form bottom-up evaluation of a deductive program.

    Parameters
    ----------
    program:
        A :class:`~repro.core.ast.Program` (see
        :func:`~repro.core.parser.parse_program`).
    edb:
        A :class:`~repro.gdb.database.GeneralizedDatabase` providing
        every extensional predicate.
    strategy:
        ``"semi-naive"`` (default) or ``"naive"``.
    safety:
        Coverage test for accepting/stopping: ``"paper"`` (Theorem 4.3,
        same-free-extension implication) or ``"semantic"`` (full
        extension containment; ablation).
    max_rounds:
        Hard iteration cap.
    patience:
        Give-up budget: extra rounds allowed after the free-signature
        set stops growing.  ``None`` disables the give-up policy (only
        ``max_rounds`` limits the run).
    on_give_up:
        ``"raise"`` (default) raises
        :class:`~repro.util.errors.GiveUpError` carrying the partial
        model; ``"partial"`` returns the partial model with
        ``stats.gave_up`` set.
    evaluation:
        Clause-evaluation backend: ``"compiled"`` (default; the plan
        layer of :mod:`repro.plan`) or ``"reference"`` (the
        paper-literal product-then-select oracle).
    parallelism:
        Number of processes evaluating each round's clause-variant
        firings (default 1: the sequential path, untouched).  With
        ``parallelism >= 2`` the firings are sharded across a process
        pool (:mod:`repro.plan.shard`) and merged in sequential firing
        order, so the model, the stats, and the checkpoint fingerprints
        are bit-identical to a sequential run; budget deadlines are
        enforced at shard boundaries instead of between firings.  The
        pool is supervised: crashed/hung workers are detected, their
        task slices retried on survivors or respawned replacements, and
        the invariant holds no matter which workers die when.
        ``"auto"`` starts sequential and measures: when a round's
        derivation time can pay for the measured dispatch overhead
        (and the host has at least 2 CPUs), the run upshifts to a pool
        mid-stratum — otherwise it never pays the sharding tax at all.
        The decision lands in ``stats.parallel_auto``.
    auto_parallelism_cap:
        Upper bound on the worker count an ``"auto"`` upshift may
        choose (default: min(cores, 4)); ignored for fixed counts.
    shard_recv_deadline:
        Seconds a silent-but-alive shard worker is waited on mid-round
        before being declared hung and killed (default
        :data:`repro.plan.shard.DEFAULT_RECV_DEADLINE`).
    shard_max_restarts:
        Shard-worker respawns allowed per run before a lost worker
        stays lost (default
        :data:`repro.plan.shard.DEFAULT_MAX_RESTARTS`).
    shard_fallback:
        When the whole pool is lost beyond healing, finish the run
        sequentially in-process instead of failing it (default True;
        the downshift is recorded in ``stats.shard_degraded`` and as a
        ``shard.degraded`` event).  With False the loss raises
        :class:`~repro.util.errors.EvaluationAbortedError`.
    coverage_cache:
        Memoize coverage verdicts across rounds on the growing IDB
        relations (default True; ``"paper"`` safety mode only).  The
        cache changes which tests call ``implied_by_union`` — never
        their outcome; pass False for the exact call-for-call
        behavior of earlier releases.

    >>> from repro.core import DeductiveEngine, parse_program
    >>> from repro.gdb import parse_database
    >>> edb = parse_database('''
    ...   relation course[2; 1] {
    ...     (168n+8, 168n+10; "database") where T2 = T1 + 2;
    ...   }''')
    >>> program = parse_program('''
    ...   problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
    ...   problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
    ... ''')
    >>> model = DeductiveEngine(program, edb).run()
    >>> model.relation("problems").contains_point((10, 12), ("database",))
    True
    """

    def __init__(
        self,
        program,
        edb,
        strategy="semi-naive",
        safety="paper",
        max_rounds=500,
        patience=10,
        on_give_up="raise",
        evaluation="compiled",
        parallelism=1,
        coverage_cache=True,
        shard_recv_deadline=None,
        shard_max_restarts=None,
        shard_fallback=True,
        shard_poll_floor=None,
        shard_poll_ceiling=None,
        auto_parallelism_cap=None,
    ):
        if strategy not in ("naive", "semi-naive"):
            raise ValueError("strategy must be 'naive' or 'semi-naive'")
        if on_give_up not in ("raise", "partial"):
            raise ValueError("on_give_up must be 'raise' or 'partial'")
        self.program = program
        self.edb = edb
        self.strategy = strategy
        self.safety = safety
        self.max_rounds = max_rounds
        self.patience = patience
        self.on_give_up = on_give_up
        self.coverage_cache = bool(coverage_cache)
        self._covered = coverage_test(safety)
        self.evaluator = ProgramEvaluator(
            program,
            edb,
            evaluation=evaluation,
            parallelism=parallelism,
            shard_recv_deadline=shard_recv_deadline,
            shard_max_restarts=shard_max_restarts,
            shard_fallback=shard_fallback,
            shard_poll_floor=shard_poll_floor,
            shard_poll_ceiling=shard_poll_ceiling,
            auto_parallelism_cap=auto_parallelism_cap,
        )

    @property
    def parallelism(self):
        """The configured shard count (1 = sequential)."""
        return self.evaluator.parallelism

    # -- public API -------------------------------------------------------

    def fingerprint(self):
        """The digest checkpoints are stamped with: program text, EDB
        text, strategy, safety mode, and the compiled plans must all
        match for a resume — a plan-layer change that would alter
        derivation order invalidates old checkpoints instead of
        silently replaying differently.

        ``parallelism`` and ``coverage_cache`` are deliberately *not*
        hashed: neither changes a single derived tuple, so a checkpoint
        written by a sequential run resumes under a parallel one (and
        vice versa) with the same fingerprint."""
        return engine_fingerprint(
            str(self.program),
            str(self.edb),
            self.strategy,
            self.safety,
            self.evaluator.plan_fingerprint(),
        )

    def run(
        self,
        check_free_extension_safety=False,
        budget=None,
        checkpoint_every=None,
        checkpoint_path=None,
        resume_from=None,
    ):
        """Run to constraint safety, give-up, budget, or the round cap.

        With ``check_free_extension_safety`` the paper-literal
        Theorem-4.2 test is evaluated on the final interpretation and
        recorded in the stats (it costs one extra T_GP round).

        ``budget`` is an optional
        :class:`~repro.runtime.budget.EvaluationBudget`; when a limit
        trips, :class:`~repro.util.errors.BudgetExceededError` is raised
        with the partial model attached.  ``checkpoint_every=N`` with
        ``checkpoint_path`` writes a resumable snapshot after every Nth
        round of each stratum; ``resume_from`` restores such a snapshot
        (same program, EDB, strategy, and safety mode required) and
        continues mid-stratum, replaying bit-identically to an
        uninterrupted run.  Any other exception escaping the fixpoint is
        wrapped in :class:`~repro.util.errors.EvaluationAbortedError`,
        again with the partial model attached.
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be a positive round count")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")
        stats = EvaluationStats(strategy=self.strategy, safety_mode=self.safety)
        # A degraded pool belongs to the run that lost it; a fresh run
        # gets a fresh shot at parallelism.  Likewise an auto-mode
        # upshift: each run re-measures from the sequential baseline.
        self.evaluator.shard_degraded = None
        self.evaluator.parallel_auto = None
        if self.evaluator.parallelism_mode == "auto":
            self.evaluator.parallelism = 1
        started = time.perf_counter()
        meter = budget.start() if budget is not None else None
        checker = CoverageChecker(self.safety, use_cache=self.coverage_cache)
        env = self.evaluator.initial_environment()
        known_signatures = {
            name: free_signatures(env[name]) for name in self.evaluator.intensional
        }
        stats.strata = self.evaluator.stratum_count()
        start_stratum = 0
        resume = None

        if resume_from is not None:
            resume = load_checkpoint(resume_from)
            if resume.fingerprint != self.fingerprint():
                raise CheckpointError(
                    "checkpoint was written by a different program/EDB/"
                    "configuration (fingerprint mismatch)"
                )
            for name, relation in resume.env.items():
                if name not in self.evaluator.intensional:
                    raise CheckpointError(
                        "checkpoint carries unknown intensional predicate %r" % name
                    )
                env[name] = relation
            for name, signatures in resume.known_signatures.items():
                known_signatures[name] = set(signatures)
            stats.restore_progress(resume.stats)
            stats.resumed_from_round = stats.rounds
            start_stratum = resume.stratum_index

        last_signature_growth = 0
        strata = self.evaluator.stratum_evaluators
        if hooks.SINKS:
            hooks.emit(
                "engine.run",
                {
                    "phase": "begin",
                    "strategy": self.strategy,
                    "safety": self.safety,
                    "strata": len(strata),
                    "resumed_from_round": stats.resumed_from_round,
                },
            )
        try:
            stratum_index = start_stratum
            while stratum_index < len(strata):
                evaluators = strata[stratum_index]
                if meter is not None:
                    # Deadline-only check at the stratum boundary (no
                    # budget.charge event, so parallel/sequential event
                    # streams stay identical).
                    meter.tick_stratum()
                if hooks.SINKS:
                    hooks.emit(
                        "engine.stratum",
                        {
                            "phase": "begin",
                            "stratum": stratum_index,
                            "clauses": len(evaluators),
                        },
                    )
                if resume is not None and stratum_index == start_stratum:
                    complements = dict(resume.complements)
                    delta = None if resume.delta is None else dict(resume.delta)
                    rounds_done = resume.rounds_in_stratum
                    last_growth = resume.last_growth
                else:
                    complements = self.evaluator.complements_for(evaluators, env)
                    delta = None
                    rounds_done = 0
                    last_growth = stats.rounds
                stratum_closed = self._run_stratum(
                    evaluators,
                    complements,
                    env,
                    known_signatures,
                    stats,
                    stratum_index=stratum_index,
                    delta=delta,
                    rounds_done=rounds_done,
                    last_growth=last_growth,
                    meter=meter,
                    checkpoint_every=checkpoint_every,
                    checkpoint_path=checkpoint_path,
                    run_started=started,
                    checker=checker,
                )
                last_signature_growth = stats.signature_stable_round
                if hooks.SINKS:
                    hooks.emit(
                        "engine.stratum",
                        {
                            "phase": "end",
                            "stratum": stratum_index,
                            "closed": stratum_closed,
                            "rounds": stats.rounds,
                        },
                    )
                if not stratum_closed:
                    stats.gave_up = True
                    break
                stratum_index += 1
            else:
                stats.constraint_safe = True
        except BudgetExceededError as error:
            stats.budget_exceeded = True
            stats.elapsed_seconds = stats.prior_elapsed_seconds + (
                time.perf_counter() - started
            )
            error.partial_model = self._partial_model(env, stats)
            error.stats = stats
            self._emit_run_end(stats, "budget-exceeded")
            raise
        except PartialResultError:
            self._emit_run_end(stats, "aborted")
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            stats.elapsed_seconds = stats.prior_elapsed_seconds + (
                time.perf_counter() - started
            )
            self._emit_run_end(stats, "aborted")
            raise EvaluationAbortedError(
                "evaluation aborted during round %d: %s" % (stats.rounds, error),
                partial_model=self._partial_model(env, stats),
                stats=stats,
            ) from error
        finally:
            # Shard workers live for one run; a later run restarts them.
            self.evaluator.close_parallel()

        stats.elapsed_seconds = stats.prior_elapsed_seconds + (
            time.perf_counter() - started
        )

        if self.evaluator.parallelism_mode == "auto":
            if self.evaluator.parallel_auto is None:
                # The governor never saw a round worth sharding.
                self.evaluator.parallel_auto = {
                    "decision": "sequential",
                    "reason": "below-threshold",
                }
            if stats.parallel_auto is None:
                stats.parallel_auto = dict(self.evaluator.parallel_auto)

        if check_free_extension_safety:
            stats.free_extension_safe_checked = is_free_extension_safe(
                self.evaluator, env
            )

        self._emit_run_end(stats, "gave-up" if stats.gave_up else "ok")
        try:
            model = self._partial_model(env, stats)
        except (KeyboardInterrupt, SystemExit, PartialResultError):
            raise
        except Exception as error:
            # A fault during final normalization (e.g. an injected
            # dbm_canonicalize fault whose hit count lands here) gets
            # the same typed wrapping as one during the rounds.
            raise EvaluationAbortedError(
                "evaluation aborted while finalizing the model: %s" % error,
                partial_model=self._partial_model(env, stats, best_effort=True),
                stats=stats,
            ) from error
        if stats.gave_up and self.on_give_up == "raise":
            raise GiveUpError(
                "bottom-up evaluation did not reach constraint safety "
                "within its budget (%d rounds, free signatures stable "
                "since round %d)" % (stats.rounds, last_signature_growth),
                partial_model=model,
                stats=stats,
            )
        return model

    def run_goal_directed(self, goal, budget=None, widen_delay=None):
        """Evaluate goal-directedly for ``goal`` (a
        :class:`~repro.plan.magic.QueryGoal`) via the magic-set rewrite,
        falling back to the full fixpoint — with the degradation
        recorded in ``stats.magic_degraded`` — when the rewrite cannot
        apply.  Returns ``(model, info)``; see
        :func:`~repro.plan.magic.goal_directed_model`.

        The rewritten program always runs sequentially: demand
        predicates are internal names the shard pool's program
        round-trip does not guarantee to preserve, and goal-directed
        runs are small by construction.
        """
        from repro.plan.magic import DEFAULT_WIDEN_DELAY, goal_directed_model

        return goal_directed_model(
            self.program,
            self.edb,
            goal,
            evaluation=self.evaluator.evaluation,
            strategy=self.strategy,
            safety=self.safety,
            max_rounds=self.max_rounds,
            patience=self.patience,
            on_give_up=self.on_give_up,
            budget=budget,
            coverage_cache=self.coverage_cache,
            widen_delay=(
                DEFAULT_WIDEN_DELAY if widen_delay is None else widen_delay
            ),
        )

    def maintain(self, relations, delta=None, budget=None):
        """Continue the fixpoint from a warm intensional state instead
        of the empty one — the engine entry point of incremental
        maintenance (:mod:`repro.edb.maintain`).

        ``relations`` maps intensional predicate names to relations
        that are a *sound under-approximation* of the least fixpoint
        over this engine's (already updated) EDB: the previous
        materialization when only inserts happened, or the
        DRed-surviving state after overdeletion.  ``delta`` maps
        predicate names — intensional **or extensional** — to the
        tuples that are new relative to the state ``relations`` was
        computed against; those tuples must already be present in the
        EDB/``relations`` (the semi-naive invariant).  The first round
        then fires each clause at every body position holding a delta
        predicate (:meth:`ProgramEvaluator.maintenance_round`); later
        rounds are ordinary semi-naive rounds over the fresh tuples.
        ``delta=None`` instead makes the first round a full naive
        round — the DRed rederivation restart.

        Only single-stratum programs without negation can be grown
        from a warm state (non-monotone strata would have to be
        recomputed anyway); anything else raises
        :class:`~repro.util.errors.EvaluationError`, which the
        maintainer treats as "recompute from scratch".  Give-up,
        budget, and abort behavior mirror :meth:`run`.
        """
        if self.evaluator.stratum_count() > 1:
            raise EvaluationError(
                "incremental maintenance requires a single stratum "
                "(program has %d)" % self.evaluator.stratum_count()
            )
        for evaluator in self.evaluator.evaluators:
            if evaluator.normalized.negated_atoms:
                raise EvaluationError(
                    "incremental maintenance cannot warm-start clauses "
                    "with negation: %s" % evaluator.normalized
                )
        stats = EvaluationStats(strategy="semi-naive", safety_mode=self.safety)
        stats.strata = 1
        started = time.perf_counter()
        meter = budget.start() if budget is not None else None
        checker = CoverageChecker(self.safety, use_cache=self.coverage_cache)
        env = self.evaluator.initial_environment()
        for name, relation in relations.items():
            if name not in self.evaluator.intensional:
                raise EvaluationError(
                    "maintained state carries unknown intensional "
                    "predicate %r" % name
                )
            env[name] = relation
        known_signatures = {
            name: free_signatures(env[name]) for name in self.evaluator.intensional
        }
        evaluators = self.evaluator.stratum_evaluators[0]
        last_growth = 0
        if delta is not None:
            delta = {name: list(tuples) for name, tuples in delta.items() if tuples}
            if not delta:
                # Nothing changed relative to the warm state.
                stats.constraint_safe = True
                stats.elapsed_seconds = time.perf_counter() - started
                return self._partial_model(env, stats)
        try:
            while stats.rounds < self.max_rounds:
                stats.rounds += 1
                fault_point("round")
                if meter is not None:
                    meter.charge_round()
                if delta is None:
                    derived = self.evaluator.naive_round(
                        env, evaluators=evaluators, meter=meter
                    )
                else:
                    derived = self.evaluator.maintenance_round(env, delta, meter=meter)
                stats.derived_tuples_per_round.append(
                    sum(len(ts) for ts in derived.values())
                )
                fresh = checker.sweep(derived, env)
                accepted = sum(len(ts) for ts in fresh.values())
                stats.new_tuples_per_round.append(accepted)
                if not fresh:
                    stats.constraint_safe = True
                    stats.signature_stable_round = last_growth
                    break
                grew_signatures = False
                for predicate, tuples in fresh.items():
                    env[predicate] = env[predicate].with_tuples(tuples)
                    for gt in tuples:
                        if gt.free_signature() not in known_signatures[predicate]:
                            known_signatures[predicate].add(gt.free_signature())
                            grew_signatures = True
                if grew_signatures:
                    last_growth = stats.rounds
                delta = fresh
                if meter is not None:
                    meter.charge_accepted(accepted)
                if (
                    self.patience is not None
                    and stats.rounds - last_growth >= self.patience
                ):
                    break
        except BudgetExceededError as error:
            stats.budget_exceeded = True
            stats.elapsed_seconds = time.perf_counter() - started
            error.partial_model = self._partial_model(env, stats)
            error.stats = stats
            raise
        except (KeyboardInterrupt, SystemExit, PartialResultError):
            raise
        except Exception as error:
            stats.elapsed_seconds = time.perf_counter() - started
            raise EvaluationAbortedError(
                "maintenance aborted during round %d: %s" % (stats.rounds, error),
                partial_model=self._partial_model(env, stats, best_effort=True),
                stats=stats,
            ) from error
        stats.elapsed_seconds = time.perf_counter() - started
        if stats.signature_stable_round is None:
            stats.signature_stable_round = last_growth
        if not stats.constraint_safe:
            stats.gave_up = True
        model = self._partial_model(env, stats)
        if stats.gave_up and self.on_give_up == "raise":
            raise GiveUpError(
                "incremental maintenance did not reach constraint safety "
                "within its budget (%d rounds)" % stats.rounds,
                partial_model=model,
                stats=stats,
            )
        return model

    def _emit_run_end(self, stats, outcome):
        if hooks.SINKS:
            hooks.emit(
                "engine.run",
                {
                    "phase": "end",
                    "outcome": outcome,
                    "rounds": stats.rounds,
                    "constraint_safe": stats.constraint_safe,
                    "elapsed_seconds": stats.elapsed_seconds,
                },
            )

    def _still_parallel(self, stats):
        """Re-check the shard pool after a parallel step: an unhealable
        pool loss flips the evaluator to degraded, and the rest of the
        run — this round's siblings, later rounds, later strata — runs
        on the sequential path the parent maintained all along."""
        if self.evaluator.shard_degraded is not None:
            stats.shard_degraded = dict(self.evaluator.shard_degraded)
            return False
        return True

    def _partial_model(self, env, stats, best_effort=False):
        """The (possibly partial) model for the current environment.

        With ``best_effort`` a failure during normalization (a fault
        plan can fire inside it) degrades to the raw relations instead
        of propagating — used when the model rides on an error that
        must not be displaced."""
        try:
            relations = {
                name: env[name].normalize() for name in self.evaluator.intensional
            }
        except Exception:
            if not best_effort:
                raise
            relations = {
                name: env[name] for name in self.evaluator.intensional
            }
        return Model(relations, stats, edb=self.edb)

    def _run_stratum(
        self,
        evaluators,
        complements,
        env,
        known_signatures,
        stats,
        stratum_index=0,
        delta=None,
        rounds_done=0,
        last_growth=None,
        meter=None,
        checkpoint_every=None,
        checkpoint_path=None,
        run_started=None,
        checker=None,
    ):
        """Fixpoint over one stratum's clauses; returns True when the
        stratum reached constraint safety, False on give-up/cap.

        ``rounds_done``/``delta``/``last_growth`` seed the loop when
        resuming from a mid-stratum checkpoint; ``run_started`` is the
        run's :func:`time.perf_counter` origin, consulted so checkpoints
        (and round events) carry live elapsed time."""
        if last_growth is None:
            last_growth = stats.rounds
        if checker is None:
            checker = CoverageChecker(self.safety, use_cache=self.coverage_cache)
        parallel = self.evaluator.parallel_active()
        pending_update = None
        if parallel:
            # Workers replicate the stratum context once, then stay in
            # sync from the per-round accepted-tuple updates.
            self.evaluator.parallel_begin_stratum(
                stratum_index, env, complements, delta
            )
            parallel = self._still_parallel(stats)
        # The auto governor: while undecided, time each sequential
        # round's derivation and upshift when it could pay for a pool.
        auto_undecided = (
            self.evaluator.parallelism_mode == "auto"
            and self.evaluator.parallel_auto is None
            and self.evaluator.shard_degraded is None
        )
        if auto_undecided and (os.cpu_count() or 1) < 2:
            decision = {"decision": "sequential", "reason": "single-cpu"}
            self.evaluator.parallel_auto = decision
            stats.parallel_auto = dict(decision)
            auto_undecided = False
        while rounds_done < self.max_rounds:
            rounds_done += 1
            stats.rounds += 1
            observing = bool(hooks.SINKS)
            if observing:
                round_started = time.perf_counter()
                hooks.emit(
                    "engine.round",
                    {
                        "phase": "begin",
                        "round": stats.rounds,
                        "stratum": stratum_index,
                        "strategy": self.strategy,
                    },
                )
            fault_point("round")
            if meter is not None:
                meter.charge_round()
            seminaive = self.strategy != "naive" and delta is not None
            if auto_undecided and not parallel:
                derive_started = time.perf_counter()
            if parallel:
                tasks = self.evaluator.round_tasks(
                    evaluators, delta if seminaive else None
                )
                derived = self.evaluator.parallel_round(
                    evaluators,
                    tasks,
                    pending_update,
                    env=env,
                    complements=complements,
                    delta=delta if seminaive else None,
                    meter=meter,
                )
                pending_update = None
                parallel = self._still_parallel(stats)
            elif seminaive:
                derived = self.evaluator.seminaive_round(
                    env, delta, evaluators=evaluators, complements=complements,
                    meter=meter,
                )
            else:
                derived = self.evaluator.naive_round(
                    env, evaluators=evaluators, complements=complements, meter=meter
                )
            if auto_undecided and not parallel:
                derive_seconds = time.perf_counter() - derive_started
            stats.derived_tuples_per_round.append(
                sum(len(ts) for ts in derived.values())
            )

            if observing:
                cache_hits, cache_misses = checker.hits, checker.misses
            fresh = checker.sweep(derived, env)

            accepted = sum(len(ts) for ts in fresh.values())
            stats.new_tuples_per_round.append(accepted)
            if observing:
                hooks.emit(
                    "coverage.cache",
                    {
                        "round": stats.rounds,
                        "stratum": stratum_index,
                        "enabled": checker.use_cache,
                        "hits": checker.hits - cache_hits,
                        "misses": checker.misses - cache_misses,
                    },
                )
                hooks.emit(
                    "engine.round",
                    {
                        "phase": "end",
                        "round": stats.rounds,
                        "stratum": stratum_index,
                        "derived": stats.derived_tuples_per_round[-1],
                        "accepted": accepted,
                        "duration_s": time.perf_counter() - round_started,
                    },
                )

            if not fresh:
                stats.signature_stable_round = last_growth
                self.evaluator.parallel_end_stratum()
                return True

            grew_signatures = False
            for predicate, tuples in fresh.items():
                env[predicate] = env[predicate].with_tuples(tuples)
                for gt in tuples:
                    if gt.free_signature() not in known_signatures[predicate]:
                        known_signatures[predicate].add(gt.free_signature())
                        grew_signatures = True
            if grew_signatures:
                last_growth = stats.rounds
            delta = fresh
            if parallel:
                # Workers apply this in the same (predicate, tuple)
                # order the parent just did, keeping replicas
                # bit-identical.
                pending_update = list(fresh.items())
            elif auto_undecided:
                workers = self.evaluator.auto_target_workers()
                saving = derive_seconds * (workers - 1) / workers
                threshold = (
                    AUTO_ACTIVATION_MARGIN * workers * AUTO_DISPATCH_OVERHEAD_S
                )
                if saving > threshold:
                    decision = {
                        "decision": "parallel",
                        "workers": workers,
                        "round": stats.rounds,
                        "round_seconds": derive_seconds,
                        "threshold_seconds": threshold,
                    }
                    self.evaluator.parallel_auto = decision
                    stats.parallel_auto = dict(decision)
                    auto_undecided = False
                    self.evaluator.resolve_auto_parallelism(workers)
                    # Mid-stratum upshift rides the same broadcast as a
                    # mid-stratum resume: the current env plus the
                    # in-flight delta; no pending update remains.
                    self.evaluator.parallel_begin_stratum(
                        stratum_index, env, complements, delta
                    )
                    pending_update = None
                    parallel = self._still_parallel(stats)

            if meter is not None:
                meter.charge_accepted(accepted)

            if checkpoint_every is not None and rounds_done % checkpoint_every == 0:
                if run_started is not None:
                    # Checkpoints must carry live cumulative elapsed
                    # time: restore_progress turns it into the resumed
                    # run's prior_elapsed_seconds.
                    stats.elapsed_seconds = stats.prior_elapsed_seconds + (
                        time.perf_counter() - run_started
                    )
                write_checkpoint(
                    checkpoint_path,
                    Checkpoint(
                        fingerprint=self.fingerprint(),
                        plan_fingerprint=self.evaluator.plan_fingerprint(),
                        stratum_index=stratum_index,
                        rounds_in_stratum=rounds_done,
                        last_growth=last_growth,
                        env={
                            name: env[name]
                            for name in self.evaluator.intensional
                        },
                        known_signatures=known_signatures,
                        stats=stats.to_dict(),
                        delta=delta,
                        complements=complements,
                    ),
                )
                stats.checkpoints_written += 1

            if (
                self.patience is not None
                and stats.rounds - last_growth >= self.patience
            ):
                break
        stats.signature_stable_round = last_growth
        self.evaluator.parallel_end_stratum()
        return False

    def trace(self, max_rounds=None, budget=None):
        """Yield ``(round_number, {predicate: [accepted tuples]})`` for
        each round, naive strategy — the form in which the paper prints
        the Example 4.1 computation.  Stops at constraint safety or the
        round cap per stratum (no give-up error).  An optional
        ``budget`` is charged per round and clause firing, raising
        :class:`~repro.util.errors.BudgetExceededError` (without a
        partial model — the tuples already yielded are the partial
        result)."""
        limit = max_rounds or self.max_rounds
        meter = budget.start() if budget is not None else None
        checker = CoverageChecker(self.safety, use_cache=self.coverage_cache)
        env = self.evaluator.initial_environment()
        round_number = 0
        for evaluators in self.evaluator.stratum_evaluators:
            complements = self.evaluator.complements_for(evaluators, env)
            for _ in range(limit):
                round_number += 1
                if meter is not None:
                    meter.charge_round()
                derived = self.evaluator.naive_round(
                    env, evaluators=evaluators, complements=complements, meter=meter
                )
                fresh = checker.sweep(derived, env)
                if not fresh:
                    break
                for predicate, tuples in fresh.items():
                    env[predicate] = env[predicate].with_tuples(tuples)
                yield round_number, fresh
