"""The user-facing bottom-up engine with the paper's give-up policy.

:class:`DeductiveEngine` runs the T_GP fixpoint of Section 4.3 on a
program and a generalized EDB.  Each round it derives tuples with
every clause, discards the ones already covered (the constraint-safety
test of Theorem 4.3 applied tuple-by-tuple), and stops successfully
when a round derives nothing new.  Free-extension safety (Theorem 4.2)
is tracked for diagnostics; once the free-signature set has been
stable for ``patience`` rounds while tuples still keep arriving, the
engine gives up — exactly the policy the paper recommends ("it is
reasonable to give up on the computation if the interpretation does
not become constraint safe after a few iterations").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.evaluation import ProgramEvaluator
from repro.core.safety import coverage_test, free_signatures, is_free_extension_safe
from repro.util.errors import GiveUpError


@dataclass
class EvaluationStats:
    """Bookkeeping for one engine run.

    ``rounds`` counts T_GP applications; ``new_tuples_per_round`` the
    accepted (not-covered) tuples each round; ``signature_stable_round``
    is the first round after which no new free signature appeared
    (1-based; 0 when the EDB signatures already cover everything);
    ``constraint_safe`` reports successful Theorem-4.3 termination;
    ``gave_up`` the paper's give-up exit.
    """

    strategy: str = "semi-naive"
    safety_mode: str = "paper"
    strata: int = 1
    rounds: int = 0
    new_tuples_per_round: list = field(default_factory=list)
    derived_tuples_per_round: list = field(default_factory=list)
    signature_stable_round: int = None
    constraint_safe: bool = False
    gave_up: bool = False
    free_extension_safe_checked: bool = None
    elapsed_seconds: float = 0.0

    def total_new_tuples(self):
        """Tuples accepted into the model across all rounds."""
        return sum(self.new_tuples_per_round)


class Model:
    """The result of an engine run: the IDB relations plus stats."""

    def __init__(self, relations, stats, edb=None):
        self._relations = dict(relations)
        self.stats = stats
        self._edb = edb

    def predicates(self):
        """The intensional predicate names."""
        return sorted(self._relations)

    def relation(self, name):
        """The closed-form relation computed for ``name``."""
        return self._relations[name]

    def extension(self, name, low, high):
        """Ground tuples of ``name`` within the window ``[low, high)``."""
        return self.relation(name).extension(low, high)

    def query(self, formula):
        """Evaluate a first-order query (text or AST) over this model's
        IDB together with the EDB it was computed from — deduction once,
        querying many times (the paper's Section 1 argument)."""
        from repro.fo import evaluate_query
        from repro.gdb.database import GeneralizedDatabase

        edb = self._edb if self._edb is not None else GeneralizedDatabase()
        return evaluate_query(edb, formula, extra_relations=self._relations)

    def as_database(self):
        """The model as a :class:`GeneralizedDatabase` — the paper's
        "closed form": derived predicates become ordinary generalized
        relations that can be stored, re-parsed, and queried without
        re-running the deduction (its Section 1 argument for computing
        the explicit form "once and for all")."""
        from repro.gdb.database import GeneralizedDatabase

        db = GeneralizedDatabase()
        for name in self.predicates():
            relation = self.relation(name)
            db.declare(name, relation.temporal_arity, relation.data_arity)
            db.set_relation(name, relation)
        return db

    def __getitem__(self, name):
        return self.relation(name)

    def __contains__(self, name):
        return name in self._relations

    def __str__(self):
        chunks = []
        for name in self.predicates():
            chunks.append("%s %s" % (name, self.relation(name)))
        return "\n".join(chunks)


class DeductiveEngine:
    """Closed-form bottom-up evaluation of a deductive program.

    Parameters
    ----------
    program:
        A :class:`~repro.core.ast.Program` (see
        :func:`~repro.core.parser.parse_program`).
    edb:
        A :class:`~repro.gdb.database.GeneralizedDatabase` providing
        every extensional predicate.
    strategy:
        ``"semi-naive"`` (default) or ``"naive"``.
    safety:
        Coverage test for accepting/stopping: ``"paper"`` (Theorem 4.3,
        same-free-extension implication) or ``"semantic"`` (full
        extension containment; ablation).
    max_rounds:
        Hard iteration cap.
    patience:
        Give-up budget: extra rounds allowed after the free-signature
        set stops growing.  ``None`` disables the give-up policy (only
        ``max_rounds`` limits the run).
    on_give_up:
        ``"raise"`` (default) raises
        :class:`~repro.util.errors.GiveUpError` carrying the partial
        model; ``"partial"`` returns the partial model with
        ``stats.gave_up`` set.

    >>> from repro.core import DeductiveEngine, parse_program
    >>> from repro.gdb import parse_database
    >>> edb = parse_database('''
    ...   relation course[2; 1] {
    ...     (168n+8, 168n+10; "database") where T2 = T1 + 2;
    ...   }''')
    >>> program = parse_program('''
    ...   problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
    ...   problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
    ... ''')
    >>> model = DeductiveEngine(program, edb).run()
    >>> model.relation("problems").contains_point((10, 12), ("database",))
    True
    """

    def __init__(
        self,
        program,
        edb,
        strategy="semi-naive",
        safety="paper",
        max_rounds=500,
        patience=10,
        on_give_up="raise",
    ):
        if strategy not in ("naive", "semi-naive"):
            raise ValueError("strategy must be 'naive' or 'semi-naive'")
        if on_give_up not in ("raise", "partial"):
            raise ValueError("on_give_up must be 'raise' or 'partial'")
        self.program = program
        self.edb = edb
        self.strategy = strategy
        self.safety = safety
        self.max_rounds = max_rounds
        self.patience = patience
        self.on_give_up = on_give_up
        self._covered = coverage_test(safety)
        self.evaluator = ProgramEvaluator(program, edb)

    # -- public API -------------------------------------------------------

    def run(self, check_free_extension_safety=False):
        """Run to constraint safety, give-up, or the round cap.

        With ``check_free_extension_safety`` the paper-literal
        Theorem-4.2 test is evaluated on the final interpretation and
        recorded in the stats (it costs one extra T_GP round).
        """
        stats = EvaluationStats(strategy=self.strategy, safety_mode=self.safety)
        started = time.perf_counter()
        env = self.evaluator.initial_environment()
        known_signatures = {
            name: free_signatures(env[name]) for name in self.evaluator.intensional
        }
        stats.strata = self.evaluator.stratum_count()
        last_signature_growth = 0

        for evaluators in self.evaluator.stratum_evaluators:
            complements = self.evaluator.complements_for(evaluators, env)
            stratum_closed = self._run_stratum(
                evaluators,
                complements,
                env,
                known_signatures,
                stats,
            )
            last_signature_growth = stats.signature_stable_round
            if not stratum_closed:
                stats.gave_up = True
                break
        else:
            stats.constraint_safe = True

        stats.elapsed_seconds = time.perf_counter() - started

        if check_free_extension_safety:
            stats.free_extension_safe_checked = is_free_extension_safe(
                self.evaluator, env
            )

        relations = {
            name: env[name].normalize() for name in self.evaluator.intensional
        }
        model = Model(relations, stats, edb=self.edb)
        if stats.gave_up and self.on_give_up == "raise":
            raise GiveUpError(
                "bottom-up evaluation did not reach constraint safety "
                "within its budget (%d rounds, free signatures stable "
                "since round %d)" % (stats.rounds, last_signature_growth),
                partial_model=model,
                stats=stats,
            )
        return model

    def _run_stratum(self, evaluators, complements, env, known_signatures, stats):
        """Fixpoint over one stratum's clauses; returns True when the
        stratum reached constraint safety, False on give-up/cap."""
        delta = None
        last_growth = stats.rounds
        for _ in range(self.max_rounds):
            stats.rounds += 1
            if self.strategy == "naive" or delta is None:
                derived = self.evaluator.naive_round(
                    env, evaluators=evaluators, complements=complements
                )
            else:
                derived = self.evaluator.seminaive_round(
                    env, delta, evaluators=evaluators, complements=complements
                )
            stats.derived_tuples_per_round.append(
                sum(len(ts) for ts in derived.values())
            )

            fresh = {}
            seen_keys = set()
            for predicate, tuples in derived.items():
                for gt in tuples:
                    key = (predicate, gt.canonical_key())
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    if self._covered(gt, env[predicate]):
                        continue
                    fresh.setdefault(predicate, []).append(gt)

            stats.new_tuples_per_round.append(
                sum(len(ts) for ts in fresh.values())
            )

            if not fresh:
                stats.signature_stable_round = last_growth
                return True

            grew_signatures = False
            for predicate, tuples in fresh.items():
                env[predicate] = env[predicate].with_tuples(tuples)
                for gt in tuples:
                    if gt.free_signature() not in known_signatures[predicate]:
                        known_signatures[predicate].add(gt.free_signature())
                        grew_signatures = True
            if grew_signatures:
                last_growth = stats.rounds
            delta = fresh

            if (
                self.patience is not None
                and stats.rounds - last_growth >= self.patience
            ):
                break
        stats.signature_stable_round = last_growth
        return False

    def trace(self, max_rounds=None):
        """Yield ``(round_number, {predicate: [accepted tuples]})`` for
        each round, naive strategy — the form in which the paper prints
        the Example 4.1 computation.  Stops at constraint safety or the
        round cap (no give-up error)."""
        limit = max_rounds or self.max_rounds
        env = self.evaluator.initial_environment()
        round_number = 0
        for evaluators in self.evaluator.stratum_evaluators:
            complements = self.evaluator.complements_for(evaluators, env)
            for _ in range(limit):
                round_number += 1
                derived = self.evaluator.naive_round(
                    env, evaluators=evaluators, complements=complements
                )
                fresh = {}
                seen_keys = set()
                for predicate, tuples in derived.items():
                    for gt in tuples:
                        key = (predicate, gt.canonical_key())
                        if key in seen_keys:
                            continue
                        seen_keys.add(key)
                        if self._covered(gt, env[predicate]):
                            continue
                        fresh.setdefault(predicate, []).append(gt)
                if not fresh:
                    break
                for predicate, tuples in fresh.items():
                    env[predicate] = env[predicate].with_tuples(tuples)
                yield round_number, fresh
