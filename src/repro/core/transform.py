"""The *generalized program* transformation (paper Section 4.3).

Before T_GP can operate on generalized tuples, the paper normalizes
programs so that

* integer constants are eliminated — a constant ``c`` in a temporal
  position becomes a fresh variable constrained to equal ``c`` (the
  lrp ``n`` with constraint ``T = c``);
* the head of every clause carries **distinct temporal variables** —
  offsets and repetitions move into constraint atoms in the body.

We normalize body atoms the same way, so that after transformation
every predicate atom carries distinct bare variables and all the
arithmetic lives in constraint atoms.  Clause evaluation then reduces
to: product of the body atom relations, conjunction of the constraint
atoms, projection onto the head variables — exactly the join/project
formulation of the T_GP definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import (
    Clause,
    ConstraintAtom,
    NegatedAtom,
    PredicateAtom,
    TemporalTerm,
)


@dataclass(frozen=True)
class NormalizedClause:
    """A clause in generalized-program form.

    ``head_vars`` are distinct temporal variable names (one per head
    temporal position); every body atom in ``body_atoms`` carries
    distinct bare temporal variables; ``constraints`` holds the linking
    equalities introduced by normalization plus the clause's original
    constraint atoms.
    """

    head_predicate: str
    head_vars: tuple
    head_data: tuple
    body_atoms: tuple
    constraints: tuple
    original: Clause
    negated_atoms: tuple = ()

    def all_temporal_variables(self):
        """Every temporal variable the clause mentions, body-first
        (deterministic order)."""
        ordered = []
        seen = set()

        def add(name):
            if name not in seen:
                seen.add(name)
                ordered.append(name)

        for atom in self.body_atoms:
            for term in atom.temporal_args:
                add(term.var)
        for atom in self.negated_atoms:
            for term in atom.temporal_args:
                add(term.var)
        for constraint in self.constraints:
            for term in (constraint.left, constraint.right):
                if term.var is not None:
                    add(term.var)
        for name in self.head_vars:
            add(name)
        return ordered

    def __str__(self):
        head_terms = ", ".join(self.head_vars)
        data = ""
        if self.head_data:
            data = "; " + ", ".join(str(d) for d in self.head_data)
        head = "%s(%s%s)" % (self.head_predicate, head_terms, data)
        body = [str(a) for a in self.body_atoms]
        body += ["not %s" % a for a in self.negated_atoms]
        body += [str(c) for c in self.constraints]
        if not body:
            return "%s." % head
        return "%s <- %s." % (head, ", ".join(body))


class _FreshNames:
    """Generates fresh temporal variable names not clashing with the
    clause's own variables."""

    def __init__(self, taken):
        self._taken = set(taken)
        self._counter = 0

    def fresh(self, base="w"):
        while True:
            self._counter += 1
            name = "_%s%d" % (base, self._counter)
            if name not in self._taken:
                self._taken.add(name)
                return name


def _clause_variables(clause):
    names = set()
    for atom in [clause.head] + list(clause.body):
        if isinstance(atom, PredicateAtom):
            names |= atom.temporal_variables()
        else:
            names |= atom.temporal_variables()
    return names


def normalize_clause(clause):
    """Rewrite one clause into :class:`NormalizedClause` form."""
    fresh = _FreshNames(_clause_variables(clause))
    constraints = list(clause.constraint_atoms())
    used_columns = set()

    def normalize_term(term, base):
        """Return a bare fresh-or-reused variable name for ``term`` and
        record the linking constraint if one is needed."""
        if term.is_constant():
            name = fresh.fresh(base)
            constraints.append(
                ConstraintAtom(
                    "=", TemporalTerm(name), TemporalTerm(None, term.offset)
                )
            )
            used_columns.add(name)
            return name
        if term.offset == 0 and term.var not in used_columns:
            used_columns.add(term.var)
            return term.var
        name = fresh.fresh(base)
        constraints.append(
            ConstraintAtom("=", TemporalTerm(name), term)
        )
        used_columns.add(name)
        return name

    body_atoms = []
    for atom in clause.predicate_atoms():
        new_args = tuple(
            TemporalTerm(normalize_term(term, "b")) for term in atom.temporal_args
        )
        body_atoms.append(PredicateAtom(atom.predicate, new_args, atom.data_args))

    negated_atoms = []
    for negated in clause.negated_atoms():
        atom = negated.atom
        new_args = tuple(
            TemporalTerm(normalize_term(term, "n")) for term in atom.temporal_args
        )
        negated_atoms.append(PredicateAtom(atom.predicate, new_args, atom.data_args))

    head_vars = []
    head_taken = set()
    for term in clause.head.temporal_args:
        if (
            not term.is_constant()
            and term.offset == 0
            and term.var not in head_taken
        ):
            # A bare, first-occurrence head variable needs no link.
            head_vars.append(term.var)
            head_taken.add(term.var)
            continue
        name = fresh.fresh("h")
        head_taken.add(name)
        if term.is_constant():
            constraints.append(
                ConstraintAtom(
                    "=", TemporalTerm(name), TemporalTerm(None, term.offset)
                )
            )
        else:
            constraints.append(ConstraintAtom("=", TemporalTerm(name), term))
        head_vars.append(name)

    return NormalizedClause(
        head_predicate=clause.head.predicate,
        head_vars=tuple(head_vars),
        head_data=clause.head.data_args,
        body_atoms=tuple(body_atoms),
        constraints=tuple(constraints),
        original=clause,
        negated_atoms=tuple(negated_atoms),
    )


def normalize_program(program):
    """Normalize every clause of a program."""
    return [normalize_clause(clause) for clause in program.clauses]


def denormalize(normalized):
    """Rebuild an AST :class:`Clause` from a :class:`NormalizedClause`.

    Normalized clauses are already legal surface clauses — distinct
    bare temporal variables with the arithmetic in constraint atoms —
    so the reconstruction is a direct re-assembly.  This is how the
    magic-set rewrite (:mod:`repro.plan.magic`) turns its transformed
    normalized clauses back into a :class:`~repro.core.ast.Program`
    that the ordinary validate/stratify/compile pipeline accepts.
    Round-tripping through :func:`normalize_clause` is stable: a
    denormalized clause normalizes to an equivalent clause (the body
    is already in normal form).
    """
    head = PredicateAtom(
        normalized.head_predicate,
        tuple(TemporalTerm(name) for name in normalized.head_vars),
        normalized.head_data,
    )
    body = list(normalized.body_atoms)
    body += [NegatedAtom(atom) for atom in normalized.negated_atoms]
    body += list(normalized.constraints)
    return Clause(head, tuple(body))
