"""The supervised worker pool behind the resilient query service.

:class:`QueryService` accepts jobs (:mod:`repro.service.jobs`), admits
them through a *bounded* queue (typed
:class:`~repro.util.errors.OverloadedError` shedding, never a hang),
and runs them on a pool of supervised worker threads.  Resilience is
layered:

* **Deadlines.**  Every job's wall-clock deadline spans all of its
  attempts; each attempt runs under an
  :class:`~repro.runtime.budget.EvaluationBudget` holding the time
  still remaining, so evaluation stops cooperatively and returns the
  typed partial model (the ladder's second rung) instead of running
  long.
* **Retry + resume.**  Transient failures
  (:class:`~repro.runtime.faults.TransientFaultError`,
  :class:`~repro.util.errors.WorkerDiedError`) are retried with
  exponential backoff and deterministic seeded jitter
  (:class:`~repro.service.retry.RetryPolicy`); ``run`` attempts resume
  from the job's last round-granular checkpoint rather than restarting
  from round 0.
* **Supervision.**  A monitor thread detects dead workers (a
  ``worker_start`` fault injecting
  :class:`~repro.util.errors.WorkerDiedError` deterministically kills
  one) and hung workers (an attempt overrunning its deadline by the
  configured grace), requeues their jobs *excluding* the failed
  worker, and starts replacements.  Results from an abandoned worker
  are discarded by ownership checks, so a job never completes twice.
* **Circuit breaker.**  Programs that keep failing terminally trip a
  per-program breaker (:class:`~repro.service.breaker.CircuitBreaker`);
  further jobs for the same program are rejected typed-and-instantly
  until a cooldown passes and a probe succeeds.
* **Degradation ladder.**  Rung one: a ``run`` job whose compiled-plan
  evaluation crashes for a non-transient reason is re-attempted on the
  paper-literal ``reference`` backend.  Rung two: when the deadline
  trips, the typed partial model computed so far is returned as a
  ``partial`` result instead of an error.

Every admitted job reaches exactly one terminal
:class:`~repro.service.jobs.JobResult`; :meth:`QueryService.stats` and
:meth:`QueryService.health` expose the live counters monitoring scrapes.
"""

from __future__ import annotations

import collections
import os
import shutil
import tempfile
import threading
import time

from repro.obs.metrics import MetricsRegistry
from repro.runtime.report import error_summary
from repro.service.breaker import CircuitBreaker
from repro.service.executor import (
    BACKEND_COMPILED,
    BACKEND_REFERENCE,
    JobExecutor,
)
from repro.service.jobs import (
    STATE_FAILED,
    STATE_OK,
    STATE_PARTIAL,
    STATE_REJECTED,
    JobResult,
)
from repro.service.retry import RetryPolicy, is_transient
from repro.util.errors import (
    CircuitOpenError,
    EvaluationError,
    OverloadedError,
    ParseError,
    PartialResultError,
    ReproError,
    SchemaError,
    ServiceError,
    WorkerDiedError,
)
from repro.util import hooks
from repro.util.hooks import fault_point

#: Latency buckets for the service histograms (seconds): job deadlines
#: live in the tens-of-milliseconds to tens-of-seconds range.
SERVICE_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class JobHandle:
    """A future for one admitted job; resolves to a
    :class:`~repro.service.jobs.JobResult`."""

    def __init__(self, spec):
        self.spec = spec
        self._event = threading.Event()
        self._result = None

    def done(self):
        return self._event.is_set()

    def result(self, timeout=None):
        """Block until the job is terminal.  Raises
        :class:`~repro.util.errors.ServiceError` when ``timeout``
        elapses first (the job itself keeps running toward its own
        deadline)."""
        if not self._event.wait(timeout):
            raise ServiceError(
                "timed out after %gs waiting for job %r"
                % (timeout, self.spec.job_id)
            )
        return self._result

    def _resolve(self, result):
        self._result = result
        self._event.set()


class _Job:
    """Mutable service-side state of one admitted job."""

    __slots__ = (
        "spec",
        "handle",
        "attempts",
        "backend",
        "degradation",
        "excluded_workers",
        "resumed",
        "pending_delay",
        "submitted_at",
        "deadline_at",
        "owner",
        "started_at",
        "first_claimed_at",
        "first_claim_done",
        "lock",
    )

    def __init__(self, spec, now, default_deadline):
        self.spec = spec
        self.handle = JobHandle(spec)
        self.attempts = 0
        self.backend = BACKEND_COMPILED
        self.degradation = []
        self.excluded_workers = set()
        self.resumed = False
        self.pending_delay = 0.0
        self.submitted_at = now
        deadline = spec.deadline_seconds
        if deadline is None:
            deadline = default_deadline
        self.deadline_at = None if deadline is None else now + deadline
        self.owner = None
        self.started_at = None
        self.first_claimed_at = None
        self.first_claim_done = False
        self.lock = threading.Lock()

    def remaining(self, now):
        """Wall-clock seconds left before this job's deadline (``None``
        when unbounded)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - now


class _Worker:
    """One pool thread plus the supervisor-visible flags."""

    def __init__(self, name, service):
        self.name = name
        self.service = service
        self.dead = False
        self.abandoned = False
        self.current_job = None
        self.started_at = None
        self.thread = threading.Thread(
            target=service._worker_main, args=(self,), name=name, daemon=True
        )

    def alive(self):
        return self.thread.is_alive() and not self.dead and not self.abandoned


class QueryService:
    """A resilient multi-query evaluation service.

    Parameters
    ----------
    workers:
        Pool size.  ``0`` is allowed (admission-control testing: jobs
        queue but nothing drains them).
    queue_limit:
        Bound on jobs waiting in the admission queue; submissions
        beyond it are shed with :class:`OverloadedError`.
    retry:
        The :class:`~repro.service.retry.RetryPolicy` for transient
        failures.
    breaker:
        The per-program :class:`~repro.service.breaker.CircuitBreaker`.
    default_deadline:
        Wall-clock deadline applied to jobs that do not carry their
        own.
    work_dir:
        Directory for per-job checkpoints (a temporary directory is
        created — and removed on :meth:`close` — when omitted).
    hang_grace:
        Extra seconds past a job's deadline before the supervisor
        declares the worker hung and abandons it (jobs without any
        deadline are never declared hung).
    max_parallelism:
        Cap on any one job's requested shard ``parallelism``.  Defaults
        to ``cpu_count // workers`` (at least 1) so ``workers``
        concurrent jobs forking shard pools cannot oversubscribe the
        host.
    sleeper / clock:
        Injectable for tests.
    metrics:
        An optional :class:`~repro.obs.metrics.MetricsRegistry` to
        record into (one is created when omitted).  The service keeps
        three latency histograms — end-to-end and execution time per
        outcome, plus queue wait — and mirrors every counter as
        ``repro_service_events_total{event=…}``;
        :meth:`metrics_text` renders the Prometheus exposition.
    """

    def __init__(
        self,
        workers=4,
        queue_limit=64,
        retry=None,
        breaker=None,
        default_deadline=None,
        work_dir=None,
        checkpoint_every=1,
        hang_grace=1.0,
        supervise_interval=0.02,
        max_worker_restarts=32,
        sleeper=None,
        clock=None,
        metrics=None,
        max_parallelism=None,
    ):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if max_parallelism is None:
            # Default cap: split the host's cores across the engine
            # workers, so `workers` jobs each forking their shard pool
            # cannot oversubscribe the machine.
            max_parallelism = max(
                1, (os.cpu_count() or 1) // max(1, workers)
            )
        elif max_parallelism < 1:
            raise ValueError("max_parallelism must be positive")
        self.max_parallelism = max_parallelism
        self.configured_workers = workers
        self.queue_limit = queue_limit
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.default_deadline = default_deadline
        self.hang_grace = hang_grace
        self.supervise_interval = supervise_interval
        self.max_worker_restarts = max_worker_restarts
        self._sleeper = sleeper or time.sleep
        self._clock = clock or time.monotonic
        self._owns_work_dir = work_dir is None
        if work_dir is None:
            work_dir = tempfile.mkdtemp(prefix="repro-service-")
        else:
            os.makedirs(work_dir, exist_ok=True)
        self.work_dir = work_dir
        self.executor = JobExecutor(
            work_dir=work_dir,
            checkpoint_every=checkpoint_every,
            max_parallelism=max_parallelism,
        )

        self._queue = collections.deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._workers = []
        self._worker_seq = 0
        self._stats_lock = threading.Lock()
        self._stats = collections.Counter()
        self._supervisor = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events_total = self.metrics.counter(
            "repro_service_events_total",
            "Service counter events (mirrors stats()).",
            labelnames=("event",),
        )
        self._end_to_end = self.metrics.histogram(
            "repro_job_end_to_end_seconds",
            "Submit-to-terminal latency per job outcome.",
            labelnames=("outcome",),
            buckets=SERVICE_BUCKETS,
        )
        self._queue_wait = self.metrics.histogram(
            "repro_job_queue_wait_seconds",
            "Admission-to-first-claim wait.",
            buckets=SERVICE_BUCKETS,
        )
        self._execution = self.metrics.histogram(
            "repro_job_execution_seconds",
            "Last-claim-to-terminal execution time per job outcome.",
            labelnames=("outcome",),
            buckets=SERVICE_BUCKETS,
        )
        self._start_pool()

    # -- lifecycle --------------------------------------------------------

    def _start_pool(self):
        for _ in range(self.configured_workers):
            self._spawn_worker()
        if self.configured_workers:
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-supervisor", daemon=True
            )
            self._supervisor.start()

    def _spawn_worker(self):
        with self._cond:
            self._worker_seq += 1
            worker = _Worker("worker-%d" % self._worker_seq, self)
            self._workers.append(worker)
        worker.thread.start()
        return worker

    def close(self):
        """Stop accepting work, let queued jobs drain, join the pool."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
            workers = list(self._workers)
        for worker in workers:
            if worker.thread.is_alive() and not worker.abandoned:
                worker.thread.join(timeout=30.0)
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        if self._owns_work_dir:
            shutil.rmtree(self.work_dir, ignore_errors=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- admission --------------------------------------------------------

    def submit(self, spec):
        """Admit one job; returns a :class:`JobHandle`.

        Raises :class:`OverloadedError` when the queue is full,
        :class:`CircuitOpenError` when the job's program breaker is
        open, and propagates any ``submit``-site injected fault.

        Every admission rejection — shed, breaker-open, or
        shutting-down — is counted here, in ``rejected`` plus its
        specific counter, so :meth:`stats` agrees whether the caller
        came through :meth:`run_batch` or this front door directly
        (the ``repro serve`` path).
        """
        fault_point("submit")
        key = spec.program_key()
        job = _Job(spec, self._clock(), self.default_deadline)
        try:
            # The job itself is the probe token: when this admission is
            # the half-open probe, the worker-side re-check in
            # _process() admits the same token instead of rejecting its
            # own probe (which would wedge the breaker half-open).
            self.breaker.check(key, token=job)
        except CircuitOpenError:
            self._count_rejection(spec, "circuit-open", "breaker_rejections")
            raise
        try:
            with self._cond:
                if self._stopping:
                    raise ServiceError("service is shutting down")
                if len(self._queue) >= self.queue_limit:
                    raise OverloadedError(
                        "admission queue full (%d jobs queued, limit %d)"
                        % (len(self._queue), self.queue_limit),
                        queue_limit=self.queue_limit,
                    )
                self._queue.append(job)
                depth = len(self._queue)
                self._cond.notify()
        except ReproError as error:
            if isinstance(error, OverloadedError):
                self._count_rejection(spec, "overloaded", "shed")
            else:
                self._count_rejection(spec, "shutting-down", None)
            self.breaker.release_probe(key, job)
            raise
        self._count("submitted")
        if hooks.SINKS:
            hooks.emit(
                "service.job",
                {
                    "phase": "submit",
                    "job_id": spec.job_id,
                    "kind": spec.kind,
                    "queue_depth": depth,
                },
            )
        return job.handle

    def _count_rejection(self, spec, reason, extra_counter):
        """The single place admission rejections are tallied."""
        self._count("rejected")
        if extra_counter is not None:
            self._count(extra_counter)
        if hooks.SINKS:
            hooks.emit(
                "service.job",
                {"phase": "reject", "job_id": spec.job_id, "reason": reason},
            )

    def run_batch(self, specs, timeout=None):
        """Submit every spec and wait for all results, in input order.

        Shed/breaker-rejected submissions become ``rejected`` results
        instead of exceptions, so the returned list always matches the
        input one-to-one.  ``timeout`` bounds the *total* wait; jobs
        still pending when it expires resolve to typed
        ``batch-timeout`` failures (they keep running toward their own
        deadlines in the background).

        Rejections are counted by :meth:`submit` itself (never here),
        so ``stats()["jobs"]["rejected"]`` agrees with the direct
        front door.
        """
        handles = []
        for spec in specs:
            try:
                handles.append(self.submit(spec))
            except ReproError as error:
                outcome = (
                    "overloaded"
                    if isinstance(error, OverloadedError)
                    else "circuit-open"
                    if isinstance(error, CircuitOpenError)
                    else "error"
                )
                handles.append(
                    JobResult(
                        job_id=spec.job_id,
                        state=STATE_REJECTED,
                        outcome=outcome,
                        error=error_summary(error),
                    )
                )
        deadline = None if timeout is None else self._clock() + timeout
        results = []
        for handle in handles:
            if isinstance(handle, JobResult):
                results.append(handle)
                continue
            remaining = (
                None if deadline is None else max(0.0, deadline - self._clock())
            )
            try:
                results.append(handle.result(timeout=remaining))
            except ServiceError as error:
                results.append(
                    JobResult(
                        job_id=handle.spec.job_id,
                        state=STATE_FAILED,
                        outcome="batch-timeout",
                        error=error_summary(error),
                    )
                )
        return results

    # -- observability ----------------------------------------------------

    def _count(self, key, value=1):
        with self._stats_lock:
            self._stats[key] += value
        self._events_total.labels(event=key).inc(value)

    def stats(self):
        """A JSON-safe snapshot of the pool counters."""
        with self._stats_lock:
            counters = dict(self._stats)
        with self._cond:
            depth = len(self._queue)
            workers = list(self._workers)
        alive = sum(1 for worker in workers if worker.alive())
        return {
            "workers": {
                "configured": self.configured_workers,
                "alive": alive,
                "restarts": counters.get("worker_restarts", 0),
                "abandoned": counters.get("workers_abandoned", 0),
            },
            "queue": {"depth": depth, "limit": self.queue_limit},
            "jobs": {
                key: counters.get(key, 0)
                for key in (
                    "submitted",
                    "completed",
                    "ok",
                    "partial",
                    "failed",
                    "rejected",
                    "retries",
                    "requeues",
                    "resumed",
                    "degraded_backend",
                    "degraded_partial",
                    "degraded_shard",
                    "degraded_magic",
                    "shed",
                    "breaker_rejections",
                )
            },
            "breaker": self.breaker.snapshot(),
        }

    def health(self):
        """The liveness/degradation summary for a health endpoint."""
        snapshot = self.stats()
        workers = snapshot["workers"]
        open_circuits = [
            key
            for key, entry in snapshot["breaker"].items()
            if entry["state"] != "closed"
        ]
        degraded = (
            workers["alive"] < workers["configured"] or bool(open_circuits)
        )
        return {
            "status": "degraded" if degraded else "ok",
            "workers": workers,
            "queue": snapshot["queue"],
            "open_circuits": open_circuits,
        }

    def metrics_text(self):
        """The Prometheus text exposition: latency histograms, counter
        mirrors, plus point-in-time gauges refreshed per scrape."""
        snapshot = self.stats()
        self.metrics.gauge(
            "repro_queue_depth", "Jobs waiting in the admission queue."
        ).set(snapshot["queue"]["depth"])
        self.metrics.gauge(
            "repro_workers_alive", "Live (non-abandoned) pool workers."
        ).set(snapshot["workers"]["alive"])
        self.metrics.gauge(
            "repro_workers_configured", "Configured pool size."
        ).set(snapshot["workers"]["configured"])
        return self.metrics.render()

    # -- the worker loop --------------------------------------------------

    def _worker_main(self, worker):
        while True:
            job = self._next_job(worker)
            if job is None:
                return
            if not self._claim(job, worker):
                continue
            try:
                self._process(job, worker)
            except WorkerDiedError as death:
                # This worker is gone: hand the job back (excluding
                # ourselves) and stop the loop; the supervisor restarts.
                worker.dead = True
                self._release(job, worker)
                self._handle_worker_death(job, worker, death)
                return
            finally:
                self._release(job, worker)
                if worker.abandoned:
                    return

    def _next_job(self, worker):
        with self._cond:
            while True:
                job = self._pop_runnable(worker)
                if job is not None:
                    return job
                if self._stopping and not self._queue:
                    return None
                self._cond.wait(timeout=0.05)

    def _pop_runnable(self, worker):
        """The first queued job this worker is not excluded from."""
        for _ in range(len(self._queue)):
            job = self._queue.popleft()
            if worker.name in job.excluded_workers:
                self._queue.append(job)
                continue
            return job
        return None

    def _claim(self, job, worker):
        with job.lock:
            if job.handle.done():
                return False
            job.owner = worker
        worker.current_job = job
        worker.started_at = self._clock()
        job.started_at = worker.started_at
        if not job.first_claim_done:
            job.first_claim_done = True
            job.first_claimed_at = worker.started_at
            self._queue_wait.observe(
                max(0.0, job.first_claimed_at - job.submitted_at)
            )
            self.executor.discard_checkpoint(job.spec)
        if hooks.SINKS:
            hooks.emit(
                "service.job",
                {
                    "phase": "dequeue",
                    "job_id": job.spec.job_id,
                    "worker": worker.name,
                    "queue_wait_s": max(0.0, job.started_at - job.submitted_at),
                },
            )
        return True

    def _release(self, job, worker):
        with job.lock:
            if job.owner is worker:
                job.owner = None
        worker.current_job = None
        worker.started_at = None

    def _process(self, job, worker):
        """Run attempts of ``job`` until it is terminal or this worker
        cannot continue (death propagates as WorkerDiedError)."""
        if job.pending_delay > 0.0:
            delay, job.pending_delay = job.pending_delay, 0.0
            self._sleeper(delay)
        try:
            fault_point("worker_start")
        except WorkerDiedError:
            # The pickup itself consumed an attempt: repeated deaths
            # must converge on a terminal failure, not requeue forever.
            job.attempts += 1
            raise
        try:
            # Re-check with the job as probe token: if this job holds
            # the half-open probe slot it claimed at submit time, the
            # breaker admits it again instead of rejecting its own
            # probe.  Only a trip that happened *after* admission (other
            # jobs for the key failing while this one queued) rejects.
            self.breaker.check(job.spec.program_key(), token=job)
        except CircuitOpenError as error:
            self._count("breaker_rejections")
            self._finish(
                job,
                worker,
                JobResult(
                    job_id=job.spec.job_id,
                    state=STATE_REJECTED,
                    outcome="circuit-open",
                    attempts=job.attempts,
                    error=error_summary(error),
                ),
                record_breaker=False,
            )
            return
        while True:
            job.attempts += 1
            now = self._clock()
            remaining = job.remaining(now)
            if hooks.SINKS:
                hooks.emit(
                    "service.job",
                    {
                        "phase": "attempt",
                        "job_id": job.spec.job_id,
                        "attempt": job.attempts,
                        "backend": job.backend,
                        "worker": worker.name,
                        "remaining_s": remaining,
                    },
                )
            if remaining is not None and remaining <= 0.0:
                self._finish_deadline(job, worker, outcome_error=None)
                return
            try:
                outcome = self.executor.execute(
                    job.spec, job.backend, remaining_seconds=remaining
                )
                fault_point("result_return")
            except WorkerDiedError:
                raise
            except Exception as error:
                if self.retry.retryable(error, job.attempts):
                    self._count("retries")
                    self._sleeper(self._bounded_delay(job))
                    continue
                if self._degradable(job, error):
                    job.backend = BACKEND_REFERENCE
                    job.degradation.append("reference-backend")
                    self._count("degraded_backend")
                    continue
                self._finish_failure(job, worker, error)
                return
            self._finish_outcome(job, worker, outcome)
            return

    def _bounded_delay(self, job):
        """The backoff before this job's next attempt, capped so the
        sleep itself can never outlive the job's deadline."""
        delay = self.retry.delay(job.spec.job_id, job.attempts)
        remaining = job.remaining(self._clock())
        if remaining is not None:
            delay = max(0.0, min(delay, remaining))
        return delay

    def _degradable(self, job, error):
        """Rung one of the ladder: compiled-plan evaluation crashed for
        a non-transient, non-input reason on a ``run`` job."""
        if job.spec.kind != "run" or job.backend != BACKEND_COMPILED:
            return False
        if is_transient(error):
            return False
        if isinstance(error, (ParseError, SchemaError)):
            return False
        # EvaluationError that is not a PartialResultError means the
        # input itself is bad (e.g. not range-restricted) — degrading
        # the backend cannot help.
        if isinstance(error, EvaluationError) and not isinstance(
            error, PartialResultError
        ):
            return False
        return True

    # -- terminal transitions ---------------------------------------------

    def _finish(self, job, worker, result, record_breaker=True):
        now = self._clock()
        with job.lock:
            if job.handle.done():
                return
            if worker is not None and job.owner is not worker:
                # The supervisor reassigned this job (the worker was
                # abandoned as hung); the stale attempt's result must
                # not beat the requeued one.
                return
            result.elapsed_seconds = now - job.submitted_at
            result.worker = None if worker is None else worker.name
            # Counters, histograms and the outcome span are recorded
            # BEFORE the handle resolves: a client unblocked by the
            # result must already find the job in stats()/metrics
            # snapshots (run_batch returning with a short histogram
            # otherwise races the last observation).
            self._count("completed")
            self._count(result.state)
            if result.resumed:
                self._count("resumed")
            self._end_to_end.labels(outcome=result.outcome).observe(
                max(0.0, result.elapsed_seconds)
            )
            if job.started_at is not None:
                self._execution.labels(outcome=result.outcome).observe(
                    max(0.0, now - job.started_at)
                )
            if hooks.SINKS:
                hooks.emit(
                    "service.job",
                    {
                        "phase": "outcome",
                        "job_id": job.spec.job_id,
                        "state": result.state,
                        "outcome": result.outcome,
                        "attempts": job.attempts,
                        "backend": result.backend,
                        "degradation": list(job.degradation),
                        "resumed": result.resumed,
                        "elapsed_s": result.elapsed_seconds,
                        "queue_wait_s": (
                            None
                            if job.first_claimed_at is None
                            else max(
                                0.0, job.first_claimed_at - job.submitted_at
                            )
                        ),
                        "worker": result.worker,
                    },
                )
            job.handle._resolve(result)
        key = job.spec.program_key()
        if record_breaker:
            if result.state == STATE_FAILED:
                self.breaker.record_failure(key)
            else:
                self.breaker.record_success(key)
        else:
            # No outcome recorded: if this job held the half-open probe
            # slot, hand it back so the next submission can probe.
            self.breaker.release_probe(key, job)

    def _finish_outcome(self, job, worker, outcome):
        job.resumed = job.resumed or outcome.resumed
        if getattr(outcome, "shard_degraded", False):
            # The attempt lost its shard pool and finished sequentially
            # in-process — exact result, so no retry is burned; the
            # downshift is recorded on the degradation ladder instead.
            if "shard-sequential" not in job.degradation:
                job.degradation.append("shard-sequential")
            self._count("degraded_shard")
        if getattr(outcome, "magic_degraded", False):
            # A goal-directed query fell back to the full fixpoint —
            # exact (indeed larger) result, so the state is untouched;
            # only the ladder records the "magic → full" rung.
            if "magic-full" not in job.degradation:
                job.degradation.append("magic-full")
            self._count("degraded_magic")
        if outcome.outcome == "ok":
            state = STATE_OK
        else:
            state = STATE_PARTIAL
            if outcome.outcome == "budget-exceeded":
                if "partial-model" not in job.degradation:
                    job.degradation.append("partial-model")
                self._count("degraded_partial")
        stats = outcome.stats
        if outcome.window is not None:
            stats = dict(stats or {})
            stats["window"] = outcome.window
        self._finish(
            job,
            worker,
            JobResult(
                job_id=job.spec.job_id,
                state=state,
                outcome=outcome.outcome,
                attempts=job.attempts,
                backend=outcome.backend,
                degradation=list(job.degradation),
                model_text=outcome.model_text,
                model=outcome.model,
                error=error_summary(outcome.error),
                stats=stats,
                resumed=job.resumed,
            ),
        )

    def _finish_deadline(self, job, worker, outcome_error):
        """The job's deadline elapsed before an attempt could start."""
        if "partial-model" not in job.degradation:
            job.degradation.append("partial-model")
        self._count("degraded_partial")
        self._finish(
            job,
            worker,
            JobResult(
                job_id=job.spec.job_id,
                state=STATE_PARTIAL,
                outcome="budget-exceeded",
                attempts=job.attempts,
                backend=job.backend,
                degradation=list(job.degradation),
                error=error_summary(outcome_error),
                resumed=job.resumed,
            ),
            # A job that expired without ever being evaluated says
            # nothing about the program's health — recording it as a
            # breaker success would mask trips under load.
            record_breaker=job.attempts > 0,
        )

    def _finish_failure(self, job, worker, error):
        self._finish(
            job,
            worker,
            JobResult(
                job_id=job.spec.job_id,
                state=STATE_FAILED,
                outcome="aborted" if is_transient(error) else "error",
                attempts=job.attempts,
                backend=job.backend,
                degradation=list(job.degradation),
                error=error_summary(error),
                resumed=job.resumed,
            ),
        )

    def _handle_worker_death(self, job, worker, death):
        """Requeue a dead worker's job, excluding that worker."""
        job.excluded_workers.add(worker.name)
        if self.retry.retryable(death, job.attempts):
            job.pending_delay = self._bounded_delay(job)
            self._count("retries")
            self._requeue(job)
        else:
            self._finish_failure(job, None, death)

    def _requeue(self, job):
        self._count("requeues")
        with self._cond:
            self._queue.appendleft(job)
            self._cond.notify()

    # -- supervision ------------------------------------------------------

    def _supervise(self):
        while True:
            with self._cond:
                if self._stopping and not self._queue:
                    alive_busy = any(
                        worker.alive() and worker.current_job is not None
                        for worker in self._workers
                    )
                    if not alive_busy:
                        return
            self._check_workers()
            self._expire_queued_jobs()
            time.sleep(self.supervise_interval)

    def _check_workers(self):
        with self._cond:
            workers = list(self._workers)
        for worker in workers:
            if worker.abandoned:
                continue
            if worker.dead or not worker.thread.is_alive():
                with self._cond:
                    if worker in self._workers:
                        self._workers.remove(worker)
                self._recover_orphan(worker)
                self._restart_worker()
                continue
            if self._hung(worker):
                worker.abandoned = True
                self._count("workers_abandoned")
                self._recover_orphan(worker)
                self._restart_worker()

    def _restart_worker(self):
        with self._stats_lock:
            restarts = self._stats["worker_restarts"]
            if self._stopping or restarts >= self.max_worker_restarts:
                return
            self._stats["worker_restarts"] += 1
        self._spawn_worker()

    def _expire_queued_jobs(self):
        """Resolve queued jobs whose deadline elapsed before any worker
        could take them — even a pool with zero live workers never
        leaves a deadline-carrying job hanging."""
        now = self._clock()
        expired = []
        with self._cond:
            for _ in range(len(self._queue)):
                job = self._queue.popleft()
                remaining = job.remaining(now)
                if remaining is not None and remaining <= 0.0:
                    expired.append(job)
                else:
                    self._queue.append(job)
        for job in expired:
            self._finish_deadline(job, None, outcome_error=None)

    def _hung(self, worker):
        job = worker.current_job
        if job is None or worker.started_at is None:
            return False
        if job.deadline_at is None:
            return False
        return self._clock() > job.deadline_at + self.hang_grace

    def _recover_orphan(self, worker):
        """Requeue the job a dead/hung worker was holding, if any."""
        job = worker.current_job
        if job is None:
            return
        with job.lock:
            if job.handle.done():
                return
            if job.owner is worker:
                job.owner = None
        worker.current_job = None
        death = WorkerDiedError(
            "worker %s declared dead by the supervisor while holding job %r"
            % (worker.name, job.spec.job_id)
        )
        self._handle_worker_death(job, worker, death)
