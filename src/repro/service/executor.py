"""One attempt of one job, under a remaining-time budget.

The executor is the bridge between a :class:`~repro.service.jobs.JobSpec`
and the library's four front ends.  It is deliberately *policy-free*:
it runs exactly one attempt with the backend it is told to use and the
wall-clock that is still left, and either returns an
:class:`AttemptOutcome` (complete, gave-up, or deadline-degraded
partial — all healthy terminal shapes) or lets the failure propagate
for the worker pool to classify (retry / degrade / fail fast).

For ``run`` jobs every attempt writes round-granular checkpoints to
the job's own file under the service work directory, and a later
attempt resumes from the last committed snapshot instead of
restarting from round 0 — the engine's fingerprint check plus the
atomic+durable :func:`~repro.runtime.checkpoint.write_checkpoint`
make that safe even when the previous attempt died mid-write.  A
corrupt or mismatched checkpoint falls back to a fresh start rather
than failing the attempt.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core import DeductiveEngine, parse_program
from repro.datalog1s import minimal_model, parse_datalog1s
from repro.fo import evaluate_query
from repro.gdb import parse_database
from repro.runtime.budget import EvaluationBudget
from repro.templog import parse_templog, templog_minimal_model
from repro.util.errors import BudgetExceededError, CheckpointError, SchemaError
from repro.util.sorting import typed_sort_key

#: Backend labels reported per job kind.
BACKEND_COMPILED = "compiled"
BACKEND_REFERENCE = "reference"
BACKEND_CLOSED_FORM = "closed-form"
BACKEND_FO = "fo"


@dataclass
class AttemptOutcome:
    """A healthy terminal result of one attempt.

    ``outcome`` is ``"ok"``, ``"gave-up"``, or ``"budget-exceeded"``
    (the latter two map to the ``partial`` job state); ``resumed``
    reports whether this attempt continued from a checkpoint.
    ``shard_degraded`` is True when a parallel attempt lost its whole
    shard pool and finished sequentially in-process — the result is
    still exact, so the attempt completes (no retry is burned) and the
    service annotates the job's degradation ladder instead.
    """

    outcome: str
    backend: str
    model: Optional[object] = None
    model_text: Optional[str] = None
    stats: Optional[dict] = None
    error: Optional[BaseException] = None
    resumed: bool = False
    window: Optional[dict] = None
    shard_degraded: bool = False
    #: True when a goal-directed query attempt fell back to the full
    #: fixpoint (the "magic → full" rung): the result is still exact,
    #: so the attempt completes and the pool annotates the job's
    #: degradation ladder instead of burning a retry.
    magic_degraded: bool = False


class JobExecutor:
    """Runs single attempts; owns the per-job checkpoint files.

    ``max_parallelism`` caps what any one job's ``parallelism`` request
    may claim — the service sets it from its worker-pool size so
    concurrent jobs cannot multiply shard processes past the host.
    """

    def __init__(self, work_dir=None, checkpoint_every=1, max_parallelism=None):
        self.work_dir = work_dir
        self.checkpoint_every = checkpoint_every
        self.max_parallelism = max_parallelism

    def effective_parallelism(self, spec):
        """The shard count this job actually runs with: its request,
        clamped to the executor cap (both default to 1/sequential).
        An ``"auto"`` request passes through — the engine's governor
        decides, bounded by the same cap (see
        :meth:`_run_deductive`)."""
        requested = spec.parallelism or 1
        if requested == "auto":
            return "auto"
        if self.max_parallelism is not None:
            return max(1, min(requested, self.max_parallelism))
        return requested

    def checkpoint_path(self, spec):
        """Where ``run`` attempts for this job checkpoint (``None``
        when checkpointing is disabled)."""
        if self.work_dir is None or spec.kind != "run":
            return None
        return os.path.join(self.work_dir, "%s.ckpt.json" % spec.job_id)

    def discard_checkpoint(self, spec):
        """Remove any leftover checkpoint before a job's first attempt
        (a stale file from an earlier batch must not seed this run)."""
        path = self.checkpoint_path(spec)
        if path is not None and os.path.exists(path):
            os.unlink(path)

    def execute(self, spec, backend, remaining_seconds=None):
        """Run one attempt of ``spec``; raises on retryable/permanent
        failures, returns an :class:`AttemptOutcome` otherwise."""
        budget = self._budget(spec, remaining_seconds)
        if spec.kind == "run":
            return self._run_deductive(spec, backend, budget)
        if spec.kind == "query":
            return self._run_query(spec, budget)
        if spec.kind == "maintain":
            return self._run_maintain(spec, backend, budget)
        return self._run_periodic(spec, budget)

    # -- per-kind attempts ------------------------------------------------

    def _budget(self, spec, remaining_seconds):
        budget = EvaluationBudget(
            deadline_seconds=remaining_seconds, max_rounds=spec.max_rounds
        )
        return budget if budget.limited() else None

    def _run_deductive(self, spec, backend, budget):
        program = parse_program(spec.program)
        edb = parse_database(spec.edb)
        engine = DeductiveEngine(
            program,
            edb,
            strategy=spec.strategy,
            patience=spec.patience,
            on_give_up="partial",
            evaluation=backend,
            parallelism=self.effective_parallelism(spec),
            auto_parallelism_cap=self.max_parallelism,
        )
        path = self.checkpoint_path(spec)
        resume_from = path if path is not None and os.path.exists(path) else None
        run_kwargs = {
            "budget": budget,
            "checkpoint_every": self.checkpoint_every if path else None,
            "checkpoint_path": path,
        }
        try:
            try:
                model = engine.run(resume_from=resume_from, **run_kwargs)
            except CheckpointError:
                # A corrupt/mismatched checkpoint must not fail the job:
                # drop it and restart this attempt from round 0.
                if resume_from is not None and os.path.exists(resume_from):
                    os.unlink(resume_from)
                resume_from = None
                model = engine.run(resume_from=None, **run_kwargs)
        except BudgetExceededError as error:
            outcome = self._budget_outcome(spec, backend, error)
            outcome.shard_degraded = engine.evaluator.shard_degraded is not None
            return outcome
        outcome = "gave-up" if model.stats.gave_up else "ok"
        return AttemptOutcome(
            outcome=outcome,
            backend=backend,
            model=model,
            model_text=str(model),
            stats=model.stats.to_dict(),
            resumed=model.stats.resumed_from_round is not None,
            window=self._model_window(spec, model),
            shard_degraded=engine.evaluator.shard_degraded is not None,
        )

    def _run_query(self, spec, budget):
        db = parse_database(spec.edb)
        outcome = "ok"
        stats = None
        backend = BACKEND_FO
        magic_degraded = False
        if spec.program:
            from repro.plan.magic import goal_from_formula

            program = parse_program(spec.program)
            engine = DeductiveEngine(
                program,
                db,
                strategy=spec.strategy,
                patience=spec.patience,
                on_give_up="partial",
            )
            backend = BACKEND_COMPILED
            try:
                if spec.goal_directed:
                    goal, reason = goal_from_formula(
                        spec.query,
                        program.intensional_predicates(),
                        window=spec.window,
                    )
                    if goal is None:
                        model = engine.run(budget=budget)
                        model.stats.magic_degraded = {"reason": reason}
                        magic_degraded = True
                    else:
                        model, info = engine.run_goal_directed(
                            goal, budget=budget
                        )
                        magic_degraded = bool(info.get("degraded"))
                else:
                    model = engine.run(budget=budget)
            except BudgetExceededError as error:
                return self._budget_outcome(spec, backend, error)
            if model.stats.gave_up:
                outcome = "gave-up"
            stats = model.stats.to_dict()
            answers = model.query(spec.query)
        else:
            try:
                answers = evaluate_query(db, spec.query, budget=budget)
            except BudgetExceededError as error:
                return self._budget_outcome(spec, BACKEND_FO, error)
        window = None
        if spec.window is not None:
            low, high = spec.window
            window = {
                "low": low,
                "high": high,
                "tuples": sorted(
                    [list(flat) for flat in answers.extension(low, high)],
                    key=typed_sort_key,
                ),
            }
        return AttemptOutcome(
            outcome=outcome,
            backend=backend,
            model=answers,
            model_text=str(answers.relation),
            stats=stats,
            window=window,
            magic_degraded=magic_degraded,
        )

    def _run_maintain(self, spec, backend, budget):
        # Imported here so the service layer stays importable without
        # the edb subsystem loaded for jobs that never use it.
        from repro.edb import MAINTAINERS, EdbStore

        maintainer = MAINTAINERS.get(spec.store, spec.program, evaluation=backend)
        store = EdbStore(spec.store)
        try:
            try:
                model = maintainer.refresh(store, budget=budget)
            except BudgetExceededError as error:
                return self._budget_outcome(spec, backend, error)
        finally:
            store.close()
        outcome = "gave-up" if model.stats.gave_up else "ok"
        return AttemptOutcome(
            outcome=outcome,
            backend=backend,
            model=model,
            model_text=str(model),
            stats=model.stats.to_dict(),
            window=self._model_window(spec, model),
        )

    def _run_periodic(self, spec, budget):
        if spec.kind == "datalog1s":
            program = parse_datalog1s(spec.program)
            evaluate = minimal_model
        else:
            program = parse_templog(spec.program)
            evaluate = templog_minimal_model
        try:
            model = evaluate(program, budget=budget)
        except BudgetExceededError as error:
            return self._budget_outcome(spec, BACKEND_CLOSED_FORM, error)
        return AttemptOutcome(
            outcome="ok",
            backend=BACKEND_CLOSED_FORM,
            model=model,
            model_text=str(model),
        )

    # -- shared shapes ----------------------------------------------------

    def _budget_outcome(self, spec, backend, error):
        """Deadline rung of the degradation ladder: the typed partial
        model the evaluation carried out of the budget trip."""
        model = error.partial_model
        stats = getattr(error, "stats", None)
        if stats is not None and hasattr(stats, "to_dict"):
            stats = stats.to_dict()
        resumed = False
        if isinstance(stats, dict):
            resumed = stats.get("resumed_from_round") is not None
        return AttemptOutcome(
            outcome="budget-exceeded",
            backend=backend,
            model=model,
            model_text=None if model is None else str(model),
            stats=stats,
            error=error,
            resumed=resumed,
            window=self._model_window(spec, model),
        )

    def _model_window(self, spec, model):
        if spec.window is None or model is None or not hasattr(model, "extension"):
            return None
        low, high = spec.window
        window = {"low": low, "high": high, "predicates": {}}
        try:
            for name in model.predicates():
                window["predicates"][name] = sorted(
                    [list(flat) for flat in model.extension(name, low, high)],
                    key=typed_sort_key,
                )
        except (SchemaError, AttributeError, KeyError, TypeError):
            # Windowing is a best-effort decoration of the outcome: a
            # partial model missing a predicate or carrying an
            # unexpected shape must not fail the attempt.  Anything
            # else — WalCorruptError, injected faults — propagates so
            # the pool's classifier (and the chaos tests watching it)
            # sees the typed error with its cause chain intact.
            return None
        return window
