"""Per-program circuit breaker.

A program that keeps failing terminally is a hazard to the pool: every
admission costs a worker a full deadline's worth of wasted work.  The
breaker bounds that cost with the classic three-state machine, tracked
independently per program key:

``closed``
    Normal operation.  ``failure_threshold`` *consecutive* terminal
    failures trip the breaker open (a success resets the count).
``open``
    Jobs for the key are rejected with
    :class:`~repro.util.errors.CircuitOpenError` — typed and instant —
    until ``cooldown_seconds`` elapse.
``half-open``
    After the cooldown one probe job is admitted; its success closes
    the breaker, its failure re-opens it (restarting the cooldown).

The clock is injectable so transitions are unit-testable without
sleeping.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time

from repro.util.errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _Circuit:
    __slots__ = ("state", "failures", "opened_at", "probing", "probe_token")

    def __init__(self):
        self.state = CLOSED
        self.failures = 0
        self.opened_at = None
        self.probing = False
        self.probe_token = None


class CircuitBreaker:
    """Consecutive-failure breaker over program keys."""

    def __init__(self, failure_threshold=5, cooldown_seconds=30.0, clock=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock or time.monotonic
        self._circuits = {}
        self._lock = threading.Lock()

    def _circuit(self, key):
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = self._circuits[key] = _Circuit()
        return circuit

    def check(self, key, token=None):
        """Admit or reject work for ``key``.

        Raises :class:`CircuitOpenError` when the breaker is open and
        cooling down.  When the cooldown has elapsed the breaker moves
        to half-open and admits exactly one probe; concurrent callers
        during the probe are rejected.

        ``token`` identifies the probe holder so the same admission can
        be re-checked along the pipeline (submit → worker pickup)
        without rejecting itself: the holder of the probe slot is
        always admitted again; release the slot with
        :meth:`release_probe` if the probe terminates without a
        success/failure record.
        """
        with self._lock:
            circuit = self._circuit(key)
            if circuit.state == CLOSED:
                return
            if circuit.state == OPEN:
                elapsed = self._clock() - circuit.opened_at
                if elapsed < self.cooldown_seconds:
                    raise CircuitOpenError(
                        "circuit open for program %s (%.3gs of %.3gs cooldown "
                        "elapsed)" % (key, elapsed, self.cooldown_seconds),
                        program_key=key,
                    )
                circuit.state = HALF_OPEN
                circuit.probing = False
                circuit.probe_token = None
            # Half-open: admit a single probe (idempotently for its
            # holder, so a second check on the same token passes).
            if circuit.probing:
                if token is not None and circuit.probe_token is token:
                    return
                raise CircuitOpenError(
                    "circuit half-open for program %s (probe in flight)" % key,
                    program_key=key,
                )
            circuit.probing = True
            circuit.probe_token = token

    def release_probe(self, key, token):
        """Give the half-open probe slot back without recording an
        outcome — the probe admitted under ``token`` never actually
        evaluated (e.g. it was shed or expired while queued)."""
        with self._lock:
            circuit = self._circuits.get(key)
            if (
                circuit is not None
                and circuit.state == HALF_OPEN
                and circuit.probing
                and circuit.probe_token is token
            ):
                circuit.probing = False
                circuit.probe_token = None

    def record_success(self, key):
        """A job for ``key`` reached a healthy terminal state."""
        with self._lock:
            circuit = self._circuit(key)
            circuit.state = CLOSED
            circuit.failures = 0
            circuit.opened_at = None
            circuit.probing = False
            circuit.probe_token = None

    def record_failure(self, key):
        """A job for ``key`` failed terminally."""
        with self._lock:
            circuit = self._circuit(key)
            if circuit.state == HALF_OPEN:
                circuit.state = OPEN
                circuit.opened_at = self._clock()
                circuit.probing = False
                circuit.probe_token = None
                return
            circuit.failures += 1
            if circuit.failures >= self.failure_threshold:
                circuit.state = OPEN
                circuit.opened_at = self._clock()

    def state(self, key):
        """The current state for ``key`` (``closed`` when unseen)."""
        with self._lock:
            circuit = self._circuits.get(key)
            return CLOSED if circuit is None else circuit.state

    def snapshot(self):
        """Per-key states for the service health report (closed keys
        with no failure history are omitted)."""
        with self._lock:
            return {
                key: {"state": circuit.state, "failures": circuit.failures}
                for key, circuit in self._circuits.items()
                if circuit.state != CLOSED or circuit.failures > 0
            }
