"""Retry policy: exponential backoff with deterministic seeded jitter.

Two decisions live here, both pure functions so tests can pin them
exactly:

* *whether* a failed attempt is retried — only transient classes
  (:class:`~repro.runtime.faults.TransientFaultError`,
  :class:`~repro.util.errors.WorkerDiedError`) are, everything else
  fails fast; an error wrapped by the engine in
  :class:`~repro.util.errors.EvaluationAbortedError` is classified by
  its ``__cause__``;
* *when* — exponential backoff with jitter derived from a SHA-256 of
  ``(seed, job_id, attempt)``, so the schedule is fully reproducible
  for a given seed yet decorrelated across jobs (no thundering herd
  when a batch of retries lands together).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.runtime.faults import TransientFaultError
from repro.util.errors import EvaluationAbortedError, WorkerDiedError

#: Error classes retried with backoff; everything else fails fast.
TRANSIENT_ERRORS = (TransientFaultError, WorkerDiedError)


def is_transient(error):
    """True when ``error`` (or the cause an
    :class:`EvaluationAbortedError` wraps) is a transient class."""
    if isinstance(error, TRANSIENT_ERRORS):
        return True
    if isinstance(error, EvaluationAbortedError):
        return isinstance(error.__cause__, TRANSIENT_ERRORS)
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff configuration for transient failures.

    ``max_attempts`` bounds total attempts (first try included);
    the delay before retry ``n`` (1-based count of failures so far)
    is ``min(base_delay * multiplier**(n-1), max_delay)`` scaled by a
    deterministic jitter factor in ``[1-jitter, 1+jitter]``.

    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
    >>> policy.schedule("job-1")
    [0.1, 0.2]
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def retryable(self, error, attempt):
        """True when a failure on the given 1-based attempt should be
        retried: the error is transient and attempts remain."""
        return attempt < self.max_attempts and is_transient(error)

    def delay(self, job_id, attempt):
        """Backoff (seconds) before the retry following the given
        1-based failed attempt."""
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter == 0.0:
            return raw
        digest = hashlib.sha256(
            ("%d|%s|%d" % (self.seed, job_id, attempt)).encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0**64
        return raw * (1.0 + self.jitter * (2.0 * fraction - 1.0))

    def schedule(self, job_id):
        """Every backoff delay the policy would apply for one job, in
        order — ``max_attempts - 1`` entries."""
        return [
            self.delay(job_id, attempt)
            for attempt in range(1, self.max_attempts)
        ]
