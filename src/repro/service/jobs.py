"""Job specifications and terminal job results for the query service.

A :class:`JobSpec` is an immutable description of one unit of work —
one of the library's four front ends applied to inline source texts —
plus its service-level limits (a wall-clock deadline mapped onto
:class:`~repro.runtime.budget.EvaluationBudget.deadline_seconds`).
A :class:`JobResult` is the *terminal* outcome the service guarantees
for every admitted job: ``ok``, ``partial`` (typed degraded result),
``failed``, or ``rejected`` — never a hang.  Results carry the
resilience trace (``attempts``, ``backend``, ``degradation``,
``resumed``) so batch consumers can see *how* an answer was produced,
not just what it is.

``run`` jobs may request sharded round evaluation with
``parallelism``; the service caps the request against its own
worker-pool capacity (see :class:`~repro.service.pool.QueryService`),
because ``workers`` engine threads each forking ``N`` shard processes
would otherwise oversubscribe the host.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

#: The front ends a job may target.  ``maintain`` jobs refresh a
#: materialized model over a durable EDB store (:mod:`repro.edb`)
#: instead of evaluating inline sources.
KINDS = ("run", "query", "datalog1s", "templog", "maintain")

#: Terminal job states.  Every admitted job reaches exactly one.
STATE_OK = "ok"
STATE_PARTIAL = "partial"
STATE_FAILED = "failed"
STATE_REJECTED = "rejected"
TERMINAL_STATES = (STATE_OK, STATE_PARTIAL, STATE_FAILED, STATE_REJECTED)


@dataclass(frozen=True)
class JobSpec:
    """One unit of service work.

    ``program`` holds the inline program text for ``run`` /
    ``datalog1s`` / ``templog`` / ``maintain`` jobs, ``edb`` the
    generalized-database text for ``run`` / ``query`` jobs, and
    ``query`` the FO formula for ``query`` jobs.  ``maintain`` jobs
    name a durable EDB ``store`` directory instead of an inline EDB:
    the service refreshes the (process-cached) materialized model of
    ``program`` over that store to its current head.
    ``deadline_seconds`` is the job's wall-clock budget across *all*
    attempts; each attempt runs under an
    :class:`~repro.runtime.budget.EvaluationBudget` whose deadline is
    the time still remaining.
    """

    job_id: str
    kind: str
    program: str = ""
    edb: str = ""
    query: str = ""
    store: str = ""
    deadline_seconds: Optional[float] = None
    max_rounds: Optional[int] = None
    patience: int = 10
    strategy: str = "semi-naive"
    window: Optional[Tuple[int, int]] = None
    #: Shard processes for the fixpoint: a fixed count, or ``"auto"``
    #: to let the engine's dispatch-overhead governor decide per run
    #: (the executor's cap applies either way).
    parallelism: Optional[Union[int, str]] = None
    #: ``query`` jobs with an inline ``program``: evaluate only the
    #: query's demand cone via the magic-set rewrite
    #: (:mod:`repro.plan.magic`), the binding pattern taken from the
    #: formula's constants and ``window``.  Falls back to the full
    #: fixpoint (degradation rung ``"magic-full"``) when the rewrite
    #: cannot apply.
    goal_directed: bool = False

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                "unknown job kind %r (expected one of %s)"
                % (self.kind, ", ".join(KINDS))
            )
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.kind == "maintain" and not self.store:
            raise ValueError("maintain jobs require a store directory")
        if self.parallelism is not None and self.parallelism != "auto":
            if not isinstance(self.parallelism, int) or self.parallelism < 1:
                raise ValueError(
                    "parallelism must be a positive process count or 'auto'"
                )

    def program_key(self):
        """A stable digest identifying this job's *program* — the unit
        the circuit breaker trips on (two jobs evaluating the same
        sources share one breaker)."""
        digest = hashlib.sha256()
        for chunk in (self.kind, self.program, self.edb, self.query, self.store):
            digest.update(chunk.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()[:16]

    @classmethod
    def from_json_dict(cls, payload, default_id=None):
        """Build a spec from a JSON job object (the ``repro batch``
        input format).  ``id`` defaults to ``default_id`` so JSONL
        files may omit it."""
        if not isinstance(payload, dict):
            raise ValueError("job must be a JSON object")
        window = payload.get("window")
        return cls(
            job_id=str(payload.get("id", default_id or "")),
            kind=payload.get("kind", "run"),
            program=payload.get("program", ""),
            edb=payload.get("edb", ""),
            query=payload.get("query", ""),
            store=payload.get("store", ""),
            deadline_seconds=payload.get("deadline_seconds"),
            max_rounds=payload.get("max_rounds"),
            patience=payload.get("patience", 10),
            strategy=payload.get("strategy", "semi-naive"),
            window=None if window is None else (int(window[0]), int(window[1])),
            parallelism=payload.get("parallelism"),
            goal_directed=bool(payload.get("goal_directed", False)),
        )


@dataclass
class JobResult:
    """The terminal outcome of one job.

    ``state`` is one of :data:`TERMINAL_STATES`; ``outcome`` refines it
    (``ok``, ``gave-up``, ``budget-exceeded``, ``aborted``, ``error``,
    ``overloaded``, ``circuit-open``).  ``backend`` records which
    clause-evaluation backend produced the answer (``compiled`` or, a
    rung down the degradation ladder, ``reference``); ``degradation``
    lists the rungs taken (``"reference-backend"``,
    ``"partial-model"``, and ``"shard-sequential"`` when a parallel
    attempt lost its shard pool and finished sequentially in-process —
    the result is still exact, so the state stays ``ok``).  ``resumed``
    is True when any retry resumed from the job's checkpoint instead
    of restarting from round 0.
    ``model`` keeps the in-memory model object for library callers; the
    JSON form carries ``model_text``.
    """

    job_id: str
    state: str
    outcome: str
    attempts: int = 0
    backend: Optional[str] = None
    degradation: List[str] = field(default_factory=list)
    model_text: Optional[str] = None
    model: Optional[object] = None
    error: Optional[dict] = None
    stats: Optional[dict] = None
    resumed: bool = False
    worker: Optional[str] = None
    elapsed_seconds: float = 0.0

    def __post_init__(self):
        if self.state not in TERMINAL_STATES:
            raise ValueError("non-terminal job state %r" % self.state)

    def terminal(self):
        """Always True — constructing a result *is* reaching a terminal
        state; exposed for symmetry with monitoring consumers."""
        return self.state in TERMINAL_STATES

    def to_json_dict(self):
        """The ``repro batch --json`` per-job report."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "backend": self.backend,
            "degradation": list(self.degradation),
            "resumed": self.resumed,
            "worker": self.worker,
            "elapsed_seconds": self.elapsed_seconds,
            "error": self.error,
            "stats": self.stats,
            "model": self.model_text,
        }
