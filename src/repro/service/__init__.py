"""Resilient concurrent query service.

Composes the resource-governed runtime (:mod:`repro.runtime`) and the
compiled/reference evaluation backends (:mod:`repro.plan`) into a
supervised worker pool serving batches of deductive / FO / Datalog1S /
Templog jobs with bounded queues, deadlines, retry-with-resume, a
per-program circuit breaker, and a two-rung degradation ladder.  The
CLI front ends are ``repro batch`` and ``repro serve``.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.executor import JobExecutor
from repro.service.jobs import (
    KINDS,
    STATE_FAILED,
    STATE_OK,
    STATE_PARTIAL,
    STATE_REJECTED,
    TERMINAL_STATES,
    JobResult,
    JobSpec,
)
from repro.service.pool import JobHandle, QueryService
from repro.service.retry import RetryPolicy, is_transient

__all__ = [
    "CircuitBreaker",
    "JobExecutor",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "KINDS",
    "QueryService",
    "RetryPolicy",
    "STATE_FAILED",
    "STATE_OK",
    "STATE_PARTIAL",
    "STATE_REJECTED",
    "TERMINAL_STATES",
    "is_transient",
]
