"""Linear repeating points and periodic sets (paper Section 2.1 / 3.1).

This package provides the arithmetic substrate of the whole library:

* :mod:`repro.lrp.congruence` — extended gcd, modular inverses, and the
  Chinese Remainder Theorem, the tools behind every lrp intersection.
* :mod:`repro.lrp.point` — the :class:`~repro.lrp.point.Lrp` class, the
  paper's linear repeating point ``an + b`` denoting the residue class
  ``{t : t ≡ b (mod a)}`` of the integers.
* :mod:`repro.lrp.periodic_set` — purely periodic subsets of ℤ and
  eventually periodic subsets of ℕ, the "common currency" in which the
  data expressiveness of all three formalisms of the paper coincides
  (Section 3.1).
"""

from repro.lrp.congruence import crt, egcd, lcm, modular_inverse, solve_congruence
from repro.lrp.point import Lrp
from repro.lrp.periodic_set import EventuallyPeriodicSet, ZPeriodicSet

__all__ = [
    "Lrp",
    "ZPeriodicSet",
    "EventuallyPeriodicSet",
    "crt",
    "egcd",
    "lcm",
    "modular_inverse",
    "solve_congruence",
]
