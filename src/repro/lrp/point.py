"""Linear repeating points (paper Section 2.1).

A linear repeating point (lrp) ``an + b`` denotes the set
``{a*n + b : n ∈ ℤ}``, i.e. the residue class of ``b`` modulo ``a``.
Following the paper we require a **non-zero period** ``a``; an integer
constant ``c`` is represented as the lrp ``n`` (period 1) together with
the constraint ``T = c`` at the generalized-tuple level.

The class is immutable and hashable so lrps can key dictionaries (the
free-extension signatures of Section 4.3 are tuples of lrps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.lrp.congruence import crt


@dataclass(frozen=True, order=True)
class Lrp:
    """The linear repeating point ``period * n + offset``.

    The offset is normalized into ``[0, period)``, so two lrps denote
    the same set of integers iff they are equal as objects.

    >>> Lrp(5, 3)
    Lrp(period=5, offset=3)
    >>> Lrp(5, -2) == Lrp(5, 3)
    True
    >>> 13 in Lrp(5, 3)
    True
    """

    period: int
    offset: int

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("lrp period must be a positive integer, got %r" % (self.period,))
        object.__setattr__(self, "offset", self.offset % self.period)

    # -- set membership and structure --------------------------------

    def __contains__(self, t):
        return (t - self.offset) % self.period == 0

    def is_subset(self, other):
        """True when every point of self belongs to ``other``.

        ``a1*n + b1 ⊆ a2*n + b2`` iff a2 divides a1 and b1 ≡ b2 (mod a2).
        """
        return self.period % other.period == 0 and self.offset % other.period == other.offset

    def intersect(self, other):
        """Intersection of two lrps, again an lrp or None when disjoint.

        The period of the result is ``lcm`` of the periods and the
        offset is found with the Chinese Remainder Theorem.

        >>> Lrp(4, 1).intersect(Lrp(6, 3))
        Lrp(period=12, offset=9)
        >>> Lrp(4, 0).intersect(Lrp(4, 1)) is None
        True
        """
        combined = crt(self.offset, self.period, other.offset, other.period)
        if combined is None:
            return None
        offset, period = combined
        return Lrp(period, offset)

    def intersects(self, other):
        """True when the two lrps share at least one point."""
        return (other.offset - self.offset) % math.gcd(self.period, other.period) == 0

    # -- transformations ----------------------------------------------

    def shift(self, c):
        """The lrp denoting ``{t + c : t ∈ self}``.

        >>> Lrp(5, 3).shift(4)
        Lrp(period=5, offset=2)
        """
        return Lrp(self.period, self.offset + c)

    def scale_period(self, factor):
        """Refine the period by an integer ``factor`` ≥ 1: return the
        list of lrps of period ``factor * period`` whose union is self.

        >>> Lrp(2, 1).scale_period(2)
        [Lrp(period=4, offset=1), Lrp(period=4, offset=3)]
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")
        new_period = self.period * factor
        return [Lrp(new_period, self.offset + k * self.period) for k in range(factor)]

    def residues_modulo(self, modulus):
        """The residues of this lrp modulo a multiple of its period.

        ``modulus`` must be divisible by the period.  Returns the sorted
        list of residues ``r`` in ``[0, modulus)`` such that the class
        ``r (mod modulus)`` is contained in this lrp.

        >>> Lrp(2, 0).residues_modulo(6)
        [0, 2, 4]
        """
        if modulus % self.period != 0:
            raise ValueError(
                "modulus %d is not a multiple of the period %d" % (modulus, self.period)
            )
        return [self.offset + k * self.period for k in range(modulus // self.period)]

    # -- enumeration ---------------------------------------------------

    def enumerate(self, low, high):
        """Yield the points of this lrp in the window ``[low, high)``.

        >>> list(Lrp(5, 3).enumerate(-5, 15))
        [-2, 3, 8, 13]
        """
        first = low + (self.offset - low) % self.period
        return range(first, high, self.period)

    def smallest_at_least(self, bound):
        """The smallest element of this lrp that is >= ``bound``."""
        return bound + (self.offset - bound) % self.period

    def largest_at_most(self, bound):
        """The largest element of this lrp that is <= ``bound``."""
        return bound - (bound - self.offset) % self.period

    # -- display -------------------------------------------------------

    def __str__(self):
        if self.period == 1:
            return "n" if self.offset == 0 else "n+%d" % self.offset
        if self.offset == 0:
            return "%dn" % self.period
        return "%dn+%d" % (self.period, self.offset)

    @classmethod
    def parse(cls, text):
        """Parse the textual form ``"an+b"``, ``"an"``, ``"n+b"`` or ``"n"``.

        >>> Lrp.parse("168n+8")
        Lrp(period=168, offset=8)
        """
        body = text.replace(" ", "")
        if "n" not in body:
            raise ValueError("an lrp literal must contain 'n': %r" % text)
        head, _, tail = body.partition("n")
        period = int(head) if head else 1
        offset = int(tail) if tail else 0
        return cls(period, offset)

    @classmethod
    def constant_carrier(cls):
        """The lrp ``n`` (period 1) used to carry integer constants.

        The paper eliminates a constant ``c`` in temporal position ``i``
        by writing the lrp ``n`` with the constraint ``T_i = c``.
        """
        return cls(1, 0)
